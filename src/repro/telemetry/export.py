"""Trace and metrics exporters: JSONL, Chrome ``trace_event``, text report.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (``meta`` header, then
  ``span``/``instant`` records in completion order, then a final
  ``metrics`` record).  Greppable, streamable, trivially machine-readable;
  :func:`read_jsonl` is the round-trip companion.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON format
  (complete ``"ph": "X"`` events), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` for a flame-chart view
  of the run.
* :func:`render_report` — the human-readable end-of-run summary: a
  per-span-name timing table plus every counter/gauge/histogram.

Timestamps are seconds since the tracer epoch in JSONL and microseconds
(the format's unit) in Chrome traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .tracer import Tracer


def _jsonable(value: Any) -> Any:
    """Coerce one attribute value to something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _jsonable(v) for k, v in attrs.items()}


# --- JSONL -------------------------------------------------------------------
def write_jsonl(
    path: str,
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the trace (and optional metrics snapshot) as JSON Lines."""
    with open(path, "w") as fh:
        header = {"type": "meta", "epoch_wall": tracer.epoch_wall}
        if meta:
            header.update(_attrs(meta))
        fh.write(json.dumps(header) + "\n")
        for span in tracer.walk():
            fh.write(json.dumps({
                "type": "span",
                "name": span.name,
                "ts": span.ts,
                "dur": span.dur,
                "depth": span.depth,
                "tid": span.tid,
                "attrs": _attrs(span.attrs),
            }) + "\n")
        for inst in tracer.instants:
            fh.write(json.dumps({
                "type": "instant",
                "name": inst.name,
                "ts": inst.ts,
                "tid": inst.tid,
                "attrs": _attrs(inst.attrs),
            }) + "\n")
        if metrics is not None:
            fh.write(json.dumps({"type": "metrics", **metrics.snapshot()}) + "\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a :func:`write_jsonl` file back into record dictionaries."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# --- Chrome trace_event ------------------------------------------------------
def chrome_trace_events(
    tracer: Tracer, process_name: str = "repro"
) -> List[Dict[str, Any]]:
    """The trace as a list of Chrome ``trace_event`` dictionaries."""
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    tids = sorted({s.tid for s in tracer.spans} | {i.tid for i in tracer.instants})
    for tid in tids:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
        })
    for span in tracer.walk():
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.ts * 1e6,
            "dur": span.dur * 1e6,
            "pid": 1,
            "tid": span.tid,
            "args": _attrs(span.attrs),
        })
    for inst in tracer.instants:
        events.append({
            "name": inst.name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": inst.ts * 1e6,
            "pid": 1,
            "tid": inst.tid,
            "args": _attrs(inst.attrs),
        })
    return events


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a Perfetto/``chrome://tracing``-loadable trace file.

    The metrics snapshot (when given) rides along under ``otherData`` —
    the viewers ignore it, the file stays self-contained.
    """
    other: Dict[str, Any] = {"epoch_wall": tracer.epoch_wall}
    if meta:
        other.update(_attrs(meta))
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)


# --- metrics JSON ------------------------------------------------------------
def write_metrics_json(
    path: str,
    metrics: MetricsRegistry,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a metrics snapshot (plus optional per-span summary) as JSON."""
    doc: Dict[str, Any] = dict(metrics.snapshot())
    if spans is not None:
        doc["spans"] = spans
    if meta:
        doc["meta"] = _attrs(meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# --- human-readable report ---------------------------------------------------
def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{1e3 * s:.2f}ms"
    return f"{1e6 * s:.0f}us"


def render_report(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    *,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
    title: str = "telemetry report",
) -> str:
    """The end-of-run text report: span timing table + metrics.

    Accepts either a live tracer or a pre-aggregated ``spans`` summary
    (the cross-worker path), and any subset of the inputs.
    """
    lines = [title, "=" * len(title)]
    summary = spans if spans is not None else (tracer.summarize() if tracer else {})
    if summary:
        lines.append("")
        lines.append(f"{'span':<22} {'count':>8} {'total':>10} {'mean':>10} {'max':>10}")
        for name, row in sorted(summary.items(), key=lambda kv: -kv[1]["total"]):
            lines.append(
                f"{name:<22} {row['count']:>8} {_fmt_seconds(row['total']):>10} "
                f"{_fmt_seconds(row['mean']):>10} {_fmt_seconds(row['max']):>10}"
            )
    if metrics is not None:
        snap = metrics.snapshot()
        if snap["counters"]:
            lines.append("")
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<32} {value}")
        if snap["gauges"]:
            lines.append("")
            lines.append("gauges (time-weighted over samples):")
            for name, g in snap["gauges"].items():
                lines.append(
                    f"  {name:<32} last={g['last']:g} min={g['min']:g} "
                    f"max={g['max']:g} mean={g['mean']:.2f}"
                )
        if snap["histograms"]:
            lines.append("")
            lines.append("histograms:")
            for name, h in snap["histograms"].items():
                fmt = _fmt_seconds if name.endswith("seconds") else lambda v: f"{v:g}"
                lines.append(
                    f"  {name:<32} n={h['count']} mean={fmt(h['mean'])} "
                    f"p50={fmt(h['p50'])} p90={fmt(h['p90'])} "
                    f"p99={fmt(h['p99'])} max={fmt(h['max'])}"
                )
    return "\n".join(lines)
