"""Structured tracing: nested wall-clock spans and instant events.

A :class:`Tracer` records what the scheduler *did* and how long it took:
every scheduling pass, window extraction, GA solve, decision rule, and
backfill pass opens a **span** (a named, timed, attributed interval), and
point observations (a watchdog fallback, a starvation forcing) land as
**instants**.  Spans nest: each one knows its depth and parent within its
thread, so an exported trace reconstructs the full call tree of a run.

Two clocks are kept.  ``time.perf_counter`` (monotonic, high resolution)
times every span relative to the tracer's epoch; ``time.time`` is sampled
once at construction so exports can anchor the trace to wall-clock time.

The default tracer is the module singleton :data:`NULL_TRACER`: every
method is a no-op returning a shared inert span, so instrumented code pays
one attribute lookup and two empty calls per span — effectively zero — and
untraced simulation results stay byte-identical to uninstrumented code.

``fine=True`` additionally enables the highest-volume instrumentation
(per-GA-generation spans); leave it off unless you are profiling the
solver itself, as a default-scale run emits hundreds of thousands of
generation spans.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class NullSpan:
    """Inert span: context manager and attribute sink that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """Discard attributes (API-compatible with :meth:`Span.set`)."""


#: Shared inert span handed out by :class:`NullTracer` (and usable as a
#: stand-in wherever a span-shaped object is needed).
NULL_SPAN = NullSpan()


class NullTracer:
    """The zero-overhead default tracer: records nothing.

    Instrumentation sites call ``tracer.span(...)`` / ``tracer.instant(...)``
    unconditionally; with this tracer both are no-ops, which keeps untraced
    runs byte-identical to uninstrumented code.
    """

    enabled: bool = False
    fine: bool = False

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        return None


#: Module singleton used as the default tracer everywhere.
NULL_TRACER = NullTracer()


class Span:
    """One named, timed interval with structured attributes.

    Created by :meth:`Tracer.span` and used as a context manager; on exit
    the span freezes its duration and appends itself to the tracer's
    finished-span list.  ``ts`` is seconds since the tracer epoch, ``dur``
    seconds of wall-clock, ``depth`` the nesting level within the opening
    thread (0 = top level), ``tid`` a small per-thread ordinal.
    """

    __slots__ = ("name", "attrs", "ts", "dur", "depth", "tid", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.ts = 0.0
        self.dur = 0.0
        self.depth = 0
        self.tid = 0

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, ts={self.ts:.6f}, dur={self.dur:.6f}, depth={self.depth})"


class Instant(object):
    """A point event (no duration): something happened at ``ts``."""

    __slots__ = ("name", "attrs", "ts", "tid")

    def __init__(self, name: str, attrs: Dict[str, Any], ts: float, tid: int) -> None:
        self.name = name
        self.attrs = attrs
        self.ts = ts
        self.tid = tid


class Tracer:
    """Collects spans and instants for one traced run.

    Thread-safe by construction: span nesting state lives in
    ``threading.local`` (the watchdog runs selectors on worker threads),
    and finished records are appended to plain lists, which is atomic
    under the GIL.

    Parameters
    ----------
    fine:
        Enable the highest-volume instrumentation sites (per-GA-generation
        spans).  Off by default; see the module docstring.
    """

    enabled: bool = True

    def __init__(self, fine: bool = False) -> None:
        self.fine = fine
        self.epoch_wall = time.time()
        self._epoch = time.perf_counter()
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self._tid_lock = threading.Lock()

    # --- recording -----------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span context manager; the clock starts on ``__enter__``."""
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current time."""
        self.instants.append(
            Instant(name, attrs, time.perf_counter() - self._epoch, self._tid())
        )

    def mark(self) -> int:
        """Bookmark into the span list; pass to :meth:`summarize`'s ``since``."""
        return len(self.spans)

    # --- internals -----------------------------------------------------------
    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._tid_lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.depth = len(stack)
        span.tid = self._tid()
        stack.append(span)
        span.ts = time.perf_counter() - self._epoch

    def _close(self, span: Span) -> None:
        span.dur = time.perf_counter() - self._epoch - span.ts
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit: drop through to this span
            del stack[stack.index(span):]
        self.spans.append(span)

    # --- views ---------------------------------------------------------------
    def finished(self, since: int = 0) -> List[Span]:
        """Finished spans recorded after bookmark ``since`` (see :meth:`mark`)."""
        return self.spans[since:]

    def summarize(self, since: int = 0) -> Dict[str, Dict[str, float]]:
        """Per-name timing summary: count, total/mean/max seconds.

        The cheap cross-process currency: a full span list does not travel
        well between workers, this dictionary does (see
        :mod:`repro.telemetry.aggregate`).
        """
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans[since:]:
            row = out.get(span.name)
            if row is None:
                row = out[span.name] = {"count": 0, "total": 0.0, "max": 0.0}
            row["count"] += 1
            row["total"] += span.dur
            if span.dur > row["max"]:
                row["max"] = span.dur
        for row in out.values():
            row["mean"] = row["total"] / row["count"]
        return out

    def walk(self) -> Iterator[Span]:
        """Finished spans in completion order."""
        return iter(self.spans)


#: Anything accepted where a tracer is expected.
TracerLike = Any


def is_enabled(tracer: Optional[TracerLike]) -> bool:
    """True when ``tracer`` records anything."""
    return tracer is not None and getattr(tracer, "enabled", False)
