"""Telemetry & observability: structured tracing, metrics, and exporters.

The subsystem has four pieces (see ``docs/observability.md``):

* :mod:`~repro.telemetry.tracer` — nested wall-clock spans
  (``schedule_pass``, ``ga_solve``, …) and instant events, with a
  zero-overhead :class:`NullTracer` default;
* :mod:`~repro.telemetry.metrics` — a :class:`MetricsRegistry` of
  counters, sim-time gauges, and percentile histograms;
* :mod:`~repro.telemetry.export` — JSONL and Chrome ``trace_event``
  (Perfetto-loadable) writers plus the end-of-run text report;
* :mod:`~repro.telemetry.aggregate` — picklable per-run snapshots and
  exact cross-worker merging for grid experiments.

Instrumented code reads the active tracer from
:func:`~repro.telemetry.context.get_tracer`; nothing records until a real
:class:`Tracer` is installed with :func:`use_tracer` (the CLI's
``--trace`` flag, ``run_one(collect_telemetry=True)``, or your own
``with use_tracer(Tracer()):`` block).
"""

from .aggregate import TelemetrySnapshot, merge_snapshots, merge_spans, snapshot_from
from .context import get_tracer, set_tracer, use_tracer
from .export import (
    chrome_trace_events,
    read_jsonl,
    render_report,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "TelemetrySnapshot",
    "Tracer",
    "chrome_trace_events",
    "get_tracer",
    "merge_snapshots",
    "merge_spans",
    "read_jsonl",
    "render_report",
    "set_tracer",
    "snapshot_from",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
