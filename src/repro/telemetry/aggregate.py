"""Cross-run and cross-worker telemetry aggregation.

A grid experiment is N independent simulations, possibly spread over
process-pool workers; a full span list per cell would be megabytes of
unpicklable-ish bulk, so each run ships a :class:`TelemetrySnapshot`
instead: the per-span-name timing summary (small) plus the full metrics
registry (raw observations, so merged percentiles stay exact).

:func:`merge_snapshots` folds any number of snapshots into one —
span summaries add up, registries merge exactly — and the result renders
through the same :func:`~repro.telemetry.export.render_report` as a
single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .export import render_report
from .metrics import MetricsRegistry
from .tracer import Tracer

SpanSummary = Dict[str, Dict[str, float]]


@dataclass
class TelemetrySnapshot:
    """What one traced run ships home: span summary + metrics registry."""

    spans: SpanSummary = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def render(self, title: str = "telemetry report") -> str:
        """The human-readable report for this snapshot."""
        return render_report(metrics=self.metrics, spans=self.spans, title=title)


def snapshot_from(
    tracer: Optional[Tracer],
    metrics: Optional[MetricsRegistry],
    *,
    since: int = 0,
) -> TelemetrySnapshot:
    """Condense a live tracer/registry pair into a shippable snapshot.

    ``since`` is a :meth:`~repro.telemetry.tracer.Tracer.mark` bookmark:
    only spans recorded after it enter the summary, which isolates one
    run's spans when several runs share a tracer.
    """
    spans = tracer.summarize(since) if tracer is not None and tracer.enabled else {}
    return TelemetrySnapshot(spans=spans, metrics=metrics or MetricsRegistry())


def merge_spans(summaries: Iterable[SpanSummary]) -> SpanSummary:
    """Fold per-name span summaries together (counts/totals add, max wins)."""
    out: SpanSummary = {}
    for summary in summaries:
        for name, row in summary.items():
            mine = out.get(name)
            if mine is None:
                out[name] = dict(row)
            else:
                mine["count"] += row["count"]
                mine["total"] += row["total"]
                mine["max"] = max(mine["max"], row["max"])
    for row in out.values():
        row["mean"] = row["total"] / row["count"] if row["count"] else 0.0
    return out


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]) -> TelemetrySnapshot:
    """One snapshot equivalent to all of ``snapshots`` taken together."""
    snaps = list(snapshots)
    return TelemetrySnapshot(
        spans=merge_spans(s.spans for s in snaps),
        metrics=MetricsRegistry.merged([s.metrics for s in snaps]),
    )
