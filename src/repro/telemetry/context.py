"""The active tracer: a process-wide slot instrumentation reads from.

Instrumented code (engine, solvers, watchdog) never receives a tracer
explicitly; it asks :func:`get_tracer` at the moment it records.  The slot
defaults to the zero-overhead :data:`~repro.telemetry.tracer.NULL_TRACER`
and is swapped for a real tracer only for the duration of a traced run via
:func:`use_tracer`.

A deliberate choice: this is a plain module global, **not** a
``contextvars.ContextVar``.  Context variables do not propagate into
worker threads, and the :class:`~repro.resilience.SolverWatchdog` runs the
inner selector on exactly such a thread — a contextvar-based slot would
silently untrace every watchdog-guarded GA solve.  Process-pool workers
(:func:`repro.parallel.parallel_map`) start with the slot at its NULL
default; per-worker collection instead goes through
``run_one(collect_telemetry=True)``, which installs a private tracer
inside the worker and ships a picklable snapshot back.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from .tracer import NULL_TRACER, NullTracer, Tracer

AnyTracer = Union[Tracer, NullTracer]

_current: AnyTracer = NULL_TRACER


def get_tracer() -> AnyTracer:
    """The tracer instrumentation should record to (NULL when untraced)."""
    return _current


def set_tracer(tracer: AnyTracer) -> AnyTracer:
    """Install ``tracer`` as the active one; returns the previous tracer."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: AnyTracer) -> Iterator[AnyTracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
