"""Metrics registry: counters, gauges, and histograms with summaries.

Where the tracer answers "where did the time go", the registry answers
"how much of everything happened": events processed, jobs started by
route, solver fallbacks, queue depth over simulated time, selector
latency percentiles.  Three instrument kinds:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a sampled value over (simulated) time, summarised
  with a **time-weighted** mean so long quiet stretches count as such;
* :class:`Histogram` — raw observations with percentile summaries.

Everything is plain Python data, so a registry pickles across
:func:`repro.parallel.parallel_map` workers and two registries merge
exactly (:meth:`MetricsRegistry.merge` concatenates raw observations
rather than approximating from summaries).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value sampled over time, e.g. queue depth over sim-time.

    Samples without an explicit timestamp get an integer sequence index,
    so untimed gauges still summarise sensibly.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.samples.append((float(len(self.samples)) if t is None else t, value))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(v for _, v in self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(v for _, v in self.samples) if self.samples else 0.0

    @property
    def mean(self) -> float:
        """Time-weighted mean (each sample holds until the next one).

        Falls back to the arithmetic mean when all samples share one
        timestamp or timestamps are not sorted ascending.
        """
        if not self.samples:
            return 0.0
        ts = [t for t, _ in self.samples]
        span = ts[-1] - ts[0]
        if span <= 0 or any(b < a for a, b in zip(ts, ts[1:])):
            return sum(v for _, v in self.samples) / len(self.samples)
        area = sum(
            v * (t_next - t)
            for (t, v), (t_next, _) in zip(self.samples, self.samples[1:])
        )
        return area / span


class Histogram:
    """Raw observations with nearest-rank percentile summaries."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]


class MetricsRegistry:
    """Named instruments, created lazily on first touch.

    The inc/set/observe shorthands are the hot-path API; the ``counter``/
    ``gauge``/``histogram`` accessors return the instrument for reads.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # --- instruments ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # --- hot-path shorthands -------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float, t: Optional[float] = None) -> None:
        self.gauge(name).set(value, t)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # --- aggregation ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry, exactly.

        Counters add, gauges concatenate samples (re-sorted by timestamp),
        histograms concatenate raw observations — so merged percentiles
        are computed over the union, not approximated from summaries.
        """
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            mine = self.gauge(name)
            mine.samples = sorted(mine.samples + g.samples)
        for name, h in other.histograms.items():
            self.histogram(name).values.extend(h.values)

    @staticmethod
    def merged(registries: Sequence["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the exact union of ``registries``."""
        out = MetricsRegistry()
        for reg in registries:
            out.merge(reg)
        return out

    # --- views ---------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready summary of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {
                name: {
                    "n": len(g.samples),
                    "last": g.last,
                    "min": g.min,
                    "max": g.max,
                    "mean": g.mean,
                }
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p90": h.percentile(90),
                    "p99": h.percentile(99),
                }
                for name, h in sorted(self.histograms.items())
            },
        }
