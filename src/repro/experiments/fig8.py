"""Figure 8: average job wait time across the grid (§4.4).

Expected shape: every optimization method improves on the baseline;
BBSched the largest reductions (paper: −33 % on Cori, −41 % on Theta,
biggest gains on the heavy-BB S-workloads); wait times rise steeply from
Original to S4 under every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from .config import Scale, get_scale
from .grid import metric_table, run_grid
from .workloads import ALL_WORKLOADS


@dataclass(frozen=True)
class WaitResult:
    #: {workload: {method: average wait (s)}}
    avg_wait: Dict[str, Dict[str, float]]
    methods: Tuple[str, ...]
    workloads: Tuple[str, ...]

    def reduction_vs_baseline(self, workload: str, method: str) -> float:
        """Fractional wait reduction of ``method`` over the baseline."""
        row = self.avg_wait[workload]
        base = row["Baseline"]
        return (base - row[method]) / base if base > 0 else 0.0

    def best_reduction(self, method: str = "BBSched") -> Tuple[str, float]:
        """(workload, reduction) where ``method`` improves the most."""
        best = max(self.workloads,
                   key=lambda w: self.reduction_vs_baseline(w, method))
        return best, self.reduction_vs_baseline(best, method)


def run(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
) -> WaitResult:
    sc = scale or get_scale()
    grid = run_grid(sc, workloads=workloads, methods=methods)
    return WaitResult(
        avg_wait=metric_table(grid, "avg_wait", workloads, methods),
        methods=tuple(methods),
        workloads=tuple(workloads),
    )


def render(result: WaitResult) -> str:
    from .report import hours, pivot_table

    table = pivot_table(
        result.avg_wait, columns=result.methods, fmt=hours,
        title="Figure 8: average job wait time (lower is better)",
    )
    wl, red = result.best_reduction()
    note = (f"\nBBSched's best wait reduction vs baseline: "
            f"{100 * red:.1f}% on {wl} (paper: up to 41% on Theta-S4)")
    return table + note
