"""The §4 evaluation grid: 8 methods × 10 workloads.

Figures 6, 7, 8, 12, and 13 all read from the same grid of simulation
runs, so it is computed once per scale and memoised for the process
lifetime.  Each cell is an independent simulation with its own seed;
multi-core machines execute cells through
:func:`repro.parallel.parallel_map`.

Long grids are made pre-emption-safe by the results ledger
(:class:`repro.checkpoint.ResultsLedger`): with ``ledger=...`` every
completed cell is durably appended the moment it finishes, and
``resume=True`` reloads those cells and dispatches only the missing (or
previously failed) ones — a SIGKILL mid-grid costs at most the cells
that were in flight.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from ..checkpoint import ResultsLedger
from ..errors import TaskError
from ..methods import METHODS_SECTION4
from ..parallel import parallel_map
from ..rng import stable_hash
from ..telemetry import TelemetrySnapshot, merge_snapshots
from .config import BASE_SEED, Scale, get_scale
from .runner import RunResult, run_one
from .workloads import ALL_WORKLOADS, get_workload

#: Grid cell key: (workload label, method name).
GridKey = Tuple[str, str]
Grid = Dict[GridKey, RunResult]


def cell_seed(workload: str, method: str) -> int:
    """The deterministic seed of one grid cell (stable across processes)."""
    return (BASE_SEED * 31 + stable_hash(f"{workload}|{method}")) & 0x7FFFFFFF


def _cell(
    workload: str,
    method: str,
    scale_name: str,
    telemetry: bool = False,
    seed: Optional[int] = None,
) -> RunResult:
    """One grid cell (module-level so it pickles for the process pool)."""
    scale = get_scale(scale_name)
    trace = get_workload(workload, scale)
    if seed is None:
        seed = cell_seed(workload, method)
    return run_one(trace, method, scale, seed=seed, collect_telemetry=telemetry)


@lru_cache(maxsize=4)
def _grid_cached(scale_name: str, workloads: Tuple[str, ...],
                 methods: Tuple[str, ...], workers: Optional[int],
                 telemetry: bool = False) -> tuple:
    tasks = [
        (w, m, scale_name, telemetry, cell_seed(w, m))
        for w in workloads for m in methods
    ]
    results = parallel_map(_cell, tasks, workers=workers)
    return tuple(results)


def run_grid(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
    workers: Optional[int] = None,
    telemetry: bool = False,
    ledger: Optional[os.PathLike | str] = None,
    resume: bool = False,
    task_timeout: Optional[float] = None,
    task_retries: int = 0,
) -> Grid:
    """All (workload, method) runs as a dictionary keyed by (workload, method).

    ``telemetry=True`` makes every cell collect a per-run
    :class:`~repro.telemetry.TelemetrySnapshot` (even when cells execute
    on pool workers); aggregate them with :func:`grid_telemetry`.

    ``ledger`` switches to durable execution: each completed cell is
    appended to the JSONL ledger as it finishes (bypassing the in-process
    memoisation).  With ``resume=True`` cells already in the ledger for
    this (scale, telemetry) configuration are returned without
    recomputation; without it the ledger is truncated first.
    ``task_timeout``/``task_retries`` are handed to
    :func:`~repro.parallel.parallel_map` supervision; a cell that
    exhausts its budget is recorded as a failure line (and re-dispatched
    by the next ``resume=True`` run) before the
    :class:`~repro.errors.TaskError` propagates.
    """
    sc = scale or get_scale()
    if ledger is None:
        results = _grid_cached(sc.name, tuple(workloads), tuple(methods), workers,
                               telemetry)
        return {(r.workload, r.method): r for r in results}
    book = ResultsLedger(ledger)
    done: Grid = {}
    if resume:
        view = book.load(scale=sc.name, telemetry=telemetry)
        done = {
            key: result for key, result in view.results.items()
            if key[0] in workloads and key[1] in methods
        }
    else:
        book.reset()
    todo = [(w, m) for w in workloads for m in methods if (w, m) not in done]
    tasks = [(w, m, sc.name, telemetry, cell_seed(w, m)) for w, m in todo]

    def persist(index: int, result: RunResult) -> None:
        book.append_result(result, scale=sc.name, telemetry=telemetry,
                           seed=tasks[index][4])

    try:
        fresh = parallel_map(
            _cell, tasks, workers=workers, timeout=task_timeout,
            retries=task_retries, on_result=persist,
        )
    except TaskError as exc:
        workload, method = exc.task[0], exc.task[1]
        book.append_failure(
            workload=workload, method=method, scale=sc.name,
            error=str(exc), attempts=exc.attempts,
            traceback_text=exc.traceback_text,
        )
        raise
    done.update({(r.workload, r.method): r for r in fresh})
    return done


def grid_telemetry(grid: Grid) -> TelemetrySnapshot:
    """The exact union of every cell's telemetry snapshot.

    Cells run without telemetry contribute nothing; an all-untraced grid
    yields an empty snapshot.
    """
    return merge_snapshots(
        r.telemetry for r in grid.values() if r.telemetry is not None
    )


def metric_table(
    grid: Grid, metric: str, workloads: Sequence[str], methods: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Pivot a grid into ``{workload: {method: value}}`` for one metric."""
    return {
        w: {m: grid[(w, m)].metric(metric) for m in methods if (w, m) in grid}
        for w in workloads
    }
