"""The §4 evaluation grid: 8 methods × 10 workloads.

Figures 6, 7, 8, 12, and 13 all read from the same grid of simulation
runs, so it is computed once per scale and memoised for the process
lifetime.  Each cell is an independent simulation with its own seed;
multi-core machines execute cells through
:func:`repro.parallel.parallel_map`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from ..parallel import parallel_map
from ..rng import stable_hash
from ..telemetry import TelemetrySnapshot, merge_snapshots
from .config import BASE_SEED, Scale, get_scale
from .runner import RunResult, run_one
from .workloads import ALL_WORKLOADS, get_workload

#: Grid cell key: (workload label, method name).
GridKey = Tuple[str, str]
Grid = Dict[GridKey, RunResult]


def _cell(
    workload: str, method: str, scale_name: str, telemetry: bool = False
) -> RunResult:
    """One grid cell (module-level so it pickles for the process pool)."""
    scale = get_scale(scale_name)
    trace = get_workload(workload, scale)
    seed = (BASE_SEED * 31 + stable_hash(f"{workload}|{method}")) & 0x7FFFFFFF
    return run_one(trace, method, scale, seed=seed, collect_telemetry=telemetry)


@lru_cache(maxsize=4)
def _grid_cached(scale_name: str, workloads: Tuple[str, ...],
                 methods: Tuple[str, ...], workers: Optional[int],
                 telemetry: bool = False) -> tuple:
    tasks = [(w, m, scale_name, telemetry) for w in workloads for m in methods]
    results = parallel_map(_cell, tasks, workers=workers)
    return tuple(results)


def run_grid(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
    workers: Optional[int] = None,
    telemetry: bool = False,
) -> Grid:
    """All (workload, method) runs as a dictionary keyed by (workload, method).

    ``telemetry=True`` makes every cell collect a per-run
    :class:`~repro.telemetry.TelemetrySnapshot` (even when cells execute
    on pool workers); aggregate them with :func:`grid_telemetry`.
    """
    sc = scale or get_scale()
    results = _grid_cached(sc.name, tuple(workloads), tuple(methods), workers,
                           telemetry)
    return {(r.workload, r.method): r for r in results}


def grid_telemetry(grid: Grid) -> TelemetrySnapshot:
    """The exact union of every cell's telemetry snapshot.

    Cells run without telemetry contribute nothing; an all-untraced grid
    yields an empty snapshot.
    """
    return merge_snapshots(
        r.telemetry for r in grid.values() if r.telemetry is not None
    )


def metric_table(
    grid: Grid, metric: str, workloads: Sequence[str], methods: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Pivot a grid into ``{workload: {method: value}}`` for one metric."""
    return {
        w: {m: grid[(w, m)].metric(metric) for m in methods if (w, m) in grid}
        for w in workloads
    }
