"""The §4 evaluation grid: 8 methods × 10 workloads.

Figures 6, 7, 8, 12, and 13 all read from the same grid of simulation
runs, so it is computed once per scale and memoised for the process
lifetime.  Each cell is an independent simulation with its own seed;
multi-core machines execute cells through
:func:`repro.parallel.parallel_map`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from ..parallel import parallel_map
from ..rng import stable_hash
from .config import BASE_SEED, Scale, get_scale
from .runner import RunResult, run_one
from .workloads import ALL_WORKLOADS, get_workload

#: Grid cell key: (workload label, method name).
GridKey = Tuple[str, str]
Grid = Dict[GridKey, RunResult]


def _cell(workload: str, method: str, scale_name: str) -> RunResult:
    """One grid cell (module-level so it pickles for the process pool)."""
    scale = get_scale(scale_name)
    trace = get_workload(workload, scale)
    seed = (BASE_SEED * 31 + stable_hash(f"{workload}|{method}")) & 0x7FFFFFFF
    return run_one(trace, method, scale, seed=seed)


@lru_cache(maxsize=4)
def _grid_cached(scale_name: str, workloads: Tuple[str, ...],
                 methods: Tuple[str, ...], workers: Optional[int]) -> tuple:
    tasks = [(w, m, scale_name) for w in workloads for m in methods]
    results = parallel_map(_cell, tasks, workers=workers)
    return tuple(results)


def run_grid(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
    workers: Optional[int] = None,
) -> Grid:
    """All (workload, method) runs as a dictionary keyed by (workload, method)."""
    sc = scale or get_scale()
    results = _grid_cached(sc.name, tuple(workloads), tuple(methods), workers)
    return {(r.workload, r.method): r for r in results}


def metric_table(
    grid: Grid, metric: str, workloads: Sequence[str], methods: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Pivot a grid into ``{workload: {method: value}}`` for one metric."""
    return {
        w: {m: grid[(w, m)].metric(metric) for m in methods if (w, m) in grid}
        for w in workloads
    }
