"""Figure 14 / §5: the four-objective local-SSD case study.

Seven methods on the S5–S7 workloads (built over Cori-S2/Theta-S2, every
job carrying a per-node SSD request, nodes split 50/50 between 128 GB and
256 GB SSDs).  The Kiviat charts gain two axes: SSD utilization and the
reciprocal of wasted SSD.  Expected shape: BBSched the best overall area
on all six workloads; Constrained_CPU/Constrained_SSD good on node+SSD
utilization (the two correlate) but wasteful; Constrained_BB strong on BB
only; Weighted balanced but below BBSched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION5
from ..rng import stable_hash
from .config import BASE_SEED, Scale, get_scale
from .kiviat import AXES_SECTION5, kiviat_areas, normalize
from .runner import RunResult, run_one
from .workloads import get_ssd_workloads

#: The six §5 workloads.
SSD_WORKLOADS: Tuple[str, ...] = (
    "Cori-S5", "Cori-S6", "Cori-S7", "Theta-S5", "Theta-S6", "Theta-S7",
)


@dataclass(frozen=True)
class Fig14Result:
    #: {workload: {method: RunResult}}
    runs: Dict[str, Dict[str, RunResult]]
    #: {workload: {method: Kiviat polygon area over 6 axes}}
    areas: Dict[str, Dict[str, float]]
    #: {workload: {method: {axis: normalised value}}}
    axes: Dict[str, Dict[str, Dict[str, float]]]
    methods: Tuple[str, ...]
    workloads: Tuple[str, ...]

    def best_method(self, workload: str) -> str:
        row = self.areas[workload]
        return max(row, key=row.get)


def run(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = SSD_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION5,
) -> Fig14Result:
    sc = scale or get_scale()
    traces = get_ssd_workloads(sc)
    runs: Dict[str, Dict[str, RunResult]] = {}
    areas: Dict[str, Dict[str, float]] = {}
    axes: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in workloads:
        trace = traces[wl]
        per_method = {
            m: run_one(trace, m, sc,
                       seed=(BASE_SEED + stable_hash(f"{wl}|{m}")) & 0x7FFFFFFF)
            for m in methods
        }
        runs[wl] = per_method
        areas[wl] = kiviat_areas(per_method, AXES_SECTION5)
        axes[wl] = normalize(per_method, AXES_SECTION5)
    return Fig14Result(
        runs=runs, areas=areas, axes=axes,
        methods=tuple(methods), workloads=tuple(workloads),
    )


def render(result: Fig14Result) -> str:
    from .report import percent, pivot_table

    area_table = pivot_table(
        result.areas, columns=result.methods,
        fmt=lambda v: f"{v:.3f}",
        title="Figure 14: 6-axis Kiviat areas, SSD case study (larger = better)",
    )
    ssd_util = {
        wl: {m: result.runs[wl][m].metric("ssd_usage") for m in result.methods}
        for wl in result.workloads
    }
    waste = {
        wl: {m: result.runs[wl][m].metric("ssd_waste") for m in result.methods}
        for wl in result.workloads
    }
    util_table = pivot_table(ssd_util, columns=result.methods, fmt=percent,
                             title="Local SSD utilization")
    waste_table = pivot_table(waste, columns=result.methods, fmt=percent,
                              title="Wasted local SSD (fraction of capacity)")
    wins = sum(1 for w in result.workloads if result.best_method(w) == "BBSched")
    return "\n\n".join([area_table, util_table, waste_table]) + (
        f"\nBBSched best overall on {wins}/{len(result.workloads)} workloads"
    )
