"""Figures 9–11: wait-time breakdowns on Theta-S4 (§4.4).

* Figure 9 — by job size: the biggest reductions land on small jobs
  (window optimization beats EASY backfilling at avoiding fragmentation).
* Figure 10 — by BB request: jobs *with* BB requests wait far longer than
  BB-free jobs under the baseline; BBSched/weighted methods shrink that
  gap, Constrained_CPU does not.
* Figure 11 — by runtime: waits grow with runtime; optimization methods
  help long jobs at some cost to short jobs (fewer backfill holes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from .config import Scale, get_scale
from .grid import run_grid


@dataclass(frozen=True)
class BreakdownResult:
    workload: str
    #: {method: {bin label: avg wait seconds}} per grouping
    by_size: Dict[str, Dict[str, float]]
    by_bb: Dict[str, Dict[str, float]]
    by_runtime: Dict[str, Dict[str, float]]
    methods: Tuple[str, ...]


def run(
    scale: Optional[Scale] = None,
    *,
    workload: str = "Theta-S4",
    methods: Sequence[str] = METHODS_SECTION4,
) -> BreakdownResult:
    """Collect the three Figure 9–11 breakdowns from the grid."""
    sc = scale or get_scale()
    grid = run_grid(sc, workloads=(workload,), methods=methods)
    return BreakdownResult(
        workload=workload,
        by_size={m: grid[(workload, m)].wait_by_size for m in methods},
        by_bb={m: grid[(workload, m)].wait_by_bb for m in methods},
        by_runtime={m: grid[(workload, m)].wait_by_runtime for m in methods},
        methods=tuple(methods),
    )


def _render_breakdown(title: str, data: Dict[str, Dict[str, float]],
                      methods: Sequence[str]) -> str:
    from .report import format_table, hours

    bins = list(next(iter(data.values())))
    rows = [[b] + [hours(data[m][b]) for m in methods] for b in bins]
    return format_table(rows, ["bin"] + list(methods), title=title)


def render(result: BreakdownResult) -> str:
    parts = [
        _render_breakdown(
            f"Figure 9: avg wait by job size on {result.workload}",
            result.by_size, result.methods),
        _render_breakdown(
            f"Figure 10: avg wait by BB request on {result.workload}",
            result.by_bb, result.methods),
        _render_breakdown(
            f"Figure 11: avg wait by job runtime on {result.workload}",
            result.by_runtime, result.methods),
    ]
    return "\n\n".join(parts)
