"""Figure 4: GD and time-to-solution versus GA parameters G and P (§3.2.3).

For windows drawn from the Theta workload, the GA solves the selection MOO
at several (G, P) settings; each solve's generational distance against the
exhaustive true Pareto set and its wall time are averaged over windows.
The paper's findings to reproduce: GD falls steeply up to G≈500 then
flattens; raising P lowers GD and raises time; overhead stays well under a
second — hence G=500, P=20.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import ExhaustiveSolver, MOGASolver, SelectionProblem, generational_distance
from ..errors import ConfigurationError
from .config import BASE_SEED, Scale, get_scale
from .workloads import get_workload

#: (G, P) settings swept by default — the paper's Figure 4 axes.
DEFAULT_GENERATIONS: Tuple[int, ...] = (0, 50, 100, 250, 500, 1000)
DEFAULT_POPULATIONS: Tuple[int, ...] = (10, 20, 40)


@dataclass(frozen=True)
class Fig4Cell:
    generations: int
    population: int
    gd: float          #: mean normalised generational distance
    seconds: float     #: mean wall time per solve


@dataclass(frozen=True)
class Fig4Result:
    cells: Tuple[Fig4Cell, ...]

    def cell(self, G: int, P: int) -> Fig4Cell:
        for c in self.cells:
            if c.generations == G and c.population == P:
                return c
        raise KeyError((G, P))


def _windows(scale: Scale, window: int, n_windows: int):
    """Representative windows along the Theta trace."""
    trace = get_workload("Theta-S2", scale)
    jobs = list(trace.jobs)[:1000]
    machine = trace.machine
    out = []
    step = max((len(jobs) - window) // max(n_windows, 1), 1)
    for k in range(n_windows):
        chunk = jobs[k * step:k * step + window]
        if len(chunk) < window:
            break
        out.append(SelectionProblem.from_window(
            chunk, machine.nodes // 2, machine.schedulable_bb / 2.0
        ))
    return out, machine


def run(
    scale: Optional[Scale] = None,
    *,
    generations: Sequence[int] = DEFAULT_GENERATIONS,
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    window: int = 16,
    n_windows: int = 3,
) -> Fig4Result:
    """Sweep (G, P) and measure GD against the exhaustive front."""
    if window > 22:
        raise ConfigurationError("window > 22 makes the exhaustive oracle too slow")
    sc = scale or get_scale()
    problems, machine = _windows(sc, window, n_windows)
    if not problems:
        raise ConfigurationError("trace too short for the requested windows")
    oracle = ExhaustiveSolver()
    truths = [oracle.solve(p) for p in problems]
    scales = [float(machine.nodes), machine.schedulable_bb]

    cells: List[Fig4Cell] = []
    for P in populations:
        for G in generations:
            gds = []
            t0 = time.perf_counter()
            for i, problem in enumerate(problems):
                solver = MOGASolver(generations=G, population=P,
                                    seed=BASE_SEED + 7 * i)
                approx = solver.solve(problem)
                gds.append(generational_distance(
                    approx.objectives, truths[i].objectives, normalize=scales))
            dt = (time.perf_counter() - t0) / len(problems)
            cells.append(Fig4Cell(
                generations=G, population=P,
                gd=sum(gds) / len(gds), seconds=dt,
            ))
    return Fig4Result(cells=tuple(cells))


def render(result: Fig4Result) -> str:
    """ASCII version of Figure 4: GD table and time table."""
    from .report import format_table

    gens = sorted({c.generations for c in result.cells})
    pops = sorted({c.population for c in result.cells})
    gd_rows = [
        [f"P={P}"] + [f"{result.cell(G, P).gd:.4f}" for G in gens] for P in pops
    ]
    t_rows = [
        [f"P={P}"] + [f"{result.cell(G, P).seconds * 1e3:.1f}ms" for G in gens]
        for P in pops
    ]
    headers = [""] + [f"G={G}" for G in gens]
    return (
        format_table(gd_rows, headers,
                     title="Figure 4a: generational distance (lower is better)")
        + "\n\n"
        + format_table(t_rows, headers, title="Figure 4b: time per solve")
    )
