"""The paper's reported numbers, as data.

Everything §4.4, §5, and Table 3 state quantitatively, captured so that
EXPERIMENTS.md and the benchmarks can compare measured results against the
paper's claims programmatically.  Where the paper gives only a direction
("BBSched yields the best burst buffer usage for all the workloads"), the
entry records the direction; where it gives magnitudes, those too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative or directional claim from the paper."""

    source: str          #: table/figure/section
    statement: str       #: the claim, verbatim-ish
    metric: str          #: which §4.2 metric it concerns
    magnitude: Optional[float] = None   #: fractional improvement, if stated


#: §4.4 / §6 headline claims against the naive baseline.
CLAIMS: Tuple[PaperClaim, ...] = (
    PaperClaim(
        source="Fig 6",
        statement="BBSched yields the best node usage for 7 of 10 workloads",
        metric="node_usage",
    ),
    PaperClaim(
        source="Fig 6",
        statement="BBSched improves node utilization on Theta-S4 by 20.03% "
                  "over the baseline",
        metric="node_usage", magnitude=0.2003,
    ),
    PaperClaim(
        source="Fig 6",
        statement="BBSched improves node utilization on Cori-S4 by 16.28% "
                  "over the baseline",
        metric="node_usage", magnitude=0.1628,
    ),
    PaperClaim(
        source="Fig 7",
        statement="BBSched yields the best burst buffer usage for all "
                  "workloads, up to +15.46% over the baseline",
        metric="bb_usage", magnitude=0.1546,
    ),
    PaperClaim(
        source="Fig 8",
        statement="BBSched reduces average job wait time by up to 33.44% on "
                  "Cori and 41% on Theta",
        metric="avg_wait", magnitude=0.41,
    ),
    PaperClaim(
        source="Fig 9",
        statement="the most significant wait-time gain comes from small jobs "
                  "(-48.29% on 1-8 node jobs vs -31.59% on 1024-4392)",
        metric="avg_wait",
    ),
    PaperClaim(
        source="Fig 11",
        statement="optimization methods reduce waits of long jobs but "
                  "increase waits of short jobs (fewer backfill holes)",
        metric="avg_wait",
    ),
    PaperClaim(
        source="Fig 13",
        statement="BBSched achieves the best and most balanced Kiviat area; "
                  "other methods' areas shrink as BB pressure grows",
        metric="kiviat_area",
    ),
    PaperClaim(
        source="S5/Fig 14",
        statement="BBSched achieves the best overall performance on all six "
                  "SSD workloads",
        metric="kiviat_area",
    ),
    PaperClaim(
        source="S6",
        statement="overall improvement: 41% over naive, 33% over bin packing, "
                  "35% over constrained, 20% over weighted",
        metric="overall",
    ),
)

#: Table 3 (paper): BBSched under window sizes 10/20/50.
#: {workload: {metric: {window: value}}} — usages as fractions, waits in
#: seconds, slowdown unitless.
TABLE3_PAPER: Dict[str, Dict[str, Dict[int, float]]] = {
    "Cori-S4": {
        "node_usage": {10: 0.6018, 20: 0.6490, 50: 0.6506},
        "bb_usage": {10: 0.9253, 20: 0.9474, 50: 0.9465},
        "avg_wait": {10: 55_732.0, 20: 51_028.0, 50: 50_871.0},
        "avg_slowdown": {10: 162.37, 20: 154.43, 50: 153.20},
    },
    "Theta-S4": {
        "node_usage": {10: 0.6712, 20: 0.7329, 50: 0.7434},
        "bb_usage": {10: 0.8423, 20: 0.8954, 50: 0.8963},
        "avg_wait": {10: 10_402.0, 20: 8_847.0, 50: 8_792.0},
        "avg_slowdown": {10: 8.93, 20: 8.16, 50: 8.08},
    },
}

#: §3.2.3 / §4.3 solver parameters the paper fixes.
PAPER_PARAMETERS = {
    "window": 20,
    "generations": 500,
    "population": 20,
    "mutation": 0.0005,
    "starvation_bound": 50,
    "scheduler_budget_seconds": (15.0, 30.0),
    "decision_trade_factor_2res": 2.0,
    "decision_trade_factor_4res": 4.0,
}


def table3_trend(metric: str, workload: str) -> Tuple[float, float]:
    """Paper Table 3 relative changes (w10→w20, w20→w50) for one metric.

    Returns fractional changes; the reproduction asserts the *shape* —
    a large first step, a flat second step.
    """
    row = TABLE3_PAPER[workload][metric]
    step1 = (row[20] - row[10]) / row[10]
    step2 = (row[50] - row[20]) / row[20]
    return step1, step2
