"""§4.4 "Scheduling Overheads": per-decision wall time of every method.

The paper reports (on a 3.4 GHz i5): Bin_Packing cheapest after the
baseline (~0.1 s at w=50); the optimization methods more expensive but
comfortably within the 15–30 s scheduler budget (BBSched < 2 s even at
G=2000, w=50).  We measure mean selection time per scheduling decision on
window snapshots of configurable size, sweeping G for BBSched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..methods import METHODS_SECTION4, Selector, SystemCapacity, make_selector
from ..simulator.cluster import Available
from .config import BASE_SEED, Scale, get_scale
from .fig2 import TIME_LIMIT_S
from .workloads import get_workload


@dataclass(frozen=True)
class OverheadResult:
    #: {method: mean seconds per selection decision} at the base G
    per_method: Dict[str, float]
    #: {G: mean seconds} for BBSched at the sweep window
    bbsched_by_generations: Dict[int, float]
    window: int
    time_limit: float = TIME_LIMIT_S


def _windows(scale: Scale, window: int, count: int):
    trace = get_workload("Theta-S2", scale)
    jobs = list(trace.jobs)
    machine = trace.machine
    avail = Available(
        nodes=machine.nodes // 2,
        bb=machine.schedulable_bb / 2.0,
        ssd_free={0.0: machine.nodes // 2},
    )
    system = SystemCapacity(nodes=machine.nodes, bb=machine.schedulable_bb)
    step = max((len(jobs) - window) // max(count, 1), 1)
    snaps = [jobs[k * step:k * step + window] for k in range(count)]
    return [s for s in snaps if len(s) == window], avail, system


def _time_method(selector: Selector, snaps, avail, system) -> float:
    selector.bind(system)
    t0 = time.perf_counter()
    for snap in snaps:
        selector.select(snap, avail)
    return (time.perf_counter() - t0) / len(snaps)


def run(
    scale: Optional[Scale] = None,
    *,
    window: int = 50,
    snapshots: int = 3,
    generation_sweep: Sequence[int] = (100, 500, 1000, 2000),
) -> OverheadResult:
    """Measure mean per-decision time for all methods plus a G sweep."""
    sc = scale or get_scale()
    snaps, avail, system = _windows(sc, window, snapshots)
    per_method: Dict[str, float] = {}
    for method in METHODS_SECTION4:
        selector = make_selector(
            method, generations=sc.generations, population=sc.population,
            seed=BASE_SEED,
        )
        per_method[method] = _time_method(selector, snaps, avail, system)
    sweep: Dict[int, float] = {}
    for G in generation_sweep:
        selector = make_selector(
            "BBSched", generations=G, population=sc.population, seed=BASE_SEED
        )
        sweep[G] = _time_method(selector, snaps, avail, system)
    return OverheadResult(
        per_method=per_method, bbsched_by_generations=sweep, window=window
    )


def render(result: OverheadResult) -> str:
    from .report import bar_chart

    a = bar_chart(
        {m: t for m, t in result.per_method.items()},
        fmt=lambda v: f"{v * 1e3:.1f}ms",
        title=f"Scheduling overhead per decision (w={result.window})",
    )
    b = bar_chart(
        {f"G={g}": t for g, t in result.bbsched_by_generations.items()},
        fmt=lambda v: f"{v * 1e3:.1f}ms",
        title="BBSched overhead vs generations",
    )
    worst = max(
        list(result.per_method.values())
        + list(result.bbsched_by_generations.values())
    )
    note = (f"\nworst decision time {worst:.3f}s vs the {result.time_limit:.0f}s "
            "scheduler budget (paper: <2s at G=2000, w=50)")
    return a + "\n\n" + b + note
