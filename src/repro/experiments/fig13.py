"""Figure 13: Kiviat holistic comparison across all workloads (§4.4).

Each workload gets a radar chart over four normalised axes (node usage,
BB usage, reciprocal wait, reciprocal slowdown); a method's polygon area
summarises overall quality.  Expected shape: BBSched the largest and most
balanced area everywhere, and — unlike the other methods — its area does
not shrink as BB pressure rises from Original to S4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from .config import Scale, get_scale
from .grid import run_grid
from .kiviat import AXES_SECTION4, kiviat_areas, normalize
from .workloads import ALL_WORKLOADS


@dataclass(frozen=True)
class KiviatResult:
    #: {workload: {method: polygon area}}
    areas: Dict[str, Dict[str, float]]
    #: {workload: {method: {axis: normalised value}}}
    axes: Dict[str, Dict[str, Dict[str, float]]]
    methods: Tuple[str, ...]
    workloads: Tuple[str, ...]

    def best_method(self, workload: str) -> str:
        row = self.areas[workload]
        return max(row, key=row.get)


def run(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
) -> KiviatResult:
    sc = scale or get_scale()
    grid = run_grid(sc, workloads=workloads, methods=methods)
    areas: Dict[str, Dict[str, float]] = {}
    axes: Dict[str, Dict[str, Dict[str, float]]] = {}
    for w in workloads:
        per_method = {m: grid[(w, m)] for m in methods}
        areas[w] = kiviat_areas(per_method, AXES_SECTION4)
        axes[w] = normalize(per_method, AXES_SECTION4)
    return KiviatResult(
        areas=areas, axes=axes,
        methods=tuple(methods), workloads=tuple(workloads),
    )


def render(result: KiviatResult) -> str:
    from .report import pivot_table

    table = pivot_table(
        result.areas, columns=result.methods,
        fmt=lambda v: f"{v:.3f}",
        title="Figure 13: Kiviat polygon areas (larger = better overall)",
    )
    wins = sum(1 for w in result.workloads if result.best_method(w) == "BBSched")
    return table + (f"\nBBSched has the largest area on "
                    f"{wins}/{len(result.workloads)} workloads")
