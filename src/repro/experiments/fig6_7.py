"""Figures 6 & 7: node usage and burst-buffer usage across the grid (§4.4).

From the 8-method × 10-workload grid:

* Figure 6 — node usage.  Expected shape: BBSched best or tied-best on
  most workloads; Constrained_CPU competitive when burst buffer is
  abundant but collapsing on S3/S4; Weighted_BB / Constrained_BB worst.
* Figure 7 — burst-buffer usage.  Expected shape: BBSched best on all
  workloads; Constrained_CPU the only method not improving on the
  baseline; Bin_Packing's gains small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from .config import Scale, get_scale
from .grid import metric_table, run_grid
from .workloads import ALL_WORKLOADS


@dataclass(frozen=True)
class UsageResult:
    #: {workload: {method: usage fraction}}
    node_usage: Dict[str, Dict[str, float]]
    bb_usage: Dict[str, Dict[str, float]]
    methods: Tuple[str, ...]
    workloads: Tuple[str, ...]

    def best_method(self, metric: str, workload: str) -> str:
        table = self.node_usage if metric == "node_usage" else self.bb_usage
        row = table[workload]
        return max(row, key=row.get)


def run(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
) -> UsageResult:
    """Assemble Figures 6 and 7 from the evaluation grid."""
    sc = scale or get_scale()
    grid = run_grid(sc, workloads=workloads, methods=methods)
    return UsageResult(
        node_usage=metric_table(grid, "node_usage", workloads, methods),
        bb_usage=metric_table(grid, "bb_usage", workloads, methods),
        methods=tuple(methods),
        workloads=tuple(workloads),
    )


def render(result: UsageResult) -> str:
    """ASCII versions of Figures 6 and 7."""
    from .report import percent, pivot_table

    fig6 = pivot_table(
        result.node_usage, columns=result.methods,
        fmt=percent, title="Figure 6: node usage",
    )
    fig7 = pivot_table(
        result.bb_usage, columns=result.methods,
        fmt=percent, title="Figure 7: burst buffer usage",
    )
    wins6 = sum(
        1 for w in result.workloads
        if result.best_method("node_usage", w) == "BBSched"
    )
    wins7 = sum(
        1 for w in result.workloads
        if result.best_method("bb_usage", w) == "BBSched"
    )
    note = (f"\nBBSched best node usage on {wins6}/{len(result.workloads)} "
            f"workloads; best BB usage on {wins7}/{len(result.workloads)} "
            "(paper: 7/10 and 10/10)")
    return fig6 + "\n\n" + fig7 + note
