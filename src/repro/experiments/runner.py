"""Shared simulation runner: one (workload, method) → metrics.

Every figure/table experiment funnels through :func:`run_one`, which wires
the trace's machine spec into a fresh cluster, selects the site base policy
(FCFS for Cori, WFP for Theta — §4.3), runs the engine, and evaluates the
§4.2 metrics over the trimmed measurement interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..backfill import EasyBackfill
from ..methods import make_selector
from ..policies import FCFS, WFP, PriorityPolicy
from ..rng import SeedLike, stable_hash
from ..simulator.engine import SchedulingEngine, SimulationResult
from ..simulator.metrics import (
    MetricsSummary,
    compute_summary,
    trimmed_interval,
    wait_by_bb_request,
    wait_by_job_size,
    wait_by_runtime,
)
from ..windows import WindowPolicy
from ..workloads import Trace
from .config import BASE_SEED, Scale, get_scale


@dataclass
class RunResult:
    """Metrics of one simulation run, ready for table/figure assembly."""

    workload: str
    method: str
    summary: MetricsSummary
    wait_by_size: Dict[str, float]
    wait_by_bb: Dict[str, float]
    wait_by_runtime: Dict[str, float]
    makespan: float
    selector_calls: int
    mean_selector_time: float

    def metric(self, name: str) -> float:
        """Look up a metric by its §4.2 name."""
        return self.summary.as_dict()[name]


def policy_for(trace: Trace) -> PriorityPolicy:
    """The site base policy named by the trace's machine spec."""
    return WFP() if trace.machine.base_policy == "wfp" else FCFS()


def run_one(
    trace: Trace,
    method: str,
    scale: Optional[Scale] = None,
    *,
    seed: SeedLike = None,
    window: Optional[int] = None,
    generations: Optional[int] = None,
) -> RunResult:
    """Simulate ``trace`` under ``method`` and evaluate all metrics.

    ``window`` and ``generations`` override the scale's values (used by
    the Table 3 window sweep and the overhead study).
    """
    sc = scale or get_scale()
    selector = make_selector(
        method,
        generations=generations if generations is not None else sc.generations,
        population=sc.population,
        mutation=sc.mutation,
        seed=seed if seed is not None else BASE_SEED ^ stable_hash(method) & 0xFFFF,
    )
    engine = SchedulingEngine(
        trace.machine.make_cluster(),
        policy_for(trace),
        selector,
        WindowPolicy(
            size=window if window is not None else sc.window,
            starvation_bound=sc.starvation_bound,
        ),
        backfill=EasyBackfill(),
    )
    result = engine.run(trace.fresh_jobs())
    interval = trimmed_interval(
        0.0, result.makespan, warmup_fraction=sc.warmup, cooldown_fraction=sc.cooldown
    )
    summary = compute_summary(
        result.jobs,
        result.recorder,
        interval,
        total_nodes=result.total_nodes,
        bb_capacity=result.bb_capacity,
        ssd_capacity=result.ssd_capacity,
    )
    return RunResult(
        workload=trace.name,
        method=method,
        summary=summary,
        wait_by_size=wait_by_job_size(result.jobs, interval),
        wait_by_bb=wait_by_bb_request(result.jobs, interval),
        wait_by_runtime=wait_by_runtime(result.jobs, interval),
        makespan=result.makespan,
        selector_calls=result.stats.selector_calls,
        mean_selector_time=result.stats.mean_selector_time,
    )
