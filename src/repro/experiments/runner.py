"""Shared simulation runner: one (workload, method) → metrics.

Every figure/table experiment funnels through :func:`run_one`, which wires
the trace's machine spec into a fresh cluster, selects the site base policy
(FCFS for Cori, WFP for Theta — §4.3), runs the engine, and evaluates the
§4.2 metrics over the trimmed measurement interval.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional

from ..backfill import EasyBackfill
from ..checkpoint import CheckpointConfig, Checkpointer, load_checkpoint
from ..errors import CheckpointError
from ..methods import make_selector
from ..policies import FCFS, WFP, PriorityPolicy
from ..resilience import FaultInjector, FaultScenario, RetryPolicy, SolverWatchdog
from ..rng import SeedLike, stable_hash
from ..simulator.engine import SchedulingEngine
from ..simulator.metrics import (
    MetricsSummary,
    ResilienceSummary,
    compute_resilience_summary,
    compute_summary,
    trimmed_interval,
    wait_by_bb_request,
    wait_by_job_size,
    wait_by_runtime,
)
from ..telemetry import TelemetrySnapshot, Tracer, get_tracer, snapshot_from, use_tracer
from ..windows import WindowPolicy
from ..workloads import Trace
from .config import BASE_SEED, Scale, get_scale


@dataclass
class RunResult:
    """Metrics of one simulation run, ready for table/figure assembly."""

    workload: str
    method: str
    summary: MetricsSummary
    wait_by_size: Dict[str, float]
    wait_by_bb: Dict[str, float]
    wait_by_runtime: Dict[str, float]
    makespan: float
    selector_calls: int
    mean_selector_time: float
    #: summary of the per-pass method-vs-exact optimality gap (count /
    #: mean / max / p95 / skipped); None unless ``yardstick=True``.
    optimality_gap: Optional[Dict[str, float]] = None
    #: fault-run metrics; None when neither faults nor a watchdog were active
    resilience: Optional[ResilienceSummary] = None
    #: per-run telemetry (span summary + metrics registry); populated when
    #: ``collect_telemetry=True`` or a tracer is active, else None.  Small
    #: and picklable, so it survives the trip back from pool workers.
    telemetry: Optional[TelemetrySnapshot] = None

    def metric(self, name: str) -> float:
        """Look up a metric by its §4.2 name (or a resilience metric)."""
        table = self.summary.as_dict()
        if self.resilience is not None:
            table.update(self.resilience.as_dict())
        return table[name]


def policy_for(trace: Trace) -> PriorityPolicy:
    """The site base policy named by the trace's machine spec."""
    return WFP() if trace.machine.base_policy == "wfp" else FCFS()


def run_one(
    trace: Trace,
    method: str,
    scale: Optional[Scale] = None,
    *,
    seed: SeedLike = None,
    window: Optional[int] = None,
    generations: Optional[int] = None,
    faults: Optional[FaultScenario] = None,
    retry: Optional[RetryPolicy] = None,
    watchdog_budget: Optional[float] = None,
    eval_cache: bool = True,
    solver: Optional[str] = None,
    yardstick: bool = False,
    fast_engine: bool = True,
    collect_telemetry: bool = False,
    checkpoint: Optional[CheckpointConfig] = None,
    resume_from: Optional[str] = None,
) -> RunResult:
    """Simulate ``trace`` under ``method`` and evaluate all metrics.

    ``window`` and ``generations`` override the scale's values (used by
    the Table 3 window sweep and the overhead study).  ``faults`` and
    ``watchdog_budget`` override the scale's resilience knobs, so any
    figure experiment reruns under a fault scenario by replacing its
    scale (see ``Scale.faults``) or any single run by passing them here.

    ``eval_cache=False`` disables the GA evaluation memo
    (:mod:`repro.core.evalcache`) — the slower reference path that
    produces byte-identical results, used by the differential tests and
    the performance benchmark.  Like the other selector knobs it is baked
    into checkpoints and therefore ignored on resume.

    ``solver`` names a window solver from :mod:`repro.solvers.registry`
    (``"ga"``, ``"scalar"``, ``"milp"``, ``"exhaustive"``) for the
    solver-backed methods; ``yardstick=True`` re-solves every selection
    pass exactly and attaches the GA-vs-exact optimality-gap summary to
    the result (see ``docs/solvers.md``).  Both are baked into
    checkpoints, like the other selector knobs.

    ``fast_engine=False`` likewise disables the engine's array-backed fast
    path (vectorized queue ordering, the FCFS order cache, incremental
    planned releases) — again a byte-identical reference path, exposed on
    the CLI as ``--no-fast-engine`` and pinned by the differential tests.

    ``collect_telemetry=True`` installs a private tracer for the run and
    attaches a :class:`~repro.telemetry.TelemetrySnapshot` to the result
    (this also works inside :func:`repro.parallel.parallel_map` workers —
    the snapshot pickles home).  When a tracer is already active in the
    process (e.g. the CLI's ``--trace``), the run records into it and the
    snapshot covers just this run's spans.

    ``checkpoint`` snapshots the run per its
    :class:`~repro.checkpoint.CheckpointConfig`; ``resume_from`` restores
    a snapshotted engine and continues it instead of starting fresh (the
    selector/fault/seed knobs above are baked into the snapshot, so their
    arguments are ignored on resume — only the trace and method are
    cross-checked against the checkpoint's manifest).  See
    ``docs/checkpointing.md``.
    """
    sc = scale or get_scale()
    if resume_from is not None:
        engine, header = load_checkpoint(resume_from)
        meta = header["manifest"].get("meta", {})
        for key, expected in (("workload", trace.name), ("method", method)):
            recorded = meta.get(key)
            if recorded is not None and recorded != expected:
                raise CheckpointError(
                    f"{resume_from}: checkpoint is for {key}={recorded!r}, "
                    f"cannot resume it as {key}={expected!r}"
                )
        run_engine = lambda: engine.continue_run(checkpointer=checkpointer)  # noqa: E731
    else:
        scenario = faults if faults is not None else sc.faults
        budget = watchdog_budget if watchdog_budget is not None else sc.watchdog_budget
        selector = make_selector(
            method,
            generations=generations if generations is not None else sc.generations,
            population=sc.population,
            mutation=sc.mutation,
            seed=seed if seed is not None else BASE_SEED ^ stable_hash(method) & 0xFFFF,
            eval_cache=eval_cache,
            solver=solver,
            yardstick=yardstick,
        )
        if budget is not None:
            selector = SolverWatchdog(selector, budget)
        injector = (
            FaultInjector(scenario) if scenario is not None and scenario.enabled else None
        )
        engine = SchedulingEngine(
            trace.machine.make_cluster(),
            policy_for(trace),
            selector,
            WindowPolicy(
                size=window if window is not None else sc.window,
                starvation_bound=sc.starvation_bound,
            ),
            backfill=EasyBackfill(),
            faults=injector,
            retry=retry,
            fast=fast_engine,
        )
        run_engine = lambda: engine.run(trace.fresh_jobs(), checkpointer=checkpointer)  # noqa: E731
    checkpointer = None
    if checkpoint is not None:
        checkpointer = Checkpointer(checkpoint, meta={
            "workload": trace.name, "method": method, "scale": sc.name,
            "seed": seed if isinstance(seed, int) else None,
        })
    signal_scope = checkpointer.signals() if checkpointer is not None else nullcontext()
    active = get_tracer()
    with signal_scope:
        if collect_telemetry and not active.enabled:
            # Private tracer: isolates this run's spans (and works in workers,
            # where the process-wide slot is at its NULL default).
            with use_tracer(Tracer()) as tracer:
                mark = tracer.mark()
                result = run_engine()
        else:
            tracer = active
            mark = tracer.mark() if tracer.enabled else 0
            result = run_engine()
    telemetry = None
    if collect_telemetry or tracer.enabled:
        telemetry = snapshot_from(
            tracer if tracer.enabled else None, engine.metrics, since=mark
        )
    interval = trimmed_interval(
        0.0, result.makespan, warmup_fraction=sc.warmup, cooldown_fraction=sc.cooldown
    )
    summary = compute_summary(
        result.jobs,
        result.recorder,
        interval,
        total_nodes=result.total_nodes,
        bb_capacity=result.bb_capacity,
        ssd_capacity=result.ssd_capacity,
    )
    resilience = None
    # Derived from the engine (not the arguments) so resumed runs report
    # resilience iff the snapshotted run was fault-injected or watchdogged.
    if engine.faults is not None or isinstance(engine.selector, SolverWatchdog):
        resilience = compute_resilience_summary(
            result.jobs,
            result.recorder,
            result.stats,
            interval,
            total_nodes=result.total_nodes,
        )
    # The engine folded any yardstick measurements into its telemetry
    # registry at end of run; summarise them for the result.
    gap_hist = engine.metrics.histograms.get("ga.optimality_gap")
    optimality_gap = None
    if gap_hist is not None and gap_hist.count:
        skipped = engine.metrics.counters.get("ga.yardstick.skipped")
        optimality_gap = {
            "count": float(gap_hist.count),
            "mean": gap_hist.mean,
            "max": gap_hist.max,
            "p95": gap_hist.percentile(95),
            "skipped": float(skipped.value) if skipped is not None else 0.0,
        }
    return RunResult(
        workload=trace.name,
        method=method,
        summary=summary,
        wait_by_size=wait_by_job_size(result.jobs, interval),
        wait_by_bb=wait_by_bb_request(result.jobs, interval),
        wait_by_runtime=wait_by_runtime(result.jobs, interval),
        makespan=result.makespan,
        selector_calls=result.stats.selector_calls,
        mean_selector_time=result.stats.mean_selector_time,
        optimality_gap=optimality_gap,
        resilience=resilience,
        telemetry=telemetry,
    )
