"""Table 1: the illustrative 5-job example (§1).

A 100-node system with 100 TB of burst buffer and five queued jobs.  The
experiment reproduces Table 1(b): the selection each scheduling method
makes, its node/BB utilization, and the true Pareto set (Solutions 2 and
3) that only BBSched's MOO formulation surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core import ExhaustiveSolver, SelectionProblem
from ..methods import METHODS_SECTION4, Selector, SystemCapacity, make_selector
from ..simulator.cluster import Available
from ..simulator.job import Job
from ..units import TB
from .config import BASE_SEED

#: The Table 1(a) job queue: (name, nodes, burst buffer TB).
TABLE1_JOBS: Tuple[Tuple[str, int, float], ...] = (
    ("J1", 80, 20.0),
    ("J2", 10, 85.0),
    ("J3", 40, 5.0),
    ("J4", 10, 0.0),
    ("J5", 20, 0.0),
)

NODES = 100
BB = 100.0 * TB


def make_queue() -> List[Job]:
    """The five Table 1(a) jobs."""
    return [
        Job(jid=i + 1, submit_time=0.0, runtime=3600.0, walltime=3600.0,
            nodes=nodes, bb=bb * TB, user=name)
        for i, (name, nodes, bb) in enumerate(TABLE1_JOBS)
    ]


@dataclass(frozen=True)
class Table1Row:
    """One method's selection decision."""

    method: str
    selected: Tuple[str, ...]
    node_utilization: float
    bb_utilization: float


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[Table1Row, ...]
    #: the true Pareto set as (selected names, node util, bb util) triples
    pareto: Tuple[Tuple[Tuple[str, ...], float, float], ...]


def run(*, generations: int = 500, seed: int = BASE_SEED) -> Table1Result:
    """Reproduce Table 1(b)."""
    jobs = make_queue()
    avail = Available(nodes=NODES, bb=BB, ssd_free={0.0: NODES})
    system = SystemCapacity(nodes=NODES, bb=BB)

    rows = []
    for method in METHODS_SECTION4:
        selector = make_selector(method, generations=generations, seed=seed)
        selector.bind(system)
        picks = selector.select(jobs, avail)
        Selector.verify_feasible(jobs, avail, picks)
        names = tuple(jobs[i].user for i in sorted(picks))
        rows.append(Table1Row(
            method=method,
            selected=names,
            node_utilization=sum(jobs[i].nodes for i in picks) / NODES,
            bb_utilization=sum(jobs[i].bb for i in picks) / BB,
        ))

    problem = SelectionProblem.from_window(jobs, NODES, BB)
    front = ExhaustiveSolver().solve(problem)
    pareto = tuple(
        (
            tuple(jobs[i].user for i in np.flatnonzero(g)),
            float(o[0]) / NODES,
            float(o[1]) / BB,
        )
        for g, o in zip(front.genes, front.objectives)
    )
    return Table1Result(rows=tuple(rows), pareto=pareto)


def render(result: Table1Result) -> str:
    """ASCII version of Table 1(b)."""
    from .report import format_table, percent

    rows = [
        [r.method, "+".join(r.selected) or "-",
         percent(r.node_utilization), percent(r.bb_utilization)]
        for r in result.rows
    ]
    table = format_table(
        rows, ["Method", "Selected", "Node util", "BB util"],
        title="Table 1(b): scheduling decisions on the illustrative example",
    )
    pareto_rows = [
        ["+".join(names), percent(nu), percent(bu)]
        for names, nu, bu in result.pareto
    ]
    pareto_table = format_table(
        pareto_rows, ["Pareto solution", "Node util", "BB util"],
        title="True Pareto set (exhaustive)",
    )
    return table + "\n\n" + pareto_table
