"""Figure 5: burst-buffer request histograms for the ten workloads (§4.1).

Per workload: a histogram of the positive BB requests (10 TB bins in the
paper) and the aggregated requested volume shown in parentheses.  The
features to reproduce: S3/S4 sit at larger requests than S1/S2; S2/S4
carry more requesting jobs (hence volume) than S1/S3; the Original
workloads barely register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..units import TB
from .config import Scale, get_scale
from .workloads import ALL_WORKLOADS, get_all_workloads


@dataclass(frozen=True)
class Fig5Histogram:
    workload: str
    #: (bin left edge in TB, count) pairs; bin width = ``bin_tb``
    bins: Tuple[Tuple[float, int], ...]
    bin_tb: float
    total_volume_tb: float     #: the parenthetical aggregate in Figure 5
    n_requests: int


@dataclass(frozen=True)
class Fig5Result:
    histograms: Dict[str, Fig5Histogram]


def run(
    scale: Optional[Scale] = None,
    *,
    bin_tb: float = 10.0,
    workloads: Sequence[str] = ALL_WORKLOADS,
) -> Fig5Result:
    """Histogram every workload's BB requests."""
    sc = scale or get_scale()
    traces = get_all_workloads(sc)
    out: Dict[str, Fig5Histogram] = {}
    for name in workloads:
        trace = traces[name]
        requests_tb = trace.bb_requests() / TB
        if requests_tb.size:
            top = float(requests_tb.max())
            edges = np.arange(0.0, top + bin_tb, bin_tb)
            counts, _ = np.histogram(requests_tb, bins=edges)
            bins = tuple(
                (float(edges[i]), int(counts[i]))
                for i in range(len(counts)) if counts[i] > 0
            )
        else:
            bins = ()
        out[name] = Fig5Histogram(
            workload=name,
            bins=bins,
            bin_tb=bin_tb,
            total_volume_tb=trace.total_bb_volume() / TB,
            n_requests=int(requests_tb.size),
        )
    return Fig5Result(histograms=out)


def render(result: Fig5Result) -> str:
    """ASCII version of Figure 5."""
    from .report import bar_chart

    parts = []
    for name, h in result.histograms.items():
        title = (f"{name} ({h.total_volume_tb:,.0f} TB requested, "
                 f"{h.n_requests} requesting jobs)")
        if not h.bins:
            parts.append(title + "\n(no burst buffer requests)")
            continue
        values = {
            f"[{left:.0f},{left + h.bin_tb:.0f})TB": float(count)
            for left, count in h.bins
        }
        parts.append(bar_chart(values, fmt=lambda v: f"{v:.0f}", title=title))
    return "\n\n".join(parts)
