"""Ablations of BBSched's design choices (DESIGN.md §Key design decisions).

Not a paper figure — these benches quantify the knobs the paper fixes:

* **GA selection scheme** — the paper's age-based Pareto carry-over vs
  NSGA-II crowding-distance truncation (solution quality via GD).
* **Decision-rule trade factor** — sweeping the 2× threshold shows the
  utilization balance shifting between nodes and burst buffer.
* **Starvation bound** — tightening it trades utilization for fairness to
  stuck jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import (
    DecisionRule,
    ExhaustiveSolver,
    MOGASolver,
    SelectionProblem,
    generational_distance,
)
from ..core.bbsched import BBSchedSelector
from ..backfill import EasyBackfill
from ..simulator.engine import SchedulingEngine
from ..simulator.metrics import compute_summary, trimmed_interval
from ..windows import WindowPolicy
from .config import BASE_SEED, Scale, get_scale
from .runner import policy_for
from .workloads import get_workload


@dataclass(frozen=True)
class SelectionAblation:
    #: {scheme: mean GD}
    gd: Dict[str, float]
    #: {scheme: mean seconds per solve}
    seconds: Dict[str, float]


def ablate_ga_selection(
    scale: Optional[Scale] = None, *, window: int = 14, n_windows: int = 3
) -> SelectionAblation:
    """Age-based (paper) vs crowding-distance GA selection, measured by GD."""
    sc = scale or get_scale()
    trace = get_workload("Theta-S2", sc)
    jobs = list(trace.jobs)
    machine = trace.machine
    problems = []
    step = max((len(jobs) - window) // n_windows, 1)
    for k in range(n_windows):
        chunk = jobs[k * step:k * step + window]
        if len(chunk) == window:
            problems.append(SelectionProblem.from_window(
                chunk, machine.nodes // 2, machine.schedulable_bb / 2.0))
    oracle = ExhaustiveSolver()
    truths = [oracle.solve(p) for p in problems]
    norm = [float(machine.nodes), machine.schedulable_bb]

    gd: Dict[str, float] = {}
    seconds: Dict[str, float] = {}
    for scheme in ("age", "crowding"):
        vals = []
        t0 = time.perf_counter()
        for i, p in enumerate(problems):
            solver = MOGASolver(generations=sc.generations,
                                population=sc.population,
                                selection=scheme, seed=BASE_SEED + i)
            vals.append(generational_distance(
                solver.solve(p).objectives, truths[i].objectives, normalize=norm))
        seconds[scheme] = (time.perf_counter() - t0) / len(problems)
        gd[scheme] = float(np.mean(vals))
    return SelectionAblation(gd=gd, seconds=seconds)


@dataclass(frozen=True)
class TradeFactorAblation:
    #: {factor: (node usage, bb usage)}
    usages: Dict[float, Tuple[float, float]]


def ablate_trade_factor(
    scale: Optional[Scale] = None,
    *,
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    workload: str = "Theta-S4",
) -> TradeFactorAblation:
    """Sweep the §3.2.4 trade factor and observe the utilization balance.

    Small factors trade nodes for burst buffer eagerly; large factors
    almost never leave the node-maximal solution.
    """
    sc = scale or get_scale()
    trace = get_workload(workload, sc)
    usages: Dict[float, Tuple[float, float]] = {}
    for factor in factors:
        selector = BBSchedSelector(
            generations=sc.generations, population=sc.population,
            decision=DecisionRule(trade_factor=factor), seed=BASE_SEED,
        )
        engine = SchedulingEngine(
            trace.machine.make_cluster(), policy_for(trace), selector,
            WindowPolicy(size=sc.window, starvation_bound=sc.starvation_bound),
            backfill=EasyBackfill(),
        )
        res = engine.run(trace.fresh_jobs())
        iv = trimmed_interval(0.0, res.makespan,
                              warmup_fraction=sc.warmup,
                              cooldown_fraction=sc.cooldown)
        s = compute_summary(res.jobs, res.recorder, iv,
                            total_nodes=res.total_nodes,
                            bb_capacity=res.bb_capacity)
        usages[factor] = (s.node_usage, s.bb_usage)
    return TradeFactorAblation(usages=usages)


@dataclass(frozen=True)
class StarvationAblation:
    #: {bound: (node usage, max wait seconds)}
    outcomes: Dict[int, Tuple[float, float]]


def ablate_starvation_bound(
    scale: Optional[Scale] = None,
    *,
    bounds: Sequence[int] = (5, 20, 50, 200),
    workload: str = "Theta-S4",
) -> StarvationAblation:
    """Sweep the §3.1 starvation bound: fairness versus utilization."""
    sc = scale or get_scale()
    trace = get_workload(workload, sc)
    outcomes: Dict[int, Tuple[float, float]] = {}
    for bound in bounds:
        selector = BBSchedSelector(
            generations=sc.generations, population=sc.population, seed=BASE_SEED
        )
        engine = SchedulingEngine(
            trace.machine.make_cluster(), policy_for(trace), selector,
            WindowPolicy(size=sc.window, starvation_bound=bound),
            backfill=EasyBackfill(),
        )
        res = engine.run(trace.fresh_jobs())
        iv = trimmed_interval(0.0, res.makespan,
                              warmup_fraction=sc.warmup,
                              cooldown_fraction=sc.cooldown)
        s = compute_summary(res.jobs, res.recorder, iv,
                            total_nodes=res.total_nodes,
                            bb_capacity=res.bb_capacity)
        max_wait = max((j.wait_time for j in res.jobs
                        if j.start_time is not None), default=0.0)
        outcomes[bound] = (s.node_usage, max_wait)
    return StarvationAblation(outcomes=outcomes)
