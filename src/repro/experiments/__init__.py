"""Experiment runners: one module per paper table/figure.

See DESIGN.md's experiment index for the mapping.  Every module exposes
``run(scale=...) -> result`` and ``render(result) -> str``.
"""

from . import (
    ablation,
    fig2,
    fig4,
    fig5,
    fig6_7,
    fig8,
    fig9_11,
    fig12,
    fig13,
    fig14,
    overheads,
    table1,
    table3,
)
from .config import BASE_SEED, SCALES, Scale, get_scale
from .grid import metric_table, run_grid
from .kiviat import AXES_SECTION4, AXES_SECTION5, kiviat_areas, normalize, polygon_area
from .runner import RunResult, policy_for, run_one
from .workloads import (
    ALL_WORKLOADS,
    CORI_WORKLOADS,
    THETA_WORKLOADS,
    get_all_workloads,
    get_ssd_workloads,
    get_workload,
)

__all__ = [
    "Scale",
    "SCALES",
    "BASE_SEED",
    "get_scale",
    "RunResult",
    "run_one",
    "policy_for",
    "run_grid",
    "metric_table",
    "get_workload",
    "get_all_workloads",
    "get_ssd_workloads",
    "ALL_WORKLOADS",
    "CORI_WORKLOADS",
    "THETA_WORKLOADS",
    "kiviat_areas",
    "normalize",
    "polygon_area",
    "AXES_SECTION4",
    "AXES_SECTION5",
    "table1",
    "table3",
    "fig2",
    "fig4",
    "fig5",
    "fig6_7",
    "fig8",
    "fig9_11",
    "fig12",
    "fig13",
    "fig14",
    "overheads",
    "ablation",
]
