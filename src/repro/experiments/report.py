"""ASCII rendering of experiment results (tables and bar charts).

The paper's figures are bar charts and Kiviat plots; on a terminal we
render the same data as aligned tables and horizontal bars, which is what
the benchmark harness prints and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

#: Width of the bar area in ASCII bar charts.
BAR_WIDTH = 40


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pivot_table(
    data: Mapping[str, Mapping[str, float]],
    *,
    columns: Sequence[str],
    fmt: Callable[[float], str] = lambda v: f"{v:.3f}",
    row_header: str = "workload",
    title: Optional[str] = None,
) -> str:
    """Render ``{row: {column: value}}`` as a table."""
    rows = []
    for row_label, values in data.items():
        rows.append([row_label] + [
            fmt(values[c]) if c in values else "-" for c in columns
        ])
    return format_table(rows, [row_header] + list(columns), title=title)


def bar_chart(
    values: Mapping[str, float],
    *,
    fmt: Callable[[float], str] = lambda v: f"{v:.3f}",
    title: Optional[str] = None,
    max_value: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart of labelled values."""
    if not values:
        return title or ""
    peak = max_value if max_value is not None else max(values.values())
    peak = peak if peak > 0 else 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        n = int(round(BAR_WIDTH * max(value, 0.0) / peak))
        lines.append(f"{label.ljust(label_w)} | {'#' * n:<{BAR_WIDTH}} {fmt(value)}")
    return "\n".join(lines)


def percent(v: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * v:.2f}%"


def hours(seconds: float) -> str:
    """Format seconds as hours."""
    return f"{seconds / 3600.0:.2f}h"


def improvement_vs(
    data: Mapping[str, float], baseline_key: str, *, lower_is_better: bool = False
) -> Dict[str, float]:
    """Relative improvement of each entry over a baseline entry.

    For lower-is-better metrics (wait, slowdown), improvement is the
    fractional *reduction*; otherwise the fractional increase.
    """
    base = data[baseline_key]
    out = {}
    for key, value in data.items():
        if base == 0:
            out[key] = 0.0
        elif lower_is_better:
            out[key] = (base - value) / base
        else:
            out[key] = (value - base) / base
    return out
