"""Table 3: BBSched sensitivity to the window size (§4.4).

BBSched runs on Cori-S4 and Theta-S4 with windows of 10, 20, and 50.
Expected shape: every metric improves markedly from w=10 to w=20, then
flattens from w=20 to w=50 — the basis for the paper's recommendation of
w≈20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .config import BASE_SEED, Scale, get_scale
from .runner import RunResult, run_one
from .workloads import get_workload

#: Window sizes of Table 3.
DEFAULT_WINDOWS: Tuple[int, ...] = (10, 20, 50)
#: The two stressed workloads of Table 3.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("Cori-S4", "Theta-S4")


@dataclass(frozen=True)
class Table3Result:
    #: {workload: {window size: RunResult}}
    runs: Dict[str, Dict[int, RunResult]]
    windows: Tuple[int, ...]
    workloads: Tuple[str, ...]

    def metric(self, workload: str, window: int, name: str) -> float:
        return self.runs[workload][window].metric(name)


def run(
    scale: Optional[Scale] = None,
    *,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Table3Result:
    sc = scale or get_scale()
    runs: Dict[str, Dict[int, RunResult]] = {}
    for wl in workloads:
        trace = get_workload(wl, sc)
        runs[wl] = {
            w: run_one(trace, "BBSched", sc, window=w, seed=BASE_SEED + w)
            for w in windows
        }
    return Table3Result(runs=runs, windows=tuple(windows),
                        workloads=tuple(workloads))


def render(result: Table3Result) -> str:
    from .report import format_table, hours, percent

    metrics = (
        ("CPU usage", "node_usage", percent),
        ("Burst buffer usage", "bb_usage", percent),
        ("Average job wait time", "avg_wait", hours),
        ("Average slowdown", "avg_slowdown", lambda v: f"{v:.2f}"),
    )
    rows = []
    for label, key, fmt in metrics:
        for wl in result.workloads:
            rows.append(
                [f"{label} ({wl})"]
                + [fmt(result.metric(wl, w, key)) for w in result.windows]
            )
    headers = ["Metric"] + [f"w={w}" for w in result.windows]
    return format_table(
        rows, headers,
        title="Table 3: BBSched performance under different window sizes",
    )
