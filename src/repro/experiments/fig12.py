"""Figure 12: average job slowdown across the grid (§4.4).

Expected shape: trends mirror Figure 8's wait times; the heavy-BB
workloads (Cori-S4, Theta-S4) show markedly higher slowdowns because BB
contention idles nodes while the queue grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..methods import METHODS_SECTION4
from .config import Scale, get_scale
from .grid import metric_table, run_grid
from .workloads import ALL_WORKLOADS


@dataclass(frozen=True)
class SlowdownResult:
    #: {workload: {method: average slowdown}}
    avg_slowdown: Dict[str, Dict[str, float]]
    methods: Tuple[str, ...]
    workloads: Tuple[str, ...]


def run(
    scale: Optional[Scale] = None,
    *,
    workloads: Sequence[str] = ALL_WORKLOADS,
    methods: Sequence[str] = METHODS_SECTION4,
) -> SlowdownResult:
    sc = scale or get_scale()
    grid = run_grid(sc, workloads=workloads, methods=methods)
    return SlowdownResult(
        avg_slowdown=metric_table(grid, "avg_slowdown", workloads, methods),
        methods=tuple(methods),
        workloads=tuple(workloads),
    )


def render(result: SlowdownResult) -> str:
    from .report import pivot_table

    return pivot_table(
        result.avg_slowdown, columns=result.methods,
        fmt=lambda v: f"{v:.2f}",
        title="Figure 12: average slowdown (lower is better)",
    )
