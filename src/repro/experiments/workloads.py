"""Deterministic construction of the paper's evaluation workloads.

Builds the ten §4.1 workloads (Cori/Theta × {Original, S1–S4}) and the six
§5 SSD workloads (Cori/Theta × {S5–S7}) from the synthetic generators, one
fixed seed per (machine, scale) so every experiment sees identical traces.

The Theta Original workload is produced through the full paper pipeline:
generate a trace *without* burst-buffer requests, synthesise Darshan I/O
records, and extract BB requests from data volumes — exactly the §4.1
trace-enhancement path.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from ..rng import split_rng, stable_hash
from ..workloads import (
    CORI,
    THETA,
    Trace,
    cori_profile,
    enhance_trace_with_darshan,
    generate,
    make_bb_suite,
    make_ssd_suite,
    synthesize_darshan_log,
    theta_profile,
)
from .config import BASE_SEED, Scale, get_scale

#: Workload labels in the paper's presentation order (Figures 6-8, 12, 13).
CORI_WORKLOADS = tuple(f"Cori-{s}" for s in ("Original", "S1", "S2", "S3", "S4"))
THETA_WORKLOADS = tuple(f"Theta-{s}" for s in ("Original", "S1", "S2", "S3", "S4"))
ALL_WORKLOADS = CORI_WORKLOADS + THETA_WORKLOADS


@lru_cache(maxsize=8)
def _suites(scale_name: str, n_jobs: int) -> Dict[str, Trace]:
    """All §4.1 workloads for one scale (cached — traces are reused)."""
    scale = get_scale(scale_name)
    gen_rngs = split_rng(BASE_SEED, 6, salt=stable_hash(scale_name) & 0xFFFF)

    cori_base = generate(
        cori_profile(n_jobs=n_jobs, machine=CORI.scaled(scale.cori_factor)),
        seed=gen_rngs[0],
    )
    theta_raw = generate(
        theta_profile(
            n_jobs=n_jobs, bb_fraction=0.0,
            machine=THETA.scaled(scale.theta_factor),
        ),
        seed=gen_rngs[1],
    )
    # Theta's BB requests come from Darshan I/O volumes (§4.1).
    darshan = synthesize_darshan_log(theta_raw, seed=gen_rngs[2])
    theta_base = enhance_trace_with_darshan(theta_raw, darshan)

    out: Dict[str, Trace] = {}
    out.update(make_bb_suite(cori_base, seed=gen_rngs[3], machine_label="Cori"))
    out.update(make_bb_suite(theta_base, seed=gen_rngs[4], machine_label="Theta"))
    return out


def get_workload(name: str, scale: Scale | None = None) -> Trace:
    """One of the ten §4.1 workloads, e.g. ``"Theta-S4"``."""
    sc = scale or get_scale()
    suites = _suites(sc.name, sc.n_jobs)
    if name not in suites:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(suites)}")
    return suites[name]


def get_all_workloads(scale: Scale | None = None) -> Dict[str, Trace]:
    """All ten §4.1 workloads keyed by label."""
    sc = scale or get_scale()
    return dict(_suites(sc.name, sc.n_jobs))


@lru_cache(maxsize=8)
def _ssd_suites(scale_name: str, n_jobs: int) -> Dict[str, Trace]:
    """The §5 S5–S7 workloads, built on the S2 traces."""
    sc_rngs = split_rng(BASE_SEED, 2, salt=0x55D)
    base = _suites(scale_name, n_jobs)
    out: Dict[str, Trace] = {}
    out.update(make_ssd_suite(base["Cori-S2"], seed=sc_rngs[0], machine_label="Cori"))
    out.update(make_ssd_suite(base["Theta-S2"], seed=sc_rngs[1], machine_label="Theta"))
    return out


def get_ssd_workloads(scale: Scale | None = None) -> Dict[str, Trace]:
    """The six §5 workloads (Cori/Theta × S5–S7)."""
    sc = scale or get_scale()
    return dict(_ssd_suites(sc.name, sc.n_jobs))
