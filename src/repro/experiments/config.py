"""Experiment scales: smoke / default / paper.

Every experiment module accepts a :class:`Scale` controlling trace length
and GA effort.  ``paper`` reproduces §4.3's parameters exactly (w=20,
G=500, P=20, p_m=0.05 %) on month-scale traces; ``default`` is sized so
the full table/figure suite regenerates on a single laptop core in
minutes; ``smoke`` exists for CI.

The environment variable ``REPRO_SCALE`` overrides the scale globally
(used by the benchmark harness: ``REPRO_SCALE=paper pytest benchmarks/``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..resilience.faults import FaultScenario

#: Base seed from which all experiment randomness derives.
BASE_SEED = 20190624  # HPDC'19 conference date


@dataclass(frozen=True)
class Scale:
    """Knobs shared by every experiment."""

    name: str
    n_jobs: int            #: jobs per workload trace
    generations: int       #: GA generations G
    population: int        #: GA population P
    window: int            #: window size w
    mutation: float = 0.0005
    #: §3.1's anti-starvation bound, in scheduling invocations.  The paper
    #: cites 50; scheduling invocations fire at every job event, so the
    #: bound must grow with trace event density or forcing (which bypasses
    #: the method under study) dominates the run.  Values are set so
    #: forcing stays the rare safety net the paper intends.
    starvation_bound: int = 50
    #: measurement-interval trim fractions (the paper drops the first and
    #: last half month of its multi-month traces)
    warmup: float = 0.1
    cooldown: float = 0.1
    #: machine shrink factors.  Trace length must stay proportional to the
    #: machine or queueing never develops (a 400-job trace cannot sustain a
    #: backlog on 12k nodes); shrinking Cori keeps its many-small-jobs
    #: character while a laptop-scale trace still saturates it.  Theta's
    #: capability jobs are large enough that the full machine saturates at
    #: a few hundred jobs.
    cori_factor: int = 8
    theta_factor: int = 1
    #: fault scenario injected into every run at this scale (None = ideal
    #: hardware, the default — resilience is strictly opt-in).  Set via
    #: ``dataclasses.replace(scale, faults=...)`` or the CLI ``--faults``
    #: flag to rerun any figure experiment under failures.
    faults: Optional[FaultScenario] = None
    #: wall-clock budget (seconds) for each selection, enforced by a
    #: :class:`~repro.resilience.SolverWatchdog`; None disables the guard.
    watchdog_budget: Optional[float] = None


SCALES: Dict[str, Scale] = {
    "smoke": Scale(name="smoke", n_jobs=80, generations=20, population=12,
                   window=10, cori_factor=32, theta_factor=8,
                   starvation_bound=50),
    "default": Scale(name="default", n_jobs=600, generations=60, population=20,
                     window=20, cori_factor=8, theta_factor=1,
                     starvation_bound=600),
    "paper": Scale(name="paper", n_jobs=4000, generations=500, population=20,
                   window=20, cori_factor=2, theta_factor=1,
                   starvation_bound=2000),
}


def get_scale(scale: Optional[str] = None) -> Scale:
    """Resolve a scale by name, honouring the ``REPRO_SCALE`` override."""
    name = scale or os.environ.get("REPRO_SCALE") or "default"
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; known: {sorted(SCALES)}"
        ) from None
