"""Kiviat (radar) normalisation for the holistic comparison (Fig 13/14).

The paper normalises every metric to [0, 1] across the methods of one
workload — 1 for the best method, 0 for the worst — using the reciprocal
of average wait time and slowdown so that "larger is better" holds on all
axes.  A method's overall quality is the area of its polygon; BBSched's
claim is the largest, most balanced area.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..errors import ConfigurationError
from .runner import RunResult

#: Axes of the §4 Kiviat chart, in presentation order.
AXES_SECTION4 = ("node_usage", "bb_usage", "1/avg_wait", "1/avg_slowdown")
#: §5 adds SSD utilization and the reciprocal of wasted SSD.
AXES_SECTION5 = AXES_SECTION4 + ("ssd_usage", "1/ssd_waste")


def axis_value(result: RunResult, axis: str) -> float:
    """Raw value of one Kiviat axis (reciprocals applied)."""
    if axis.startswith("1/"):
        name = axis[2:]
        raw = result.metric({"avg_wait": "avg_wait", "avg_slowdown": "avg_slowdown",
                             "ssd_waste": "ssd_waste"}[name])
        return 1.0 / raw if raw > 0 else math.inf
    return result.metric(axis)


def normalize(
    per_method: Mapping[str, RunResult], axes: Sequence[str] = AXES_SECTION4
) -> Dict[str, Dict[str, float]]:
    """Normalise each axis to [0, 1] across methods (1=best, 0=worst)."""
    if not per_method:
        raise ConfigurationError("no methods to normalise")
    raw = {
        m: {a: axis_value(r, a) for a in axes} for m, r in per_method.items()
    }
    out: Dict[str, Dict[str, float]] = {m: {} for m in raw}
    for a in axes:
        finite = [v[a] for v in raw.values() if math.isfinite(v[a])]
        hi = max(finite) if finite else 1.0
        lo = min(finite) if finite else 0.0
        for m in raw:
            v = raw[m][a]
            if not math.isfinite(v):
                out[m][a] = 1.0
            elif hi == lo:
                out[m][a] = 1.0
            else:
                out[m][a] = (v - lo) / (hi - lo)
    return out


def polygon_area(values: Sequence[float]) -> float:
    """Area of a Kiviat polygon with axes at equal angles.

    For k axes with radii r_i, area = ½ sin(2π/k) Σ r_i·r_{i+1}.
    """
    k = len(values)
    if k < 3:
        raise ConfigurationError(f"a Kiviat polygon needs >= 3 axes, got {k}")
    s = sum(values[i] * values[(i + 1) % k] for i in range(k))
    return 0.5 * math.sin(2.0 * math.pi / k) * s


def kiviat_areas(
    per_method: Mapping[str, RunResult], axes: Sequence[str] = AXES_SECTION4
) -> Dict[str, float]:
    """Normalised Kiviat polygon area per method (Fig 13's visual metric)."""
    norm = normalize(per_method, axes)
    return {m: polygon_area([norm[m][a] for a in axes]) for m in norm}
