"""Unit helpers shared across the package.

All internal quantities use canonical units:

* storage — **gigabytes** (GB).  Burst-buffer and SSD requests in the paper
  span [1 GB, 285 TB], so GB keeps every value an exact small float.
* time — **seconds**.  Traces and simulator clocks are in seconds since an
  arbitrary epoch (usually the first submission).

The constants below convert the units that appear in the paper (TB, PB,
hours) into canonical ones, so experiment code can be written with the same
figures the paper quotes (``1.8 * PB``, ``15 * MINUTES`` …).
"""

from __future__ import annotations

# --- storage (canonical unit: GB) ------------------------------------------
GB: float = 1.0
TB: float = 1024.0 * GB
PB: float = 1024.0 * TB

# --- time (canonical unit: seconds) ----------------------------------------
SECONDS: float = 1.0
MINUTES: float = 60.0 * SECONDS
HOURS: float = 3600.0 * SECONDS
DAYS: float = 24.0 * HOURS
WEEKS: float = 7.0 * DAYS


def gb_to_tb(gb: float) -> float:
    """Convert gigabytes to terabytes."""
    return gb / TB


def tb_to_gb(tb: float) -> float:
    """Convert terabytes to gigabytes."""
    return tb * TB


def seconds_to_hours(s: float) -> float:
    """Convert seconds to hours."""
    return s / HOURS


def hours_to_seconds(h: float) -> float:
    """Convert hours to seconds."""
    return h * HOURS


def fmt_storage(gb: float) -> str:
    """Human-readable storage string, e.g. ``fmt_storage(2048) == '2.0TB'``."""
    if gb >= PB:
        return f"{gb / PB:.2f}PB"
    if gb >= TB:
        return f"{gb / TB:.1f}TB"
    return f"{gb:.0f}GB"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration string, e.g. ``fmt_duration(5400) == '1.5h'``."""
    if seconds >= DAYS:
        return f"{seconds / DAYS:.1f}d"
    if seconds >= HOURS:
        return f"{seconds / HOURS:.1f}h"
    if seconds >= MINUTES:
        return f"{seconds / MINUTES:.1f}m"
    return f"{seconds:.1f}s"
