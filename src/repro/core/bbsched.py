"""BBSched: the paper's multi-resource scheduling scheme (§3).

``BBSchedSelector`` is the plug-in that sits on top of a base scheduler:
at each invocation it formulates the window-selection MOO problem
(§3.2.1 — two objectives for node+burst-buffer systems, §5 — four
objectives when the cluster has heterogeneous local SSD tiers), hands it
to a pluggable :class:`~repro.solvers.base.WindowSolver` (the paper's
multi-objective GA by default, §3.2.2 — or the exact MILP / exhaustive
solvers from :mod:`repro.solvers`), and applies the site decision rule
(§3.2.4) to pick the dispatched solution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..methods.base import Selector
from ..rng import SeedLike, make_rng
from ..simulator.cluster import Available
from ..simulator.job import Job
from ..solvers.base import WindowSolver
from ..solvers.ga import GAWindowSolver
from ..solvers.gap import OptimalityYardstick
from ..telemetry import get_tracer
from .decision import DecisionRule, four_resource_rule, two_resource_rule
from .ga import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from .problem import MOOProblem, SelectionProblem, SSDSelectionProblem


class BBSchedSelector(Selector):
    """Window job selection via MOO + pluggable solver + decision rule.

    Parameters
    ----------
    generations, population, mutation:
        GA parameters ``G``, ``P``, ``p_m`` (§4.3 defaults: 500, 20, 0.05%).
        Consumed by GA-backed solvers; exact solvers ignore them.
    selection:
        GA survival scheme — ``"age"`` (paper) or ``"crowding"`` (ablation).
    decision:
        Decision rule; defaults to the 2× rule, or the 4× rule automatically
        when the cluster exposes SSD tiers.  Pass explicitly to override.
    seed:
        Seed for the solver's random stream (one stream across
        invocations; deterministic solvers never consume it, so swapping
        them in and out does not perturb GA-seeded runs).
    eval_cache:
        Memoize GA objective evaluations (byte-identical results, see
        :mod:`repro.core.evalcache`); ``False`` is the reference path.
    fast_repair:
        Opt into the vectorized (RNG-order-changing) repair mode.
    solver:
        A :class:`WindowSolver` instance, a registry name
        (``"ga"``, ``"scalar"``, ``"milp"``, ``"exhaustive"``), or ``None``
        for the paper's GA built from the knobs above.
    yardstick:
        Optional :class:`OptimalityYardstick`: each pass's selection
        problem is re-solved exactly under the equal-utilization
        scalarization and the GA-vs-exact gap recorded (never perturbs
        the run itself).
    """

    name = "BBSched"

    def __init__(
        self,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        selection: str = "age",
        decision: Optional[DecisionRule] = None,
        seed: SeedLike = None,
        eval_cache: bool = True,
        fast_repair: bool = False,
        solver: Union[WindowSolver, str, None] = None,
        yardstick: Optional[OptimalityYardstick] = None,
    ) -> None:
        super().__init__()
        if solver is None:
            solver = GAWindowSolver(
                generations=generations,
                population=population,
                mutation=mutation,
                selection=selection,
                eval_cache=eval_cache,
                fast_repair=fast_repair,
            )
        elif isinstance(solver, str):
            from ..solvers.registry import make_window_solver

            solver = make_window_solver(
                solver,
                generations=generations,
                population=population,
                mutation=mutation,
                selection=selection,
                eval_cache=eval_cache,
                fast_repair=fast_repair,
            )
        self.solver: WindowSolver = solver
        self.decision = decision
        self.yardstick = yardstick
        self._rng = make_rng(seed)

    @property
    def eval_cache_stats(self):
        """Solver cache counters (``None`` when caching is disabled).

        The engine harvests these at end of run into the
        ``ga.eval_cache.*`` telemetry counters.
        """
        return self.solver.eval_cache_stats

    def build_problem(self, window: Sequence[Job], avail: Available) -> MOOProblem:
        """Formulate the MOO problem for the current invocation."""
        ssd_relevant = len(avail.ssd_free) > 1 or any(
            cap > 0 for cap in avail.ssd_free
        )
        if ssd_relevant:
            return SSDSelectionProblem(
                window, avail.nodes, avail.bb, avail.ssd_free
            )
        return SelectionProblem.from_window(window, avail.nodes, avail.bb)

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        system = self._require_system()
        if not window:
            return []
        problem = self.build_problem(window, avail)
        pareto = self.solver.solve(problem, seed=self._rng)
        if len(pareto) == 0:
            return []
        if problem.n_objectives == 4:
            rule = self.decision or four_resource_rule()
            scales = system.scales4()
        else:
            rule = self.decision or two_resource_rule()
            scales = system.scales2()
        if self.yardstick is not None:
            # Equal-utilization scalarization: each objective weighted by
            # the inverse of its capacity, mirroring the decision rule's
            # normalisation.  Deterministic and RNG-free.
            coeffs = 1.0 / np.asarray(scales, dtype=float)
            self.yardstick.measure_front(problem, coeffs, pareto)
        with get_tracer().span(
            "decision_rule", front=len(pareto), objectives=problem.n_objectives
        ) as span:
            chosen = rule.choose(pareto, scales)
            picks = [int(i) for i in np.flatnonzero(chosen.genes)]
            span.set(picked=len(picks))
        return picks
