"""GA parameter defaults (§4.3): w=20 window, G=500 generations, P=20
chromosomes, p_m = 0.05 % mutation probability.

Kept in a leaf module with no intra-package imports so that both the core
solvers and the method registry can share them without import cycles.
"""

DEFAULT_GENERATIONS = 500
DEFAULT_POPULATION = 20
DEFAULT_MUTATION = 0.0005
