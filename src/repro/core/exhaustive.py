"""Exhaustive MOO solver: the true Pareto set by ``2^w`` enumeration.

§3.2.2 notes that finding all Pareto solutions requires examining every one
of the ``2^w`` candidate selections, which is what makes the GA necessary
in production.  This solver exists for three reasons:

* it supplies the **true Pareto set** ``S*`` against which generational
  distance is computed (§3.2.3, Figure 4);
* it regenerates **Figure 2** (exhaustive time-to-solution exploding with
  window size past the 15–30 s scheduler budget);
* it is the correctness oracle for the GA in tests.

Enumeration is chunked and vectorized: candidate bit matrices are built
from integer ranges with bit tricks, scored through the problem's
population API, and culled to local fronts chunk by chunk before a final
global Pareto pass.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .ga import ParetoSet
from .pareto import non_dominated_mask, pareto_front_2d, unique_front
from .problem import MOOProblem

#: Windows above this size are refused — 2^w candidates would not fit in
#: memory/time on one machine (2^26 ≈ 67M selections).
MAX_EXHAUSTIVE_W = 26

#: Candidates scored per chunk (keeps peak memory ~ CHUNK × w bytes).
_CHUNK = 1 << 16


def bit_matrix(lo: int, hi: int, w: int) -> np.ndarray:
    """Rows ``lo..hi-1`` of the ``(2^w, w)`` selection enumeration.

    Row ``r`` is the little-endian binary expansion of ``r``: gene ``i`` is
    bit ``i`` of ``r``.
    """
    if w < 0:
        raise SolverError(f"negative window size {w}")
    codes = np.arange(lo, hi, dtype=np.uint64)[:, None]
    shifts = np.arange(w, dtype=np.uint64)[None, :]
    return ((codes >> shifts) & 1).astype(np.uint8)


class ExhaustiveSolver:
    """Brute-force Pareto solver over all feasible selections."""

    def __init__(self, max_w: int = MAX_EXHAUSTIVE_W) -> None:
        self.max_w = max_w

    def solve(self, problem: MOOProblem) -> ParetoSet:
        """Exact Pareto set of ``problem`` (deduplicated gene rows)."""
        w = problem.w
        if w > self.max_w:
            raise SolverError(
                f"window of {w} needs 2^{w} evaluations; exhaustive solve "
                f"is capped at w={self.max_w}"
            )
        if w == 0:
            return ParetoSet(
                genes=np.zeros((0, 0), dtype=np.uint8),
                objectives=np.zeros((0, problem.n_objectives)),
            )
        forced = np.zeros(w, dtype=bool)
        if problem.forced:
            forced[list(problem.forced)] = True

        best_genes: list[np.ndarray] = []
        best_obj: list[np.ndarray] = []
        total = 1 << w
        for lo in range(0, total, _CHUNK):
            chunk = bit_matrix(lo, min(lo + _CHUNK, total), w)
            if forced.any():
                keep = (chunk[:, forced] == 1).all(axis=1)
                chunk = chunk[keep]
                if chunk.shape[0] == 0:
                    continue
            ok = problem.feasible(chunk)
            chunk = chunk[ok]
            if chunk.shape[0] == 0:
                continue
            obj = problem.evaluate(chunk)
            local = self._front(obj)
            best_genes.append(chunk[local])
            best_obj.append(obj[local])
        if not best_genes:
            # Only the empty selection can be infeasible if forced genes
            # exist and never fit — problem construction forbids that, so
            # reaching here means w>0 with nothing feasible at all.
            raise SolverError("no feasible selection exists (not even the empty one)")
        genes = np.concatenate(best_genes)
        obj = np.concatenate(best_obj)
        final = self._front(obj)
        g, o = unique_front(genes[final], obj[final])
        return ParetoSet(genes=g, objectives=o)

    @staticmethod
    def _front(objectives: np.ndarray) -> np.ndarray:
        """Indices of the Pareto front, specialising the 2-D case."""
        if objectives.shape[1] == 2:
            return pareto_front_2d(objectives)
        return np.flatnonzero(non_dominated_mask(objectives))
