"""Adaptive decision making — the §3.2.4 future-work extension.

    "The decision making may be *adaptive*, such that system managers
    dynamically adjust their selection policy according to scheduling
    performance and user response."  (§3.2.4)

:class:`AdaptiveDecisionRule` implements the natural version of that idea:
a feedback controller on the trade factor.  After each decision it observes
the realised node and burst-buffer utilizations; when the node side is
persistently the slack resource it *lowers* the trade factor (trading node
capacity for burst buffer more eagerly), and when the burst buffer is slack
it raises the factor back toward node-first behaviour.  The factor is
clamped to a configurable band around the paper's static 2×.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

from ..errors import SolverError
from .decision import Decision, DecisionRule
from .ga import ParetoSet


class AdaptiveDecisionRule:
    """Trade-factor feedback controller.

    Parameters
    ----------
    initial_factor:
        Starting trade factor (the paper's static rule uses 2.0).
    band:
        Inclusive ``(min, max)`` clamp for the adapted factor.
    gain:
        Multiplicative adjustment per observation; the factor moves by
        ``× (1 ± gain)`` depending on which resource is slack.
    window:
        Number of recent utilization observations averaged before
        adjusting (smooths single-invocation noise).
    primary:
        Index of the primary objective (node utilization).
    """

    def __init__(
        self,
        initial_factor: float = 2.0,
        band: Tuple[float, float] = (0.5, 8.0),
        gain: float = 0.05,
        window: int = 20,
        primary: int = 0,
    ) -> None:
        if not band[0] <= initial_factor <= band[1]:
            raise SolverError(
                f"initial factor {initial_factor} outside band {band}"
            )
        if band[0] <= 0:
            raise SolverError("band minimum must be positive")
        if not 0 < gain < 1:
            raise SolverError(f"gain must be in (0, 1), got {gain}")
        if window < 1:
            raise SolverError(f"window must be >= 1, got {window}")
        self.factor = initial_factor
        self.band = band
        self.gain = gain
        self.primary = primary
        self._history: Deque[Tuple[float, float]] = deque(maxlen=window)

    def observe(self, node_utilization: float, bb_utilization: float) -> None:
        """Feed back the realised system-level utilizations.

        Call after each scheduling invocation (or metrics sample); the
        factor adapts once the averaging window has data.
        """
        self._history.append((node_utilization, bb_utilization))
        n = len(self._history)
        node = sum(h[0] for h in self._history) / n
        bb = sum(h[1] for h in self._history) / n
        if node < bb - 0.05:
            # Nodes are the slack resource: stop over-protecting them.
            self.factor = max(self.band[0], self.factor * (1.0 - self.gain))
        elif bb < node - 0.05:
            # Burst buffer is slack: favour node utilization again.
            self.factor = min(self.band[1], self.factor * (1.0 + self.gain))

    def choose(self, pareto: ParetoSet, scales: Sequence[float]) -> Decision:
        """Delegate to the static rule at the current adapted factor."""
        rule = DecisionRule(trade_factor=self.factor, primary=self.primary)
        return rule.choose(pareto, scales)
