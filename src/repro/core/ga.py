"""Multi-objective genetic algorithm MOO solver (§3.2.2).

The solver maintains a constant-size population of ``P`` chromosomes, each a
binary vector over the window.  Per generation:

1. **crossover** — pairs of parents are drawn uniformly at random from the
   previous generation and swap genes at a random cut point, producing two
   children each, until ``P`` children exist;
2. **mutation** — each child gene flips with a low probability ``p_m``
   (diversity, escaping local optima);
3. **selection** — parents and children are pooled, split into the Pareto
   set (Set 1) and the rest (Set 2).  If Set 1 fits in ``P`` it passes
   through and Set 2 fills the remainder, *newer chromosomes first*; if
   Set 1 overflows, the ``P`` newest of Set 1 survive.  Surviving
   chromosomes age by one per generation.

After ``G`` generations the Pareto members of the final population are
returned.  Infeasible chromosomes are repaired by gene clearing (the
problem's :meth:`~repro.core.problem.MOOProblem.repair`) — an ablation flag
switches to NSGA-II-style crowding-distance selection for comparison.

Everything is vectorized: the population is a ``(P, w)`` uint8 matrix and a
full generation costs a few numpy kernel calls, which is what lets a
``G=500, P=20`` solve finish in milliseconds (§3.2.3's "minimal overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SolverError
from ..rng import SeedLike, make_rng, restore_rng_state, rng_state
from ..telemetry import get_tracer
from .evalcache import DEFAULT_EVAL_CACHE_CAPACITY, EvaluationCache, chromosome_keys
from .pareto import non_dominated_mask, unique_front
from .problem import MOOProblem

from .params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION


@dataclass(frozen=True)
class ParetoSet:
    """Solver output: the approximated Pareto set.

    ``genes`` is ``(m, w)`` with one non-dominated selection per row;
    ``objectives`` is the aligned ``(m, k)`` objective matrix.
    """

    genes: np.ndarray
    objectives: np.ndarray

    def __post_init__(self) -> None:
        if self.genes.shape[0] != self.objectives.shape[0]:
            raise SolverError("genes/objectives row mismatch")

    def __len__(self) -> int:
        return self.genes.shape[0]

    def best_by(self, objective: int) -> int:
        """Row index of the solution maximizing one objective.

        Ties break deterministically to the *lowest* row index (the order
        rows entered the Pareto set) — ``np.argmax`` returns the first
        occurrence of the maximum.  Decision rules lean on this: a tied
        front must yield the same dispatch on every platform and numpy
        version, or runs stop being reproducible.  Pinned by
        ``tests/test_ga.py::TestParetoSet::test_best_by_tie_breaks_lowest_index``.
        """
        if len(self) == 0:
            raise SolverError("empty Pareto set")
        return int(np.argmax(self.objectives[:, objective]))


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row (larger = more isolated).

    Boundary solutions per objective get infinite distance.  Used by the
    ablation selection scheme.
    """
    n, k = objectives.shape
    if n == 0:
        return np.zeros(0)
    dist = np.zeros(n)
    for m in range(k):
        order = np.argsort(objectives[:, m], kind="stable")
        f = objectives[order, m]
        span = f[-1] - f[0]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        if span > 0 and n > 2:
            dist[order[1:-1]] += (f[2:] - f[:-2]) / span
    return dist


class MOGASolver:
    """The paper's multi-objective GA (with an NSGA-II ablation mode).

    Parameters
    ----------
    generations:
        ``G`` — iterations of the evolve loop.
    population:
        ``P`` — constant population size.
    mutation:
        ``p_m`` — per-gene bit-flip probability applied to children.
    selection:
        ``"age"`` (paper: Pareto set survives, ties broken by newness) or
        ``"crowding"`` (NSGA-II crowding-distance truncation; ablation).
    seed_greedy:
        Warm-start the initial population with the problem's greedy
        chromosomes (window-order fill plus one density fill per
        objective).  The paper initialises purely at random and leans on
        G=500 to converge; greedy seeding reaches the same quality with a
        far smaller generation budget, so it is on by default and
        switched off for paper-exact runs.
    seed:
        Seed or generator for all stochastic operators.
    eval_cache:
        Memoize objective rows across generations (and skip feasibility
        checks for children byte-identical to an already-scored
        chromosome).  Results are byte-identical either way — the
        problems' evaluation kernels are row-subset stable (see
        :mod:`repro.core.evalcache`) and the differential suite pins it —
        so this is on by default; ``False`` is the reference path (and the
        CLI's ``--no-eval-cache`` escape hatch).
    cache_capacity:
        Bound on distinct chromosomes the cache retains per solve.
    fast_repair:
        Use the vectorized repair mode (``repair(..., fast=True)``) inside
        the evolve loop.  Draws the RNG in a different order than the
        reference repair, so it changes (still deterministic) results —
        default off.
    """

    def __init__(
        self,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        selection: str = "age",
        seed_greedy: bool = True,
        seed: SeedLike = None,
        eval_cache: bool = True,
        cache_capacity: int = DEFAULT_EVAL_CACHE_CAPACITY,
        fast_repair: bool = False,
    ) -> None:
        if generations < 0:
            raise SolverError(f"generations must be >= 0, got {generations}")
        if population < 2:
            raise SolverError(f"population must be >= 2, got {population}")
        if not 0.0 <= mutation <= 1.0:
            raise SolverError(f"mutation must be a probability, got {mutation}")
        if selection not in ("age", "crowding"):
            raise SolverError(f"unknown selection scheme {selection!r}")
        if cache_capacity < 1:
            raise SolverError(f"cache_capacity must be >= 1, got {cache_capacity}")
        self.generations = generations
        self.population = population
        self.mutation = mutation
        self.selection = selection
        self.seed_greedy = seed_greedy
        self._seed = seed
        self.eval_cache = eval_cache
        self.cache_capacity = cache_capacity
        self.fast_repair = fast_repair
        #: Lazily built per-solver :class:`EvaluationCache`; dropped on
        #: pickling (checkpoint snapshots) and rebuilt on first solve.
        self._cache: Optional[EvaluationCache] = None

    # --- pickling (checkpoint/resume) -------------------------------------------
    # The eval cache is a pure memo table: dropping it from a snapshot
    # costs re-evaluation after resume, never changes results (proved by
    # tests/test_differential.py's resume cycle).  Its counters go with it
    # — they are wall-clock-class observability, deliberately outside the
    # run fingerprint.  ``__setstate__`` defaults the newer attributes so
    # snapshots written before the cache existed still load.
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        state.setdefault("eval_cache", True)
        state.setdefault("cache_capacity", DEFAULT_EVAL_CACHE_CAPACITY)
        state.setdefault("fast_repair", False)
        state.setdefault("_cache", None)
        self.__dict__.update(state)

    @property
    def eval_cache_stats(self) -> Optional[Dict[str, int]]:
        """Cumulative cache counters, or ``None`` when caching is off."""
        if not self.eval_cache:
            return None
        if self._cache is None:
            return {"hits": 0, "misses": 0, "deduped": 0, "evictions": 0}
        return self._cache.stats()

    # --- RNG stream capture ------------------------------------------------------
    # When the solver owns a long-lived Generator (``seed`` was a
    # Generator, or the selector threads one through ``solve``), its state
    # advances with every scheduling pass.  Checkpoint/resume
    # (:mod:`repro.checkpoint`) must persist that state or a resumed run
    # would replay a different GA stream; ``pickle`` captures it through
    # these hooks because numpy generators serialise their full state.
    def rng_state(self) -> Optional[dict]:
        """State of the solver-owned RNG stream, or None if seeded per-call."""
        if isinstance(self._seed, np.random.Generator):
            return rng_state(self._seed)
        return None

    def set_rng_state(self, state: dict) -> None:
        """Rewind the solver-owned stream to a captured state."""
        if not isinstance(self._seed, np.random.Generator):
            raise SolverError("solver does not own a persistent RNG stream")
        restore_rng_state(self._seed, state)

    # --- operators -------------------------------------------------------------
    def _crossover(self, parents: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Single-point crossover of random parent pairs → ``P`` children."""
        P, w = parents.shape
        pairs = (P + 1) // 2
        mothers = parents[rng.integers(0, P, size=pairs)]
        fathers = parents[rng.integers(0, P, size=pairs)]
        if w < 2:
            children = np.concatenate([mothers, fathers])[:P]
            return np.ascontiguousarray(children)
        cuts = rng.integers(1, w, size=pairs)  # cut in [1, w-1]
        positions = np.arange(w)
        left = positions[None, :] < cuts[:, None]  # (pairs, w)
        child_a = np.where(left, mothers, fathers)
        child_b = np.where(left, fathers, mothers)
        children = np.concatenate([child_a, child_b])[:P]
        return np.ascontiguousarray(children.astype(np.uint8))

    def _mutate(self, children: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Independent per-gene bit flips with probability ``p_m``."""
        if self.mutation == 0.0:
            return children
        flips = rng.random(children.shape) < self.mutation
        children ^= flips.astype(np.uint8)
        return children

    def _dedup_youngest(
        self,
        genes: np.ndarray,
        ages: np.ndarray,
        keys: Optional[List[bytes]] = None,
    ) -> np.ndarray:
        """Indices keeping the youngest copy of each distinct chromosome.

        Identical genes are one *solution*, and without dedup the Pareto
        set floods with clones of a single point, which freezes the
        crossover gene pool and stalls exploration.

        Two equivalent implementations: the void-view ``np.unique`` scan
        (reference), and — when per-row byte ``keys`` are already in hand
        from the eval cache — a first-occurrence scan over the age-sorted
        rows, which skips rebuilding and re-sorting the structured view.
        Both keep the first (youngest) occurrence per distinct row in
        age-sorted order, so their outputs are identical.
        """
        order = np.lexsort((ages,))
        if keys is None:
            rows = np.ascontiguousarray(genes[order])
            voided = rows.view([("", rows.dtype)] * rows.shape[1]).ravel()
            _, first = np.unique(voided, return_index=True)
            return order[np.sort(first)]
        seen = set()
        kept = []
        for j in order:
            key = keys[j]
            if key not in seen:
                seen.add(key)
                kept.append(j)
        return np.asarray(kept, dtype=np.intp)

    def _survivors(
        self,
        genes: np.ndarray,
        objectives: np.ndarray,
        ages: np.ndarray,
        rng: np.random.Generator,
        keys: Optional[List[bytes]] = None,
    ) -> np.ndarray:
        """Survival selection → indices (into the pool) of the next generation.

        Duplicate chromosomes are collapsed first (keeping the youngest
        copy, see :meth:`_dedup_youngest`).  If fewer than ``P`` unique
        chromosomes exist, the survivors are recycled to keep the
        population size constant.
        """
        P = self.population
        keep_idx = self._dedup_youngest(genes, ages, keys)
        objectives = objectives[keep_idx]
        ages = ages[keep_idx]
        pareto = non_dominated_mask(objectives)
        set1 = np.flatnonzero(pareto)
        set2 = np.flatnonzero(~pareto)
        if self.selection == "crowding":
            # Ablation: rank by (front, -crowding) like NSGA-II truncation.
            if set1.size >= P:
                dist = crowding_distance(objectives[set1])
                keep = set1[np.argsort(-dist, kind="stable")[:P]]
            else:
                dist2 = crowding_distance(objectives[set2]) if set2.size else np.zeros(0)
                filler = set2[np.argsort(-dist2, kind="stable")[: P - set1.size]]
                keep = np.concatenate([set1, filler])
        else:
            # Paper scheme: Set 1 passes; newer (lower age) wins everywhere.
            if set1.size >= P:
                keep = set1[np.argsort(ages[set1], kind="stable")[:P]]
            else:
                filler = set2[np.argsort(ages[set2], kind="stable")[: P - set1.size]]
                keep = np.concatenate([set1, filler])
        if keep.size < P:
            # Fewer unique chromosomes than P: recycle survivors (sampled
            # with replacement) so the population size stays constant.
            pad = rng.integers(0, keep.size, size=P - keep.size)
            keep = np.concatenate([keep, keep[pad]])
        return keep_idx[keep]

    # --- main loop ---------------------------------------------------------------
    def _repair_known(
        self,
        problem: MOOProblem,
        children: np.ndarray,
        rng: np.random.Generator,
        cache: EvaluationCache,
    ) -> Tuple[np.ndarray, List[bytes]]:
        """Repair ``children``, skipping work the cache already certifies.

        Store membership means "was evaluated post-repair", i.e. feasible,
        so only byte-novel children need a feasibility check — and when
        those all pass, the whole repair (which would find nothing to do)
        is skipped.  RNG parity with ``problem.repair``: both skipped
        branches are exactly the cases where repair's no-copy fast path
        returns without consuming the RNG, and the fallthrough delegates
        to the identical ``repair`` call.
        """
        keys = chromosome_keys(children)
        unknown = [i for i, key in enumerate(keys) if key not in cache]
        if not unknown:
            return children, keys
        ok = problem.feasible(np.ascontiguousarray(children[unknown]))
        if ok.all():
            return children, keys
        # Store rows are feasible by construction, so the subset check
        # expands to the full-population feasibility vector — handing it
        # to repair as a hint skips both of repair's own full checks.
        hint = np.ones(len(keys), dtype=bool)
        hint[unknown] = ok
        children = problem.repair(
            children, rng, fast=self.fast_repair, feasible_hint=hint
        )
        return children, chromosome_keys(children)

    def _evolve_once(
        self,
        problem: MOOProblem,
        genes: np.ndarray,
        ages: np.ndarray,
        forced: list,
        rng: np.random.Generator,
        cache: Optional[EvaluationCache] = None,
        keys: Optional[List[bytes]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[List[bytes]]]:
        """One generation: crossover → mutate → repair → survival selection.

        With ``cache`` the survivor keys thread through so parent rows are
        never re-hashed, re-evaluated, or re-checked for feasibility;
        without it this is the reference evaluate-everything path.  Both
        paths draw identically from ``rng`` and return identical
        populations (pinned by the differential tests).
        """
        children = self._crossover(genes, rng)
        children = self._mutate(children, rng)
        if forced:
            children[:, forced] = 1
        if cache is None:
            children = problem.repair(children, rng, fast=self.fast_repair)
            pool_keys = None
        else:
            children, child_keys = self._repair_known(problem, children, rng, cache)
            assert keys is not None
            pool_keys = keys + child_keys
        pool_genes = np.concatenate([genes, children])
        pool_ages = np.concatenate(
            [ages + 1, np.zeros(children.shape[0], dtype=np.int64)]
        )
        if cache is None:
            pool_obj = problem.evaluate(pool_genes)
        else:
            pool_obj = cache.evaluate(problem, pool_genes, pool_keys)
        keep = self._survivors(pool_genes, pool_obj, pool_ages, rng, keys=pool_keys)
        next_keys = [pool_keys[i] for i in keep] if pool_keys is not None else None
        return pool_genes[keep], pool_ages[keep], next_keys

    def solve(self, problem: MOOProblem, seed: SeedLike = None) -> ParetoSet:
        """Approximate the Pareto set of ``problem``.

        ``seed`` overrides the constructor seed for this call (used when one
        solver object serves many scheduling invocations).
        """
        rng = make_rng(self._seed if seed is None else seed)
        if problem.w == 0:
            return ParetoSet(
                genes=np.zeros((0, 0), dtype=np.uint8),
                objectives=np.zeros((0, problem.n_objectives)),
            )
        cache = None
        before: Dict[str, int] = {}
        if self.eval_cache:
            cache = self._cache
            if cache is None:
                cache = self._cache = EvaluationCache(self.cache_capacity)
            # Chromosome bytes are only meaningful relative to one problem
            # instance; counters accumulate across solves, the store not.
            cache.reset()
            before = cache.stats()
        tracer = get_tracer()
        with tracer.span(
            "ga_solve",
            w=problem.w,
            objectives=problem.n_objectives,
            generations=self.generations,
            population=self.population,
            eval_cache=cache is not None,
            repair_vectorized=self.fast_repair,
        ) as solve_span:
            genes = problem.random_population(self.population, rng)
            forced = list(problem.forced)
            if self.seed_greedy:
                seeds = problem.greedy_chromosomes()
                if seeds.shape[0]:
                    if forced:
                        seeds = seeds.copy()
                        seeds[:, forced] = 1
                    seeds = problem.repair(seeds, rng)
                    k = min(seeds.shape[0], self.population)
                    genes[:k] = seeds[:k]
            ages = np.zeros(self.population, dtype=np.int64)
            keys = chromosome_keys(genes) if cache is not None else None
            if tracer.fine:
                # Per-generation spans are the highest-volume instrumentation
                # in the repo — emitted only under Tracer(fine=True).
                for gen in range(self.generations):
                    with tracer.span("ga_generation", gen=gen):
                        genes, ages, keys = self._evolve_once(
                            problem, genes, ages, forced, rng, cache, keys
                        )
            else:
                for _ in range(self.generations):
                    genes, ages, keys = self._evolve_once(
                        problem, genes, ages, forced, rng, cache, keys
                    )
            if cache is not None:
                final_obj = cache.evaluate(problem, genes, keys)
                after = cache.stats()
                solve_span.set(
                    cache_hits=after["hits"] - before["hits"],
                    cache_misses=after["misses"] - before["misses"],
                )
            else:
                final_obj = problem.evaluate(genes)
            front = non_dominated_mask(final_obj)
            g, o = unique_front(genes[front], final_obj[front])
            solve_span.set(front=int(g.shape[0]))
        return ParetoSet(genes=g, objectives=o)
