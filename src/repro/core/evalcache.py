"""Memoized population evaluation for the GA hot loop.

Every generation of :class:`~repro.core.ga.MOGASolver` evaluates a pooled
``(2P, w)`` population of which the ``P`` parent rows were already scored
last generation, and crossover routinely reproduces chromosomes seen many
generations ago.  :class:`EvaluationCache` memoizes objective rows keyed by
the chromosome's raw bytes so each distinct chromosome is evaluated exactly
once per solve; duplicate rows *within* one batch are also collapsed to a
single evaluation.

Byte-identity contract
----------------------
The cache may only change *when* a chromosome is evaluated, never the
values: assembling cached rows must reproduce what one big
``problem.evaluate`` call would have returned for the same matrix.  That
holds because the problems' evaluation kernels are *row-subset stable* —
each output row depends only on its own input row and is computed by
per-row reductions (``np.einsum`` / the SSD assignment sweep), not by a
blocked BLAS matmul whose per-row results shift with the batch size.
``tests/test_differential.py`` pins this end-to-end.

Because every chromosome enters the store *after* repair, store membership
doubles as a known-feasible certificate: the solver skips re-checking
feasibility for children that are byte-identical to an already-scored
chromosome (see ``MOGASolver._repair_known``).

The store is bounded (FIFO eviction, insertion order) and cleared between
solves — chromosome bytes only mean anything relative to one problem
instance.  Hit/miss/dedup/eviction counters accumulate across solves and
feed the ``ga.eval_cache.*`` telemetry counters.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import SolverError

#: Default bound on distinct chromosomes retained per solve.  A default
#: (G=500, P=20) solve touches at most ``(G + 1) · P`` distinct rows, so
#: this never evicts at the paper's parameters while still bounding memory
#: for pathological configurations.
DEFAULT_EVAL_CACHE_CAPACITY = 32768


def chromosome_keys(genes: np.ndarray) -> List[bytes]:
    """Per-row byte keys of a ``(P, w)`` chromosome matrix."""
    rows = np.ascontiguousarray(genes)
    stride = rows.shape[1] * rows.dtype.itemsize
    if stride == 0:
        return [b""] * rows.shape[0]
    blob = rows.tobytes()
    return [blob[i * stride : (i + 1) * stride] for i in range(rows.shape[0])]


class EvaluationCache:
    """Bounded chromosome-bytes → objective-row memo table.

    Parameters
    ----------
    capacity:
        Maximum number of distinct chromosomes retained; the oldest
        entries are evicted first (insertion order).  Eviction only costs
        re-evaluation later — results are unaffected.
    """

    def __init__(self, capacity: int = DEFAULT_EVAL_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise SolverError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._store: Dict[bytes, np.ndarray] = {}
        self.hits = 0        #: rows served from the store
        self.misses = 0      #: rows that triggered an evaluation
        self.deduped = 0     #: duplicate rows collapsed within one batch
        self.evictions = 0   #: entries dropped to honour ``capacity``

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: bytes) -> bool:
        return key in self._store

    def reset(self) -> None:
        """Drop the store (counters survive).  Called between solves."""
        self._store.clear()

    def stats(self) -> Dict[str, int]:
        """Cumulative counters as a plain dict (telemetry-ready)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "evictions": self.evictions,
        }

    def evaluate(self, problem, genes: np.ndarray, keys: List[bytes]) -> np.ndarray:
        """Objective matrix for ``genes``, evaluating only unseen rows.

        ``keys`` must be ``chromosome_keys(genes)`` (callers thread the
        keys through generations instead of rehashing survivors).
        """
        store = self._store
        get = store.get
        miss_pos: List[int] = []
        hit_pos: List[int] = []
        hit_rows: List[np.ndarray] = []
        dup_pos: List[int] = []
        pending = set()
        for i, key in enumerate(keys):
            row = get(key)
            if row is not None:
                hit_pos.append(i)
                hit_rows.append(row)
            elif key in pending:
                dup_pos.append(i)
            else:
                pending.add(key)
                miss_pos.append(i)
        self.hits += len(hit_pos)
        self.misses += len(miss_pos)
        self.deduped += len(dup_pos)
        out = np.empty((len(keys), problem.n_objectives), dtype=float)
        if miss_pos:
            fresh = problem.evaluate(np.ascontiguousarray(genes[miss_pos]))
            for row, i in enumerate(miss_pos):
                store[keys[i]] = fresh[row]
            out[miss_pos] = fresh
        if hit_pos:
            out[hit_pos] = hit_rows
        for i in dup_pos:
            out[i] = store[keys[i]]
        # Evict only after assembly so the current batch is never dropped
        # mid-use; FIFO keeps the newest (most crossover-relevant) rows.
        while len(store) > self.capacity:
            store.pop(next(iter(store)))
            self.evictions += 1
        return out
