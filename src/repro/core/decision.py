"""Decision making: choosing one solution from the Pareto set (§3.2.4, §5).

The solver hands back a Pareto *set*; a site-specific rule picks the
solution actually dispatched.  The paper's rule (and its §5 four-objective
extension):

1. start from the solution that **maximizes node utilization**; among ties,
   prefer the one selecting the jobs nearest the *front of the window*
   (preserving the base scheduler's order);
2. replace it with another Pareto solution if that solution's summed
   improvement in the secondary objectives (normalised to utilization
   fractions) exceeds ``trade_factor`` times its loss of node utilization
   — 2× for the two-resource rule, 4× for the four-resource rule;
3. if several solutions qualify, take the one with the maximum improvement.

Objectives are raw sums (nodes, GB, …); ``scales`` converts deltas to
utilization fractions (divide by total/available capacity per axis) so the
trade comparison is unit-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError
from .ga import ParetoSet

#: §3.2.4: swap when the BB gain exceeds twice the node loss.
TWO_RESOURCE_FACTOR = 2.0
#: §5: swap when the summed secondary gain exceeds four times the node loss.
FOUR_RESOURCE_FACTOR = 4.0


@dataclass(frozen=True)
class Decision:
    """The chosen solution and why it won."""

    index: int                 #: row in the Pareto set
    genes: np.ndarray          #: the selection vector
    objectives: np.ndarray     #: its objective vector
    traded: bool               #: True when step 2 replaced the node-max pick
    improvement: float         #: normalised secondary gain over the node-max pick


class DecisionRule:
    """The paper's trade-off rule, generic over objective count.

    Parameters
    ----------
    trade_factor:
        Required ratio of secondary gain to primary loss (2.0 or 4.0).
    primary:
        Index of the primary objective (node utilization = 0).
    """

    def __init__(self, trade_factor: float = TWO_RESOURCE_FACTOR, primary: int = 0) -> None:
        if trade_factor <= 0:
            raise SolverError(f"trade_factor must be positive, got {trade_factor}")
        self.trade_factor = trade_factor
        self.primary = primary

    def choose(self, pareto: ParetoSet, scales: Sequence[float]) -> Decision:
        """Pick one solution from ``pareto``.

        ``scales`` holds one positive capacity per objective; objective
        deltas are divided by them before the trade comparison, making
        "improvement in utilization" well-defined across resources.
        """
        if len(pareto) == 0:
            raise SolverError("cannot decide over an empty Pareto set")
        scale = np.asarray(scales, dtype=float)
        if scale.shape != (pareto.objectives.shape[1],):
            raise SolverError(
                f"need {pareto.objectives.shape[1]} scales, got {scale.shape}"
            )
        if (scale <= 0).any():
            raise SolverError("scales must be positive")
        if not 0 <= self.primary < pareto.objectives.shape[1]:
            raise SolverError(f"primary objective {self.primary} out of range")

        util = pareto.objectives / scale  # normalised objectives

        # Step 1 — node-utilization maximum, ties to front-of-window genes.
        primary_col = util[:, self.primary]
        best = primary_col.max()
        ties = np.flatnonzero(np.isclose(primary_col, best))
        # A gene vector selecting earlier window slots is lexicographically
        # larger (1 beats 0 at the first differing position).
        preferred = int(max(ties, key=lambda i: tuple(pareto.genes[i])))

        # Step 2/3 — trade primary loss for secondary gain.
        secondary = [k for k in range(util.shape[1]) if k != self.primary]
        gain = (util[:, secondary] - util[preferred, secondary]).sum(axis=1)
        loss = util[preferred, self.primary] - util[:, self.primary]
        # Strict inequality with a float-noise guard: a gain exactly equal
        # to factor × loss must not trade.
        qualifies = gain > self.trade_factor * loss + 1e-9
        qualifies[preferred] = False
        # Only genuine trades count: a candidate must actually improve.
        qualifies &= gain > 1e-9
        if qualifies.any():
            cand = np.flatnonzero(qualifies)
            winner = cand[int(np.argmax(gain[cand]))]
            return Decision(
                index=int(winner),
                genes=pareto.genes[winner],
                objectives=pareto.objectives[winner],
                traded=True,
                improvement=float(gain[winner]),
            )
        return Decision(
            index=int(preferred),
            genes=pareto.genes[preferred],
            objectives=pareto.objectives[preferred],
            traded=False,
            improvement=0.0,
        )


def two_resource_rule() -> DecisionRule:
    """The §3.2.4 rule: node-first, 2× BB-for-node trade."""
    return DecisionRule(TWO_RESOURCE_FACTOR)


def four_resource_rule() -> DecisionRule:
    """The §5 rule: node-first, 4× summed-secondary trade."""
    return DecisionRule(FOUR_RESOURCE_FACTOR)
