"""BBSched core: MOO formulation, solvers, and decision making (§3, §5)."""

from .adaptive import AdaptiveDecisionRule
from .bbsched import BBSchedSelector
from .decision import (
    Decision,
    DecisionRule,
    FOUR_RESOURCE_FACTOR,
    TWO_RESOURCE_FACTOR,
    four_resource_rule,
    two_resource_rule,
)
from .exhaustive import ExhaustiveSolver, MAX_EXHAUSTIVE_W, bit_matrix
from .ga import (
    DEFAULT_GENERATIONS,
    DEFAULT_MUTATION,
    DEFAULT_POPULATION,
    MOGASolver,
    ParetoSet,
    crowding_distance,
)
from .gd import generational_distance, hypervolume_2d
from .pareto import non_dominated_mask, pareto_front_2d, unique_front
from .problem import (
    MOOProblem,
    SelectionProblem,
    SSDSelectionProblem,
    window_demand_matrix,
)
from .scalar import ScalarGASolver, ScalarSolution

__all__ = [
    "MOOProblem",
    "SelectionProblem",
    "SSDSelectionProblem",
    "window_demand_matrix",
    "MOGASolver",
    "ScalarGASolver",
    "ScalarSolution",
    "ParetoSet",
    "ExhaustiveSolver",
    "bit_matrix",
    "MAX_EXHAUSTIVE_W",
    "non_dominated_mask",
    "pareto_front_2d",
    "unique_front",
    "crowding_distance",
    "generational_distance",
    "hypervolume_2d",
    "DecisionRule",
    "Decision",
    "AdaptiveDecisionRule",
    "two_resource_rule",
    "four_resource_rule",
    "TWO_RESOURCE_FACTOR",
    "FOUR_RESOURCE_FACTOR",
    "BBSchedSelector",
    "DEFAULT_GENERATIONS",
    "DEFAULT_POPULATION",
    "DEFAULT_MUTATION",
]
