"""Pareto-dominance utilities (all objectives are maximized).

A solution is *non-dominated* if no other solution is at least as good in
every objective and strictly better in one (§1, footnote 1).  These
helpers are the backbone of both the GA's selection operator (§3.2.2) and
the exhaustive solver's true-Pareto extraction.

Two implementations are provided:

* :func:`non_dominated_mask` — general ``k``-objective pairwise check,
  vectorized with numpy broadcasting; ``O(n²k)`` memory-chunked so it stays
  usable for the exhaustive solver's large candidate sets.
* :func:`pareto_front_2d` — the classic sort-and-scan ``O(n log n)``
  algorithm for the two-objective case, used on the ``2^w`` exhaustive
  enumeration where the quadratic method would not fit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import SolverError

#: Row cap below which the quadratic mask is computed in one shot.
_CHUNK = 2048


def _pairwise_mask(objectives: np.ndarray) -> np.ndarray:
    """Quadratic non-dominated mask for a modest number of rows."""
    f = objectives[:, None, :]  # (n, 1, k)
    g = objectives[None, :, :]  # (1, n, k)
    ge = (g >= f).all(axis=2)
    gt = (g > f).any(axis=2)
    dominated = (ge & gt).any(axis=1)
    return ~dominated


def non_dominated_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows of an ``(n, k)`` objective matrix.

    Duplicated objective vectors are all retained (none dominates another).
    """
    objectives = np.asarray(objectives, dtype=float)
    if objectives.ndim != 2:
        raise SolverError(f"objectives must be 2-D, got shape {objectives.shape}")
    n = objectives.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if objectives.shape[1] == 2:
        # Two objectives: the O(n log n) sort-and-scan front is exact (pure
        # comparisons, no arithmetic) and beats the quadratic mask at every
        # size that matters.
        mask = np.zeros(n, dtype=bool)
        mask[pareto_front_2d(objectives)] = True
        return mask
    if n <= _CHUNK:
        return _pairwise_mask(objectives)
    # Cull in two passes: survivors of chunk-local fronts, then a global
    # check of the (much smaller) union against itself.
    survivors = []
    for start in range(0, n, _CHUNK):
        idx = np.arange(start, min(start + _CHUNK, n))
        local = _pairwise_mask(objectives[idx])
        survivors.append(idx[local])
    cand = np.concatenate(survivors)
    mask = np.zeros(n, dtype=bool)
    if cand.size <= _CHUNK:
        mask[cand[_pairwise_mask(objectives[cand])]] = True
        return mask
    # Rare: the union is still large; fall back to row-at-a-time culling.
    sub = objectives[cand]
    alive = np.ones(cand.size, dtype=bool)
    for i in range(cand.size):
        if not alive[i]:
            continue
        dominated = (sub[i] >= sub).all(axis=1) & (sub[i] > sub).any(axis=1)
        alive &= ~dominated
        alive[i] = True
    mask[cand[alive]] = True
    return mask


def pareto_front_2d(objectives: np.ndarray) -> np.ndarray:
    """Indices of the Pareto front of an ``(n, 2)`` matrix, sort-and-scan.

    Returns indices into ``objectives`` sorted by descending first
    objective.  Ties in both objectives are all kept (mutually
    non-dominating duplicates).
    """
    objectives = np.asarray(objectives, dtype=float)
    if objectives.ndim != 2 or objectives.shape[1] != 2:
        raise SolverError(f"expected (n, 2) objectives, got {objectives.shape}")
    n = objectives.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.intp)
    # Sort by f1 desc, then f2 desc; keep rows whose f2 strictly exceeds
    # every earlier f2, plus exact duplicates of kept rows.  The scan is
    # vectorized: the strict-improvement test is a prefix running max, and
    # duplicate rows sort adjacent, so each row of an equal run inherits
    # the keep decision of the run's first row.
    order = np.lexsort((-objectives[:, 1], -objectives[:, 0]))
    s1 = objectives[order, 0]
    s2 = objectives[order, 1]
    prev_max = np.empty(n)
    prev_max[0] = -np.inf
    np.maximum.accumulate(s2[:-1], out=prev_max[1:])
    keep = s2 > prev_max
    if n > 1:
        # Map every row to the index of the first row of its equal run.
        run_start = np.arange(n)
        dup = (s1[1:] == s1[:-1]) & (s2[1:] == s2[:-1])
        run_start[1:][dup] = 0
        np.maximum.accumulate(run_start, out=run_start)
        keep = keep[run_start]
    return order[keep]


def unique_front(
    genes: np.ndarray, objectives: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate identical chromosomes, keeping gene/objective alignment.

    Returns ``(genes, objectives)`` with duplicate gene rows removed — the
    GA population can converge onto copies of one chromosome, which would
    otherwise inflate the reported Pareto set.
    """
    genes = np.asarray(genes)
    objectives = np.asarray(objectives, dtype=float)
    if genes.shape[0] != objectives.shape[0]:
        raise SolverError("genes/objectives row mismatch")
    if genes.shape[0] == 0:
        return genes, objectives
    _, idx = np.unique(genes, axis=0, return_index=True)
    idx.sort()
    return genes[idx], objectives[idx]
