"""MOO problem formulations for window job selection (§3.2.1 and §5).

A *problem* binds a scheduling window to the free resources at one
invocation.  Candidate solutions are binary vectors ``x`` of length ``w``
(``x_i = 1`` selects job ``J_i``).  Problems expose population-level,
vectorized evaluation so the GA and exhaustive solvers can score ``(P, w)``
chromosome matrices in a handful of numpy operations.

Two concrete formulations:

* :class:`SelectionProblem` — the §3.2.1 two-objective case (generalised to
  any number of linear objectives): objectives ``F = X @ demands`` and
  constraints ``X @ demands <= capacity`` per resource.
* :class:`SSDSelectionProblem` — the §5 four-objective extension with
  heterogeneous local-SSD tiers.  Objective ``f4`` (negated SSD waste) and
  the tier feasibility constraint depend on the *joint* greedy node
  assignment, so they are evaluated with a per-window-position sweep that
  stays vectorized across the population.

Both support *forced* genes (starvation bound, §3.1): positions that every
candidate must select.  Infeasible chromosomes are repaired by clearing
non-forced genes; construction validates that the forced set alone fits.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..errors import SolverError
from ..rng import SeedLike, make_rng
from ..simulator.job import Job


def _stable_matmul(pop: np.ndarray, mat: np.ndarray) -> np.ndarray:
    """Row-subset-stable ``pop @ mat``.

    Each output row is reduced independently (``np.einsum`` evaluates the
    contraction row by row), so evaluating any subset of rows yields
    bitwise the same values as evaluating the full matrix.  A blocked BLAS
    ``@`` does not guarantee that — its per-row results can shift with the
    batch size — and row stability is what lets the GA's evaluation cache
    (:mod:`repro.core.evalcache`) reuse scores across generations without
    changing results.
    """
    return np.einsum("ij,jk->ik", pop, mat)


def _stable_matvec(pop: np.ndarray, vec: np.ndarray) -> np.ndarray:
    """Row-subset-stable ``pop @ vec`` (see :func:`_stable_matmul`)."""
    return np.einsum("ij,j->i", pop, vec)


class MOOProblem(abc.ABC):
    """Interface shared by all window-selection MOO problems."""

    #: Number of genes (jobs in the window).
    w: int
    #: Number of maximized objectives.
    n_objectives: int
    #: Gene indices every feasible solution must select.
    forced: Tuple[int, ...]

    @abc.abstractmethod
    def evaluate(self, population: np.ndarray) -> np.ndarray:
        """Objective matrix ``(P, k)`` for a ``(P, w)`` 0/1 population."""

    @abc.abstractmethod
    def feasible(self, population: np.ndarray) -> np.ndarray:
        """Boolean feasibility vector ``(P,)`` for a population."""

    def repair(
        self,
        population: np.ndarray,
        seed: SeedLike = None,
        *,
        fast: bool = False,
        feasible_hint: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Return a feasible copy of ``population``.

        Infeasible chromosomes have randomly chosen *non-forced* selected
        genes cleared one at a time until the constraints hold.  Forced
        genes are first re-asserted.  The input is not modified.

        Per clearing round only the still-infeasible rows are re-checked
        (clearing genes never breaks an untouched row), which preserves the
        historical RNG draw order exactly while skipping most of the
        feasibility work.

        ``fast=True`` switches to a vectorized clearing step: one uniform
        draw per infeasible row per round instead of one ``rng.choice`` per
        row.  It consumes the RNG in a different order, so its output is
        *not* byte-identical to the default mode — its equivalence class
        (feasible output, forced genes intact, genes only ever cleared,
        deterministic per seed) is pinned separately by the property tests.
        It is therefore default-off and opt-in via
        ``MOGASolver(fast_repair=True)``.

        ``feasible_hint`` (trusted, internal) is a per-row feasibility
        vector the caller already computed — the GA's evaluation cache
        knows survivor rows are feasible and checks only byte-novel
        children.  The caller guarantees the hint equals
        ``self.feasible(population)`` and that forced genes are already
        asserted; feasibility kernels are row-subset stable, so reusing
        the vector is byte-identical to recomputing it.
        """
        pop = np.asarray(population, dtype=np.uint8)
        self.assert_shape(pop)
        ok = feasible_hint
        # Fast path: feasible populations with forced genes already set
        # pass through unchanged (no copy) — the common case once the GA
        # has converged, and the hot path of every generation.
        if ok is None:
            if not self.forced or (pop[:, list(self.forced)] == 1).all():
                ok = self.feasible(pop)
        if ok is not None and ok.all():
            return pop
        rng = make_rng(seed)
        pop = np.array(population, dtype=np.uint8, copy=True)
        forced_mask = np.zeros(self.w, dtype=bool)
        if self.forced:
            pop[:, list(self.forced)] = 1
            forced_mask[list(self.forced)] = True
        # ``ok`` (when set) was computed on rows identical to the copy —
        # the fast path only produces it with forced genes already set —
        # so the infeasible-row set needs no second full check.
        bad_idx = np.flatnonzero(~ok) if ok is not None else np.flatnonzero(
            ~self.feasible(pop)
        )
        guard = 0
        while bad_idx.size:
            if fast:
                self._clear_one_gene_vectorized(pop, bad_idx, forced_mask, rng)
            else:
                for i in bad_idx:
                    clearable = np.flatnonzero((pop[i] == 1) & ~forced_mask)
                    if clearable.size == 0:
                        raise SolverError(
                            "cannot repair chromosome: forced genes alone are infeasible"
                        )
                    # Same draw (value and stream) as ``rng.choice(clearable)``
                    # — Generator.choice reduces to exactly this int64 draw —
                    # minus choice's per-call overhead.
                    pick = rng.integers(0, clearable.size, dtype=np.int64)
                    pop[i, clearable[pick]] = 0
            still_bad = ~self.feasible(np.ascontiguousarray(pop[bad_idx]))
            bad_idx = bad_idx[still_bad]
            guard += 1
            if guard > self.w + 1:  # pragma: no cover - defensive
                raise SolverError("repair failed to converge")
        return pop

    @staticmethod
    def _clear_one_gene_vectorized(
        pop: np.ndarray,
        bad_idx: np.ndarray,
        forced_mask: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Clear one random non-forced selected gene in every ``bad_idx`` row.

        The per-row choice is uniform over that row's clearable genes —
        the same distribution as the scalar loop — realised as one batched
        draw: pick the ``k``-th set bit per row via a cumulative count.
        """
        clearable = (pop[bad_idx] == 1) & ~forced_mask  # (b, w)
        counts = clearable.sum(axis=1)
        if (counts == 0).any():
            raise SolverError(
                "cannot repair chromosome: forced genes alone are infeasible"
            )
        draws = (rng.random(bad_idx.size) * counts).astype(np.int64)
        # Guard the r*counts rounding edge where the product lands on counts.
        ordinal = np.minimum(draws, counts - 1)
        cum = np.cumsum(clearable, axis=1)
        chosen = (cum == (ordinal + 1)[:, None]).argmax(axis=1)
        pop[bad_idx, chosen] = 0

    def assert_shape(self, population: np.ndarray) -> None:
        """Validate a population matrix against this problem."""
        if population.ndim != 2 or population.shape[1] != self.w:
            raise SolverError(
                f"population must be (P, {self.w}), got {population.shape}"
            )

    def random_population(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Random feasible ``(size, w)`` population (GA initialisation)."""
        if size <= 0:
            raise SolverError(f"population size must be positive, got {size}")
        rng = make_rng(seed)
        pop = rng.integers(0, 2, size=(size, self.w), dtype=np.uint8)
        return self.repair(pop, rng)

    def greedy_chromosomes(self) -> np.ndarray:
        """Feasible greedy seeds: in-order fill plus per-objective fills.

        Used to warm-start the GA when the generation budget is scaled
        down from the paper's G=500 — each row greedily packs jobs in a
        different priority order (window order, then descending demand in
        each objective), which places the search near the Pareto front's
        extremes from generation zero.
        """
        if self.w == 0:
            return np.zeros((0, 0), dtype=np.uint8)
        orders = [np.arange(self.w)]
        objectives = self.evaluate(np.eye(self.w, dtype=np.uint8))
        for k in range(self.n_objectives):
            orders.append(np.argsort(-objectives[:, k], kind="stable"))
        # All fills advance in lock-step: step ``s`` tentatively sets one
        # gene per order and a single batched feasibility call keeps or
        # reverts them.  Feasibility is per-row, so this is identical to
        # filling each order separately — at 1/w the kernel invocations.
        order_mat = np.stack(orders)  # (m, w)
        rows = np.arange(order_mat.shape[0])
        genes = np.zeros((order_mat.shape[0], self.w), dtype=np.uint8)
        for step in range(self.w):
            pos = order_mat[:, step]
            genes[rows, pos] = 1
            ok = self.feasible(genes)
            genes[rows[~ok], pos[~ok]] = 0
        return np.unique(genes, axis=0)


def window_demand_matrix(jobs: Sequence[Job]) -> np.ndarray:
    """``(w, 2)`` matrix of (nodes, bb GB) demands for §3.2.1 problems."""
    return np.array([[float(j.nodes), j.bb] for j in jobs], dtype=float).reshape(
        len(jobs), 2
    )


class SelectionProblem(MOOProblem):
    """Linear multi-objective knapsack over the window (§3.2.1).

    Parameters
    ----------
    demands:
        ``(w, k)`` matrix; column ``r`` holds each job's demand for
        resource ``r``.  Objectives are ``f_r(x) = sum_i demands[i, r] x_i``.
    capacities:
        Length-``k`` free capacity per resource (``N - N_used`` etc.).
    forced:
        Genes that must be selected (starvation bound).
    """

    def __init__(
        self,
        demands: np.ndarray,
        capacities: Sequence[float],
        forced: Sequence[int] = (),
    ) -> None:
        self.demands = np.asarray(demands, dtype=float)
        if self.demands.ndim != 2:
            raise SolverError(f"demands must be (w, k), got {self.demands.shape}")
        if (self.demands < 0).any():
            raise SolverError("demands must be non-negative")
        self.capacities = np.asarray(capacities, dtype=float)
        if self.capacities.shape != (self.demands.shape[1],):
            raise SolverError(
                f"capacities shape {self.capacities.shape} does not match "
                f"{self.demands.shape[1]} resources"
            )
        self.w = int(self.demands.shape[0])
        self.n_objectives = int(self.demands.shape[1])
        self.forced = tuple(sorted(set(int(i) for i in forced)))
        for i in self.forced:
            if not 0 <= i < self.w:
                raise SolverError(f"forced index {i} outside window of {self.w}")
        if self.forced:
            forced_demand = self.demands[list(self.forced)].sum(axis=0)
            if (forced_demand > self.capacities + 1e-9).any():
                raise SolverError("forced jobs alone exceed available capacity")

    @classmethod
    def from_window(
        cls,
        jobs: Sequence[Job],
        free_nodes: float,
        free_bb: float,
        forced: Sequence[int] = (),
    ) -> "SelectionProblem":
        """Build the paper's (node, burst buffer) problem from a window."""
        return cls(window_demand_matrix(jobs), [float(free_nodes), free_bb], forced)

    def evaluate(self, population: np.ndarray) -> np.ndarray:
        self.assert_shape(population)
        return _stable_matmul(population.astype(float), self.demands)

    def feasible(self, population: np.ndarray) -> np.ndarray:
        self.assert_shape(population)
        usage = _stable_matmul(population.astype(float), self.demands)
        return (usage <= self.capacities + 1e-9).all(axis=1)

    def greedy_chromosomes(self) -> np.ndarray:
        """Linear-problem fast path: incremental capacity accounting."""
        if self.w == 0:
            return np.zeros((0, 0), dtype=np.uint8)
        orders = [np.arange(self.w)]
        for k in range(self.n_objectives):
            orders.append(np.argsort(-self.demands[:, k], kind="stable"))
        seeds = []
        for order in orders:
            genes = np.zeros(self.w, dtype=np.uint8)
            used = np.zeros_like(self.capacities)
            for i in order:
                new = used + self.demands[i]
                if (new <= self.capacities + 1e-9).all():
                    genes[i] = 1
                    used = new
            seeds.append(genes)
        return np.unique(np.stack(seeds), axis=0)


class SSDSelectionProblem(MOOProblem):
    """The §5 four-objective problem with heterogeneous local SSDs.

    Objectives (all maximized):

    1. node utilization       ``Σ n_i x_i``
    2. burst buffer           ``Σ b_i x_i``
    3. local SSD utilization  ``Σ s_i n_i x_i``
    4. negated SSD waste      ``−Σ_i Σ_j (l_ij − s_i) x_i``

    where the per-node assigned capacities ``l_ij`` follow the greedy
    smallest-qualifying-tier-first policy (jobs processed in window order).
    Feasibility additionally requires each selected job to find ``n_i``
    free nodes of SSD capacity ≥ ``s_i`` under that same joint assignment.

    Parameters
    ----------
    jobs:
        Window jobs (order matters — it fixes the assignment sequence).
    free_nodes, free_bb:
        Aggregate free nodes / burst buffer.  ``free_nodes`` must equal the
        sum of ``free_tiers`` counts.
    free_tiers:
        Free node count per SSD tier capacity (GB).
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        free_nodes: int,
        free_bb: float,
        free_tiers: Mapping[float, int],
        forced: Sequence[int] = (),
    ) -> None:
        self.jobs = tuple(jobs)
        self.w = len(self.jobs)
        self.n_objectives = 4
        self.forced = tuple(sorted(set(int(i) for i in forced)))
        for i in self.forced:
            if not 0 <= i < self.w:
                raise SolverError(f"forced index {i} outside window of {self.w}")
        tier_total = sum(free_tiers.values())
        if tier_total != free_nodes:
            raise SolverError(
                f"tier counts sum to {tier_total}, expected {free_nodes} free nodes"
            )
        self.free_bb = float(free_bb)
        self.tier_caps = np.array(sorted(free_tiers), dtype=float)
        self.tier_free = np.array(
            [free_tiers[c] for c in sorted(free_tiers)], dtype=float
        )
        self._nodes = np.array([float(j.nodes) for j in self.jobs])
        self._bb = np.array([j.bb for j in self.jobs])
        self._ssd = np.array([j.ssd for j in self.jobs])
        if self.forced:
            ok = self.feasible(self._forced_only())
            if not bool(ok[0]):
                raise SolverError("forced jobs alone exceed available capacity")

    def _forced_only(self) -> np.ndarray:
        pop = np.zeros((1, self.w), dtype=np.uint8)
        if self.forced:
            pop[0, list(self.forced)] = 1
        return pop

    def _sweep(self, population: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Joint greedy assignment sweep.

        Returns ``(waste, feasible)`` where ``waste`` is the total SSD
        over-provisioning per chromosome and ``feasible`` covers *all*
        constraints (nodes via tiers, burst buffer).
        """
        self.assert_shape(population)
        pop = population.astype(float)
        P = pop.shape[0]
        n_tiers = self.tier_caps.size
        remaining = np.tile(self.tier_free, (P, 1))  # (P, n_tiers)
        waste = np.zeros(P)
        feasible = np.ones(P, dtype=bool)
        for j in range(self.w):
            sel = pop[:, j]  # (P,) 0/1
            if not sel.any():
                continue
            need = self._nodes[j] * sel  # (P,)
            qualifies = self.tier_caps >= self._ssd[j]  # (n_tiers,)
            # Greedy fill, smallest qualifying tier first.
            left = need.copy()
            for t in range(n_tiers):
                if not qualifies[t]:
                    continue
                grab = np.minimum(remaining[:, t], left)
                remaining[:, t] -= grab
                waste += grab * (self.tier_caps[t] - self._ssd[j])
                left -= grab
            feasible &= left <= 1e-9
        bb_usage = _stable_matvec(pop, self._bb)
        feasible &= bb_usage <= self.free_bb + 1e-9
        return waste, feasible

    def evaluate(self, population: np.ndarray) -> np.ndarray:
        pop = population.astype(float)
        f1 = _stable_matvec(pop, self._nodes)
        f2 = _stable_matvec(pop, self._bb)
        f3 = _stable_matvec(pop, self._ssd * self._nodes)
        waste, _ = self._sweep(population)
        return np.column_stack([f1, f2, f3, -waste])

    def feasible(self, population: np.ndarray) -> np.ndarray:
        _, ok = self._sweep(population)
        return ok
