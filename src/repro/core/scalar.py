"""Single-objective GA for the weighted and constrained methods (§4.3).

The weighted and constrained comparison methods convert multi-resource
scheduling into a *single*-objective optimization (§1, §2.3).  To compare
methods rather than solvers, they get the same evolutionary machinery as
BBSched — identical crossover, mutation, and repair operators with the same
``G``/``P`` budget — but with survival selection by scalar fitness
``fitness(x) = coeffs · F(x)`` instead of Pareto dominance, and a single
best solution as output.

* Constrained_CPU maximizes ``f1`` (coeffs ``[1, 0, …]``) under all
  resource constraints; Constrained_BB maximizes ``f2``; Constrained_SSD
  maximizes ``f3``.
* Weighted methods maximize a weighted sum of *utilizations*, i.e. coeffs
  are the site weights divided by the per-resource capacity scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError
from ..rng import SeedLike
from .ga import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION, MOGASolver
from .problem import MOOProblem


@dataclass(frozen=True)
class ScalarSolution:
    """Best solution found by a scalarized GA run."""

    genes: np.ndarray
    objectives: np.ndarray
    fitness: float


class ScalarGASolver(MOGASolver):
    """Elitist GA maximizing a linear combination of the objectives.

    Parameters
    ----------
    coeffs:
        Weights applied to the problem's objective vector.  Length must
        match ``problem.n_objectives`` at solve time.
    """

    def __init__(
        self,
        coeffs: Sequence[float],
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        seed: SeedLike = None,
        eval_cache: bool = True,
        cache_capacity: int | None = None,
        fast_repair: bool = False,
    ) -> None:
        extra = {} if cache_capacity is None else {"cache_capacity": cache_capacity}
        super().__init__(
            generations=generations,
            population=population,
            mutation=mutation,
            selection="age",
            seed=seed,
            eval_cache=eval_cache,
            fast_repair=fast_repair,
            **extra,
        )
        self.coeffs = np.asarray(coeffs, dtype=float)
        if self.coeffs.ndim != 1 or self.coeffs.size == 0:
            raise SolverError(f"coeffs must be a non-empty vector, got {self.coeffs}")

    def _survivors(self, genes, objectives, ages, rng, keys=None):
        """Keep the ``P`` fittest *unique* chromosomes (pool indices).

        Duplicates are collapsed (youngest copy kept) for the same reason
        as in :class:`MOGASolver`: clones freeze the crossover gene pool.
        Newer chromosomes win fitness ties.
        """
        if objectives.shape[1] != self.coeffs.size:
            raise SolverError(
                f"problem has {objectives.shape[1]} objectives, "
                f"solver has {self.coeffs.size} coefficients"
            )
        idx = self._dedup_youngest(genes, ages, keys)
        fitness = objectives[idx] @ self.coeffs
        order = np.lexsort((ages[idx], -fitness))
        keep = order[: self.population]
        if keep.size < self.population:
            pad = rng.integers(0, keep.size, size=self.population - keep.size)
            keep = np.concatenate([keep, keep[pad]])
        return idx[keep]

    def best(self, problem: MOOProblem, seed: SeedLike = None) -> ScalarSolution:
        """Run the GA and return the single fittest solution found."""
        pareto = self.solve(problem, seed=seed)
        if len(pareto) == 0:
            return ScalarSolution(
                genes=np.zeros(problem.w, dtype=np.uint8),
                objectives=np.zeros(problem.n_objectives),
                fitness=0.0,
            )
        fitness = pareto.objectives @ self.coeffs
        i = int(np.argmax(fitness))
        return ScalarSolution(
            genes=pareto.genes[i],
            objectives=pareto.objectives[i],
            fitness=float(fitness[i]),
        )
