"""Solution-quality metrics for MOO solvers (§3.2.3).

*Generational distance* (GD) measures how close an approximated solution
set ``S`` sits to the true Pareto set ``S*``::

    GD(S) = avg_{u in S} ( min_{v in S*} dist(u, v) )

— the average Euclidean distance from each solution to its nearest true
Pareto point; smaller is better, zero means ``S ⊆ S*``.  Figure 4 sweeps
the GA's ``G``/``P`` parameters against GD.

We also provide the 2-D *hypervolume* indicator (area dominated relative to
a reference point), a standard complementary quality measure used by the
ablation benchmarks, and an option to normalise objectives before
measuring, which stops the burst-buffer axis (GBs, ~10^5) from drowning
the node axis (~10^3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import SolverError


def _as_matrix(points: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2:
        raise SolverError(f"{name} must be a 2-D objective matrix, got {arr.shape}")
    return arr


def generational_distance(
    solutions: np.ndarray,
    true_front: np.ndarray,
    *,
    normalize: Optional[Sequence[float]] = None,
) -> float:
    """GD of ``solutions`` against ``true_front`` (both ``(n, k)``).

    ``normalize`` optionally divides each objective axis by a scale (e.g.
    total capacities) before measuring distances.  An empty solution set
    has GD 0 by convention only when the true front is also empty;
    otherwise it is an error — the solver must return something.
    """
    S = _as_matrix(solutions, "solutions")
    T = _as_matrix(true_front, "true_front")
    if S.shape[0] == 0 and T.shape[0] == 0:
        return 0.0
    if S.shape[0] == 0 or T.shape[0] == 0:
        raise SolverError("GD undefined: one of the sets is empty")
    if S.shape[1] != T.shape[1]:
        raise SolverError(
            f"objective dimension mismatch: {S.shape[1]} vs {T.shape[1]}"
        )
    if normalize is not None:
        scale = np.asarray(normalize, dtype=float)
        if scale.shape != (S.shape[1],) or (scale <= 0).any():
            raise SolverError("normalize must be positive, one scale per objective")
        S = S / scale
        T = T / scale
    # (n_s, n_t) pairwise distances via broadcasting.
    diff = S[:, None, :] - T[None, :, :]
    dists = np.sqrt((diff**2).sum(axis=2))
    return float(dists.min(axis=1).mean())


def hypervolume_2d(
    front: np.ndarray, reference: Sequence[float] = (0.0, 0.0)
) -> float:
    """Area dominated by a 2-objective (maximization) front above ``reference``.

    Points at or below the reference in either objective contribute
    nothing.  Dominated points in ``front`` are handled correctly (the
    sweep skips them).
    """
    F = _as_matrix(front, "front")
    if F.shape[1] != 2:
        raise SolverError(f"hypervolume_2d needs (n, 2) points, got {F.shape}")
    ref = np.asarray(reference, dtype=float)
    pts = F[(F[:, 0] > ref[0]) & (F[:, 1] > ref[1])]
    if pts.shape[0] == 0:
        return 0.0
    order = np.lexsort((-pts[:, 1], -pts[:, 0]))  # f1 desc, f2 desc
    pts = pts[order]
    area = 0.0
    prev_f2 = ref[1]
    for f1, f2 in pts:
        if f2 > prev_f2:
            area += (f1 - ref[0]) * (f2 - prev_f2)
            prev_f2 = f2
    return float(area)
