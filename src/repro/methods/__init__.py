"""Multi-resource scheduling methods compared in §4.3 and §5."""

from .base import Selector, SystemCapacity
from .binpacking import BinPackingSelector
from .constrained import (
    ConstrainedSelector,
    constrained_bb,
    constrained_cpu,
    constrained_ssd,
)
from .naive import NaiveSelector
from .registry import (
    METHODS_SECTION4,
    METHODS_SECTION5,
    available_methods,
    make_selector,
)
from .weighted import WeightedSelector, weighted_bb, weighted_cpu, weighted_equal

__all__ = [
    "Selector",
    "SystemCapacity",
    "NaiveSelector",
    "WeightedSelector",
    "ConstrainedSelector",
    "BinPackingSelector",
    "weighted_equal",
    "weighted_cpu",
    "weighted_bb",
    "constrained_cpu",
    "constrained_bb",
    "constrained_ssd",
    "make_selector",
    "available_methods",
    "METHODS_SECTION4",
    "METHODS_SECTION5",
]
