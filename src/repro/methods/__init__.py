"""Multi-resource scheduling methods compared in §4.3 and §5."""

from .base import Selector, SystemCapacity
from .binpacking import BinPackingSelector
from .constrained import (
    ConstrainedSelector,
    constrained_bb,
    constrained_cpu,
    constrained_ssd,
)
from .naive import NaiveSelector
from .planbased import PlanBasedSelector, plan_based
from .registry import (
    METHODS_EXTENDED,
    METHODS_SECTION4,
    METHODS_SECTION5,
    SOLVER_BACKED,
    available_methods,
    make_selector,
)
from .weighted import WeightedSelector, weighted_bb, weighted_cpu, weighted_equal

__all__ = [
    "Selector",
    "SystemCapacity",
    "NaiveSelector",
    "WeightedSelector",
    "ConstrainedSelector",
    "BinPackingSelector",
    "PlanBasedSelector",
    "plan_based",
    "weighted_equal",
    "weighted_cpu",
    "weighted_bb",
    "constrained_cpu",
    "constrained_bb",
    "constrained_ssd",
    "make_selector",
    "available_methods",
    "METHODS_SECTION4",
    "METHODS_SECTION5",
    "METHODS_EXTENDED",
    "SOLVER_BACKED",
]
