"""Plan-based selection: start the jobs a forward execution plan says to.

Every other method answers "which window jobs should run *now*?" with a
per-pass optimization or greedy rule.  ``Plan_Based`` instead builds a
forward :class:`~repro.simulator.plan.ExecutionPlan` — simulated start
times for the whole window against the projected free-capacity profile
(current free resources plus the running jobs' planned releases) — and
starts exactly the jobs the plan places at the current instant.

The insertion rule is conservative-backfilling's, applied to selection:
jobs are reserved in priority order at the earliest instant that hosts
their entire walltime, so no reservation delays a higher-priority one.
Compared to BBSched's utilization-maximizing pick this trades packing
density for priority protection — the §4 comparison axis the window
mechanism itself negotiates.

Requires the engine to project planned releases into the
:class:`~repro.simulator.cluster.Available` snapshot, which it does for
any selector with ``needs_releases = True``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..simulator.cluster import Available
from ..simulator.job import Job
from ..simulator.plan import ExecutionPlan, build_plan
from .base import Selector


class PlanBasedSelector(Selector):
    """Select window jobs by planned start time instead of a per-pass pick."""

    name = "Plan_Based"
    needs_releases = True

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        self._require_system()
        if not window:
            return []
        plan = self.plan(window, avail)
        immediate = {job.jid for job in plan.immediate()}
        return [i for i, job in enumerate(window) if job.jid in immediate]

    def plan(self, window: Sequence[Job], avail: Available) -> ExecutionPlan:
        """The full execution plan for this pass (exposed for inspection)."""
        return build_plan(
            window, avail.bb, avail.ssd_free, avail.releases, avail.now
        )


def plan_based(**_kw) -> PlanBasedSelector:
    """The ``Plan_Based`` comparison method (deterministic; ignores GA knobs)."""
    return PlanBasedSelector()
