"""Constrained methods (§4.3): optimize one resource, constrain the rest.

``Constrained_CPU`` maximizes node utilization treating the burst buffer
(and SSD tiers) purely as feasibility constraints; ``Constrained_BB``
maximizes burst-buffer utilization; ``Constrained_SSD`` (§5) maximizes
local-SSD utilization.  Each is a single-objective optimization solved
with the same GA budget as BBSched (:mod:`repro.core.scalar`), which is
the strongest honest implementation of the constrained approach the paper
compares against.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..core.problem import SelectionProblem, SSDSelectionProblem
from ..core.scalar import ScalarGASolver
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.cluster import Available
from ..simulator.job import Job
from .base import Selector

#: Objective index per optimization target (column of the MOO objective
#: matrix: f1 nodes, f2 burst buffer, f3 local SSD).
_TARGETS = {"cpu": 0, "bb": 1, "ssd": 2}


class ConstrainedSelector(Selector):
    """Maximize one resource's utilization under all capacity constraints.

    Parameters
    ----------
    target:
        ``"cpu"``, ``"bb"``, or ``"ssd"`` — which utilization to maximize.
        ``"ssd"`` requires a cluster with local SSD tiers.
    eval_cache:
        Memoize GA objective evaluations (byte-identical results, see
        :mod:`repro.core.evalcache`); ``False`` is the reference path.
    """

    def __init__(
        self,
        target: str = "cpu",
        *,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        seed: SeedLike = None,
        eval_cache: bool = True,
    ) -> None:
        super().__init__()
        if target not in _TARGETS:
            raise ConfigurationError(
                f"target must be one of {sorted(_TARGETS)}, got {target!r}"
            )
        self.target = target
        self.name = f"Constrained_{target.upper()}"
        self._ga = dict(
            generations=generations,
            population=population,
            mutation=mutation,
            eval_cache=eval_cache,
        )
        self._rng = make_rng(seed)
        # Per-call ScalarGASolvers are throwaway; counters accumulate here.
        self._cache_stats = {"hits": 0, "misses": 0, "deduped": 0, "evictions": 0}

    @property
    def eval_cache_stats(self):
        """Cumulative cache counters across all select() calls, or None."""
        if not self._ga["eval_cache"]:
            return None
        return dict(self._cache_stats)

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        self._require_system()
        if not window:
            return []
        ssd_tiers = len(avail.ssd_free) > 1 or any(c > 0 for c in avail.ssd_free)
        if ssd_tiers:
            problem = SSDSelectionProblem(window, avail.nodes, avail.bb, avail.ssd_free)
        else:
            if self.target == "ssd":
                raise ConfigurationError(
                    "Constrained_SSD requires a cluster with local SSD tiers"
                )
            problem = SelectionProblem.from_window(window, avail.nodes, avail.bb)
        coeffs = np.zeros(problem.n_objectives)
        coeffs[_TARGETS[self.target]] = 1.0
        solver = ScalarGASolver(coeffs, seed=None, **self._ga)
        best = solver.best(problem, seed=self._rng)
        stats = solver.eval_cache_stats
        if stats:
            for key in self._cache_stats:
                self._cache_stats[key] += stats[key]
        return [int(i) for i in np.flatnonzero(best.genes)]


def constrained_cpu(**kw) -> ConstrainedSelector:
    """§4.3 ``Constrained_CPU``."""
    return ConstrainedSelector("cpu", **kw)


def constrained_bb(**kw) -> ConstrainedSelector:
    """§4.3 ``Constrained_BB``."""
    return ConstrainedSelector("bb", **kw)


def constrained_ssd(**kw) -> ConstrainedSelector:
    """§5 ``Constrained_SSD``."""
    return ConstrainedSelector("ssd", **kw)
