"""Constrained methods (§4.3): optimize one resource, constrain the rest.

``Constrained_CPU`` maximizes node utilization treating the burst buffer
(and SSD tiers) purely as feasibility constraints; ``Constrained_BB``
maximizes burst-buffer utilization; ``Constrained_SSD`` (§5) maximizes
local-SSD utilization.  Each is a single-objective optimization solved
with the same GA budget as BBSched (:mod:`repro.core.scalar`) — or
exactly, with ``solver="milp"`` — which is the strongest honest
implementation of the constrained approach the paper compares against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..core.problem import SelectionProblem, SSDSelectionProblem
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.cluster import Available
from ..simulator.job import Job
from ..solvers.base import WindowSolver
from ..solvers.ga import GAWindowSolver
from ..solvers.gap import OptimalityYardstick
from .base import Selector

#: Objective index per optimization target (column of the MOO objective
#: matrix: f1 nodes, f2 burst buffer, f3 local SSD).
_TARGETS = {"cpu": 0, "bb": 1, "ssd": 2}


class ConstrainedSelector(Selector):
    """Maximize one resource's utilization under all capacity constraints.

    Parameters
    ----------
    target:
        ``"cpu"``, ``"bb"``, or ``"ssd"`` — which utilization to maximize.
        ``"ssd"`` requires a cluster with local SSD tiers.
    eval_cache:
        Memoize GA objective evaluations (byte-identical results, see
        :mod:`repro.core.evalcache`); ``False`` is the reference path.
    solver:
        A :class:`WindowSolver`, a registry name, or ``None`` for the
        scalar GA built from the knobs above.
    yardstick:
        Optional :class:`OptimalityYardstick` recording the per-pass gap
        between this method's scalarized value and the exact optimum.
    """

    def __init__(
        self,
        target: str = "cpu",
        *,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        seed: SeedLike = None,
        eval_cache: bool = True,
        solver: Union[WindowSolver, str, None] = None,
        yardstick: Optional[OptimalityYardstick] = None,
    ) -> None:
        super().__init__()
        if target not in _TARGETS:
            raise ConfigurationError(
                f"target must be one of {sorted(_TARGETS)}, got {target!r}"
            )
        self.target = target
        self.name = f"Constrained_{target.upper()}"
        if solver is None:
            solver = GAWindowSolver(
                generations=generations,
                population=population,
                mutation=mutation,
                eval_cache=eval_cache,
            )
        elif isinstance(solver, str):
            from ..solvers.registry import make_window_solver

            solver = make_window_solver(
                solver,
                generations=generations,
                population=population,
                mutation=mutation,
                eval_cache=eval_cache,
            )
        self.solver: WindowSolver = solver
        self.yardstick = yardstick
        self._rng = make_rng(seed)

    @property
    def eval_cache_stats(self):
        """Cumulative cache counters across all select() calls, or None."""
        return self.solver.eval_cache_stats

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        self._require_system()
        if not window:
            return []
        ssd_tiers = len(avail.ssd_free) > 1 or any(c > 0 for c in avail.ssd_free)
        if ssd_tiers:
            problem = SSDSelectionProblem(window, avail.nodes, avail.bb, avail.ssd_free)
        else:
            if self.target == "ssd":
                raise ConfigurationError(
                    "Constrained_SSD requires a cluster with local SSD tiers"
                )
            problem = SelectionProblem.from_window(window, avail.nodes, avail.bb)
        coeffs = np.zeros(problem.n_objectives)
        coeffs[_TARGETS[self.target]] = 1.0
        best = self.solver.solve_scalar(problem, coeffs, seed=self._rng)
        if self.yardstick is not None:
            self.yardstick.measure(problem, coeffs, best.fitness)
        return [int(i) for i in np.flatnonzero(best.genes)]


def constrained_cpu(**kw) -> ConstrainedSelector:
    """§4.3 ``Constrained_CPU``."""
    return ConstrainedSelector("cpu", **kw)


def constrained_bb(**kw) -> ConstrainedSelector:
    """§4.3 ``Constrained_BB``."""
    return ConstrainedSelector("bb", **kw)


def constrained_ssd(**kw) -> ConstrainedSelector:
    """§5 ``Constrained_SSD``."""
    return ConstrainedSelector("ssd", **kw)
