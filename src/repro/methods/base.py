"""Selector interface: multi-resource job-selection methods (§4.3).

A *selector* implements one multi-resource scheduling method.  At each
scheduling invocation the engine hands it the window jobs (starvation-forced
jobs are pre-allocated by the engine and never reach the selector) plus the
current free-capacity snapshot; the selector returns the indices of the
jobs to start.  The returned set must be *jointly feasible* — the engine
verifies and will raise on a selector bug rather than silently drop jobs.

Selectors normalising objectives to utilizations (weighted methods,
BBSched's decision rule) need the system's total capacities; the engine
calls :meth:`Selector.bind` once before the run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence


from ..errors import SchedulingError

if TYPE_CHECKING:  # imported lazily to avoid a cycle with the simulator
    from ..simulator.cluster import Available
    from ..simulator.job import Job


@dataclass(frozen=True)
class SystemCapacity:
    """Total schedulable capacities, for utilization normalisation.

    ``ssd_total`` is the aggregate local SSD over all nodes in GB (zero when
    the system has no local SSDs).
    """

    nodes: int
    bb: float
    ssd_total: float = 0.0

    def scales2(self) -> tuple[float, float]:
        """Normalisation scales for the 2-objective problem (nodes, BB)."""
        return (float(self.nodes), max(self.bb, 1.0))

    def scales4(self) -> tuple[float, float, float, float]:
        """Scales for the 4-objective problem (nodes, BB, SSD, waste)."""
        ssd = max(self.ssd_total, 1.0)
        return (float(self.nodes), max(self.bb, 1.0), ssd, ssd)


class Selector(abc.ABC):
    """One multi-resource scheduling method."""

    #: Identifier used in result tables (matches §4.3 naming).
    name: str = "selector"
    #: True when select() needs the engine to project planned resource
    #: releases into ``Available`` (the plan-based scheduler); the default
    #: keeps the snapshot construction byte-identical for everyone else.
    needs_releases: bool = False
    #: Optional OptimalityYardstick attached by subclasses; the engine
    #: harvests its gaps/skip counter through the properties below.
    yardstick = None

    def __init__(self) -> None:
        self.system: Optional[SystemCapacity] = None

    @property
    def optimality_gaps(self) -> List[float]:
        """Per-pass method-vs-exact gaps (empty without a yardstick)."""
        return list(self.yardstick.gaps) if self.yardstick is not None else []

    @property
    def yardstick_skipped(self) -> int:
        """Passes the yardstick could not measure (0 without one)."""
        return self.yardstick.skipped if self.yardstick is not None else 0

    def bind(self, system: SystemCapacity) -> None:
        """Attach system totals; called by the engine before the run."""
        self.system = system

    def _require_system(self) -> SystemCapacity:
        if self.system is None:
            raise SchedulingError(f"{self.name}: bind() must be called before select()")
        return self.system

    @abc.abstractmethod
    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        """Indices (into ``window``) of the jobs to start now."""

    # --- shared helpers ----------------------------------------------------------
    @staticmethod
    def verify_feasible(
        window: Sequence[Job], avail: Available, selected: Sequence[int]
    ) -> None:
        """Raise unless ``selected`` jointly fits into ``avail``.

        Joint SSD feasibility follows the greedy smallest-tier-first
        assignment in window order (the same rule the cluster applies).
        """
        seen = set()
        for i in selected:
            if not 0 <= i < len(window):
                raise SchedulingError(f"selected index {i} outside window")
            if i in seen:
                raise SchedulingError(f"index {i} selected twice")
            seen.add(i)
        nodes = sum(window[i].nodes for i in selected)
        bb = sum(window[i].bb for i in selected)
        if nodes > avail.nodes:
            raise SchedulingError(
                f"selection uses {nodes} nodes, only {avail.nodes} free"
            )
        if bb > avail.bb + 1e-9:
            raise SchedulingError(f"selection uses {bb}GB BB, only {avail.bb}GB free")
        tiers = dict(avail.ssd_free)
        caps = sorted(tiers)  # keys never change below, only counts do
        for i in sorted(selected):
            job = window[i]
            remaining = job.nodes
            for cap in caps:
                if cap < job.ssd or remaining == 0:
                    continue
                grab = min(tiers[cap], remaining)
                tiers[cap] -= grab
                remaining -= grab
            if remaining:
                raise SchedulingError(
                    f"job {job.jid} cannot find {job.nodes} nodes with "
                    f">= {job.ssd}GB SSD in the joint selection"
                )

    @staticmethod
    def greedy_in_order(
        window: Sequence[Job],
        avail: Available,
        order: Sequence[int],
        *,
        stop_at_first_miss: bool = False,
    ) -> List[int]:
        """Allocate indices in ``order`` while they fit.

        ``stop_at_first_miss`` reproduces blocking FCFS semantics (the
        naive method); otherwise non-fitting jobs are skipped.
        """
        tiers = dict(avail.ssd_free)
        caps = sorted(tiers)  # keys never change below, only counts do
        # Exact fast path for the qualifying count: a request at or below
        # the smallest tier capacity qualifies every free node (the common
        # case on single-tier systems), so track the integer total.
        min_cap = caps[0] if caps else 0.0
        total = sum(tiers.values())
        bb = avail.bb
        chosen: List[int] = []
        for i in order:
            job = window[i]
            if job.ssd <= min_cap:
                qualifying = total
            else:
                qualifying = sum(n for cap, n in tiers.items() if cap >= job.ssd)
            if job.bb <= bb + 1e-9 and qualifying >= job.nodes:
                remaining = job.nodes
                for cap in caps:
                    if cap < job.ssd or remaining == 0:
                        continue
                    grab = min(tiers[cap], remaining)
                    tiers[cap] -= grab
                    remaining -= grab
                total -= job.nodes
                bb -= job.bb
                chosen.append(i)
            elif stop_at_first_miss:
                break
        return chosen
