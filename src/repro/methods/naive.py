"""Baseline (naive) method: Slurm-style in-order allocation (§1, §4.3).

Slurm's burst-buffer co-scheduling allocates jobs from the queue front in
sequence *until either CPU or burst buffer is exhausted* — i.e. it blocks
at the first job that does not fit, and only EASY backfilling (run by the
engine afterwards) lets anything slip past the blocker.  In the Table 1
example this picks J1 and leaves 80 TB of burst buffer stranded.
"""

from __future__ import annotations

from typing import List, Sequence

from ..simulator.cluster import Available
from ..simulator.job import Job
from .base import Selector


class NaiveSelector(Selector):
    """In-order allocation, blocking at the first non-fitting job."""

    name = "Baseline"

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        return self.greedy_in_order(
            window, avail, range(len(window)), stop_at_first_miss=True
        )
