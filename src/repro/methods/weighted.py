"""Weighted-sum methods (§4.3): scalarize utilizations with site weights.

The weighted method maximizes ``Σ_r weight_r × utilization_r`` — a single
objective — using the same GA budget as BBSched (see
:mod:`repro.core.scalar`) or, with ``solver="milp"``, the exact 0/1
integer program.  Three §4.3 configurations:

* ``Weighted``      — 50/50 node/BB weights (resources equally important);
* ``Weighted_CPU``  — 80/20 (CPU more important);
* ``Weighted_BB``   — 20/80 (burst buffer more important).

For the §5 four-objective case ``Weighted`` becomes the equally weighted
sum of node, BB, SSD utilizations and the *negated* wasted-SSD percentage
(objective ``f4`` is already negated, so its coefficient stays positive).

Because the solvers' objectives are raw sums (nodes, GB), the utilization
weights are divided by the per-resource capacity scales before being
handed to the scalar solver.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.problem import SelectionProblem, SSDSelectionProblem
from ..core.params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.cluster import Available
from ..simulator.job import Job
from ..solvers.base import WindowSolver
from ..solvers.ga import GAWindowSolver
from ..solvers.gap import OptimalityYardstick
from .base import Selector


class WeightedSelector(Selector):
    """Maximize a weighted sum of resource utilizations.

    Parameters
    ----------
    node_weight, bb_weight:
        Site weights for node and burst-buffer utilization; need not sum
        to one (only ratios matter).
    ssd_weight, waste_weight:
        Weights for the §5 objectives; ignored on systems without SSD
        tiers.  Defaults make the 4-objective ``Weighted`` method equally
        weighted, as §5 specifies.
    eval_cache:
        Memoize GA objective evaluations (byte-identical results, see
        :mod:`repro.core.evalcache`); ``False`` is the reference path.
    solver:
        A :class:`WindowSolver`, a registry name, or ``None`` for the
        scalar GA built from the knobs above.
    yardstick:
        Optional :class:`OptimalityYardstick` recording the per-pass gap
        between this method's scalarized value and the exact optimum.
    """

    def __init__(
        self,
        node_weight: float = 0.5,
        bb_weight: float = 0.5,
        ssd_weight: float = 0.25,
        waste_weight: float = 0.25,
        *,
        name: Optional[str] = None,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        seed: SeedLike = None,
        eval_cache: bool = True,
        solver: Union[WindowSolver, str, None] = None,
        yardstick: Optional[OptimalityYardstick] = None,
    ) -> None:
        super().__init__()
        for label, wgt in (
            ("node_weight", node_weight),
            ("bb_weight", bb_weight),
            ("ssd_weight", ssd_weight),
            ("waste_weight", waste_weight),
        ):
            if wgt < 0:
                raise ConfigurationError(f"{label} must be non-negative, got {wgt}")
        if node_weight + bb_weight == 0:
            raise ConfigurationError("node and BB weights cannot both be zero")
        self.node_weight = node_weight
        self.bb_weight = bb_weight
        self.ssd_weight = ssd_weight
        self.waste_weight = waste_weight
        self.name = name or "Weighted"
        if solver is None:
            solver = GAWindowSolver(
                generations=generations,
                population=population,
                mutation=mutation,
                eval_cache=eval_cache,
            )
        elif isinstance(solver, str):
            from ..solvers.registry import make_window_solver

            solver = make_window_solver(
                solver,
                generations=generations,
                population=population,
                mutation=mutation,
                eval_cache=eval_cache,
            )
        self.solver: WindowSolver = solver
        self.yardstick = yardstick
        self._rng = make_rng(seed)

    @property
    def eval_cache_stats(self):
        """Cumulative cache counters across all select() calls, or None."""
        return self.solver.eval_cache_stats

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        system = self._require_system()
        if not window:
            return []
        ssd_tiers = len(avail.ssd_free) > 1 or any(c > 0 for c in avail.ssd_free)
        if ssd_tiers:
            problem = SSDSelectionProblem(window, avail.nodes, avail.bb, avail.ssd_free)
            scales = system.scales4()
            weights = (
                self.node_weight,
                self.bb_weight,
                self.ssd_weight,
                self.waste_weight,
            )
        else:
            problem = SelectionProblem.from_window(window, avail.nodes, avail.bb)
            scales = system.scales2()
            weights = (self.node_weight, self.bb_weight)
        coeffs = np.asarray(weights) / np.asarray(scales)
        best = self.solver.solve_scalar(problem, coeffs, seed=self._rng)
        if self.yardstick is not None:
            self.yardstick.measure(problem, coeffs, best.fitness)
        return [int(i) for i in np.flatnonzero(best.genes)]


def weighted_equal(**kw) -> WeightedSelector:
    """§4.3 ``Weighted``: 50%/50% node/BB."""
    return WeightedSelector(0.5, 0.5, name="Weighted", **kw)


def weighted_cpu(**kw) -> WeightedSelector:
    """§4.3 ``Weighted_CPU``: 80%/20% node/BB."""
    return WeightedSelector(0.8, 0.2, name="Weighted_CPU", **kw)


def weighted_bb(**kw) -> WeightedSelector:
    """§4.3 ``Weighted_BB``: 20%/80% node/BB."""
    return WeightedSelector(0.2, 0.8, name="Weighted_BB", **kw)
