"""Factory registry for the §4.3 / §5 scheduling methods.

Experiments refer to methods by the paper's names; :func:`make_selector`
builds a fresh, independently seeded selector per simulation run so
parallel sweeps never share mutable state.  The optimization-backed
methods additionally accept a *window solver* name — the paper's GA, the
exact MILP, exhaustive enumeration — routed through
:mod:`repro.solvers.registry`, so ``--solver`` composes with every
method.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ..core.params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..errors import ConfigurationError
from ..rng import SeedLike
from .base import Selector
from .binpacking import BinPackingSelector
from .constrained import constrained_bb, constrained_cpu, constrained_ssd
from .naive import NaiveSelector
from .planbased import plan_based
from .weighted import weighted_bb, weighted_cpu, weighted_equal

#: The eight methods of the §4 evaluation, in the paper's presentation order.
METHODS_SECTION4: tuple[str, ...] = (
    "Baseline",
    "Weighted",
    "Weighted_CPU",
    "Weighted_BB",
    "Constrained_CPU",
    "Constrained_BB",
    "Bin_Packing",
    "BBSched",
)

#: The seven methods of the §5 local-SSD case study.
METHODS_SECTION5: tuple[str, ...] = (
    "Baseline",
    "Weighted",
    "Constrained_CPU",
    "Constrained_BB",
    "Constrained_SSD",
    "Bin_Packing",
    "BBSched",
)

#: Comparison methods beyond the paper's own table: the plan-based
#: scheduler (docs/solvers.md).  Not part of METHODS_SECTION4, so the
#: paper-faithful grids and figures are unchanged.
METHODS_EXTENDED: tuple[str, ...] = ("Plan_Based",)

#: Methods whose selection is a solver run (and can therefore take
#: ``solver=``/``yardstick=``); the greedy/plan methods ignore both.
SOLVER_BACKED: tuple[str, ...] = (
    "Weighted",
    "Weighted_CPU",
    "Weighted_BB",
    "Constrained_CPU",
    "Constrained_BB",
    "Constrained_SSD",
    "BBSched",
)


def make_selector(
    name: str,
    *,
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    mutation: float = DEFAULT_MUTATION,
    seed: SeedLike = None,
    eval_cache: bool = True,
    solver: Optional[str] = None,
    yardstick: Union[bool, object] = False,
) -> Selector:
    """Build a selector by its §4.3 name.

    GA parameters apply to every GA-backed method (identical optimization
    budget keeps the comparison about the *formulation*, not solver time);
    the greedy methods (Baseline, Bin_Packing) ignore them, as they do
    ``eval_cache`` (the GA evaluation memo, byte-identical either way —
    ``False`` is the reference path the differential tests compare against).

    ``solver`` names a window solver from :mod:`repro.solvers.registry`
    (``"ga"``, ``"scalar"``, ``"milp"``, ``"exhaustive"``); ``None`` keeps
    each method's stock GA.  ``yardstick=True`` attaches a fresh
    :class:`~repro.solvers.gap.OptimalityYardstick` (or pass an instance
    to share one), recording the per-pass method-vs-exact optimality gap
    into the run's telemetry.  Both only apply to the solver-backed
    methods; the greedy and plan-based methods ignore them.
    """
    # Imported here, not at module scope: BBSchedSelector lives in repro.core,
    # which itself imports repro.methods.base — a top-level import would cycle.
    from ..core.bbsched import BBSchedSelector

    yd = None
    if yardstick:
        from ..solvers.gap import OptimalityYardstick

        yd = yardstick if isinstance(yardstick, OptimalityYardstick) else None
        if yd is None:
            yd = OptimalityYardstick()
    # "ga" names each method's stock configuration, so the selectors build
    # their own GA from the knobs (byte-identical to solver=None).
    solver_name = None if solver in (None, "ga") else solver
    ga = dict(
        generations=generations,
        population=population,
        mutation=mutation,
        eval_cache=eval_cache,
    )
    solved = dict(ga, solver=solver_name, yardstick=yd)
    factories: Dict[str, Callable[[], Selector]] = {
        "Baseline": NaiveSelector,
        "Weighted": lambda: weighted_equal(seed=seed, **solved),
        "Weighted_CPU": lambda: weighted_cpu(seed=seed, **solved),
        "Weighted_BB": lambda: weighted_bb(seed=seed, **solved),
        "Constrained_CPU": lambda: constrained_cpu(seed=seed, **solved),
        "Constrained_BB": lambda: constrained_bb(seed=seed, **solved),
        "Constrained_SSD": lambda: constrained_ssd(seed=seed, **solved),
        "Bin_Packing": BinPackingSelector,
        "BBSched": lambda: BBSchedSelector(seed=seed, **solved),
        "Plan_Based": plan_based,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; known: {sorted(factories)}"
        ) from None


def available_methods() -> List[str]:
    """All method names :func:`make_selector` accepts."""
    return sorted(
        set(METHODS_SECTION4) | set(METHODS_SECTION5) | set(METHODS_EXTENDED)
    )
