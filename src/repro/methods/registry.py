"""Factory registry for the §4.3 / §5 scheduling methods.

Experiments refer to methods by the paper's names; :func:`make_selector`
builds a fresh, independently seeded selector per simulation run so
parallel sweeps never share mutable state.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.params import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..errors import ConfigurationError
from ..rng import SeedLike
from .base import Selector
from .binpacking import BinPackingSelector
from .constrained import constrained_bb, constrained_cpu, constrained_ssd
from .naive import NaiveSelector
from .weighted import weighted_bb, weighted_cpu, weighted_equal

#: The eight methods of the §4 evaluation, in the paper's presentation order.
METHODS_SECTION4: tuple[str, ...] = (
    "Baseline",
    "Weighted",
    "Weighted_CPU",
    "Weighted_BB",
    "Constrained_CPU",
    "Constrained_BB",
    "Bin_Packing",
    "BBSched",
)

#: The seven methods of the §5 local-SSD case study.
METHODS_SECTION5: tuple[str, ...] = (
    "Baseline",
    "Weighted",
    "Constrained_CPU",
    "Constrained_BB",
    "Constrained_SSD",
    "Bin_Packing",
    "BBSched",
)


def make_selector(
    name: str,
    *,
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    mutation: float = DEFAULT_MUTATION,
    seed: SeedLike = None,
    eval_cache: bool = True,
) -> Selector:
    """Build a selector by its §4.3 name.

    GA parameters apply to every GA-backed method (identical optimization
    budget keeps the comparison about the *formulation*, not solver time);
    the greedy methods (Baseline, Bin_Packing) ignore them, as they do
    ``eval_cache`` (the GA evaluation memo, byte-identical either way —
    ``False`` is the reference path the differential tests compare against).
    """
    # Imported here, not at module scope: BBSchedSelector lives in repro.core,
    # which itself imports repro.methods.base — a top-level import would cycle.
    from ..core.bbsched import BBSchedSelector

    ga = dict(
        generations=generations,
        population=population,
        mutation=mutation,
        eval_cache=eval_cache,
    )
    factories: Dict[str, Callable[[], Selector]] = {
        "Baseline": NaiveSelector,
        "Weighted": lambda: weighted_equal(seed=seed, **ga),
        "Weighted_CPU": lambda: weighted_cpu(seed=seed, **ga),
        "Weighted_BB": lambda: weighted_bb(seed=seed, **ga),
        "Constrained_CPU": lambda: constrained_cpu(seed=seed, **ga),
        "Constrained_BB": lambda: constrained_bb(seed=seed, **ga),
        "Constrained_SSD": lambda: constrained_ssd(seed=seed, **ga),
        "Bin_Packing": BinPackingSelector,
        "BBSched": lambda: BBSchedSelector(seed=seed, **ga),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; known: {sorted(factories)}"
        ) from None


def available_methods() -> List[str]:
    """All method names :func:`make_selector` accepts."""
    return sorted(set(METHODS_SECTION4) | set(METHODS_SECTION5))
