"""Bin-packing method (§4.3): Tetris-style alignment-score packing.

Following Grandl et al. (SIGCOMM 2014), each window job gets an *alignment
score* — the dot product between the machine's remaining resource vector
and the job's demand vector, both normalised by total capacity so nodes
and gigabytes are commensurable.  The job with the highest score among
those that fit is allocated, remaining capacity shrinks, and the process
repeats until nothing fits.  The greedy one-at-a-time choice is exactly
what §1's Table 1 example shows missing the globally better combination.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..simulator.cluster import Available
from ..simulator.job import Job
from .base import Selector


class BinPackingSelector(Selector):
    """Iterative highest-alignment-score packing."""

    name = "Bin_Packing"

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        system = self._require_system()
        if not window:
            return []
        ssd_tiers = len(avail.ssd_free) > 1 or any(c > 0 for c in avail.ssd_free)
        # Capacity scales make the alignment dot product unit-free.
        if ssd_tiers:
            scales = np.asarray(system.scales4()[:3])
        else:
            scales = np.asarray(system.scales2())

        tiers: Dict[float, int] = dict(avail.ssd_free)
        bb_free = avail.bb
        remaining = set(range(len(window)))
        chosen: List[int] = []
        while remaining:
            nodes_free = sum(tiers.values())
            if ssd_tiers:
                ssd_free = sum(cap * n for cap, n in tiers.items())
                machine = np.array([nodes_free, bb_free, ssd_free]) / scales
            else:
                machine = np.array([nodes_free, bb_free]) / scales
            best_i = -1
            best_score = -np.inf
            for i in sorted(remaining):
                job = window[i]
                qualifying = sum(n for cap, n in tiers.items() if cap >= job.ssd)
                if job.bb > bb_free + 1e-9 or qualifying < job.nodes:
                    continue
                if ssd_tiers:
                    demand = np.array(
                        [job.nodes, job.bb, job.ssd * job.nodes]
                    ) / scales
                else:
                    demand = np.array([job.nodes, job.bb]) / scales
                score = float(machine @ demand)
                if score > best_score:
                    best_score = score
                    best_i = i
            if best_i < 0:
                break
            job = window[best_i]
            need = job.nodes
            for cap in sorted(tiers):
                if cap < job.ssd or need == 0:
                    continue
                grab = min(tiers[cap], need)
                tiers[cap] -= grab
                need -= grab
            bb_free -= job.bb
            remaining.discard(best_i)
            chosen.append(best_i)
        return sorted(chosen)
