"""Window-based scheduling (§3.1).

Instead of allocating jobs one by one from the queue front, BBSched (and,
for fair comparison, every method in §4.3) draws a *window* of the first
``w`` eligible jobs from the priority-ordered queue and optimizes the
selection within it.  Two refinements from §3.1:

* **dependency gating** — a job enters the window only when all of its
  dependencies have completed, preserving dependent-job ordering;
* **starvation bound** — a job that has sat in the window unselected for
  more than ``starvation_bound`` scheduling invocations *must* be selected
  next (window ages live on the jobs as ``job.window_age``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..simulator.job import Job
from ..telemetry import get_tracer

#: Default number of invocations a job may remain unselected (§3.1 cites 50).
DEFAULT_STARVATION_BOUND = 50
#: Default window size (§4.3 uses w=20).
DEFAULT_WINDOW_SIZE = 20


@dataclass(frozen=True)
class Window:
    """The jobs under optimization at one scheduling invocation.

    ``forced`` holds indices (into ``jobs``) of jobs past the starvation
    bound, in window order.
    """

    jobs: Tuple[Job, ...]
    forced: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)


class WindowPolicy:
    """Extracts windows and maintains starvation counters.

    Parameters
    ----------
    size:
        Window size ``w`` — a site-tunable trade-off between optimization
        opportunity and preservation of the base scheduler's job order.
    starvation_bound:
        Invocations a job may stay in the window unselected before it is
        force-selected.  ``None`` disables starvation protection.
    """

    def __init__(
        self,
        size: int = DEFAULT_WINDOW_SIZE,
        starvation_bound: int | None = DEFAULT_STARVATION_BOUND,
    ) -> None:
        if size <= 0:
            raise ConfigurationError(f"window size must be positive, got {size}")
        if starvation_bound is not None and starvation_bound <= 0:
            raise ConfigurationError(
                f"starvation bound must be positive or None, got {starvation_bound}"
            )
        self.size = size
        self.starvation_bound = starvation_bound

    def eligible(self, ordered_queue: Sequence[Job], completed: AbstractSet[int]) -> List[Job]:
        """Jobs whose dependencies have all completed, in queue order."""
        return [j for j in ordered_queue if j.deps <= completed]

    def scope_size(self, eligible_count: int) -> int:
        """How many queue-front jobs this invocation examines.

        Used by the engine's window-scoped backfilling; dynamic policies
        override it to track their current window size.
        """
        return self.size

    def extract_eligible(self, eligible: Sequence[Job]) -> Window:
        """Build the window from an already-computed eligible list.

        The engine computes the priority-ordered eligible list once per
        scheduling pass and shares it between window extraction and
        window-scoped backfilling; this entry point avoids re-deriving it.
        Jobs already past the starvation bound are flagged forced.
        """
        jobs = tuple(eligible[: self.scope_size(len(eligible))])
        if self.starvation_bound is None:
            return Window(jobs=jobs)
        forced = tuple(
            i for i, j in enumerate(jobs) if j.window_age >= self.starvation_bound
        )
        if forced:
            get_tracer().instant(
                "starvation_forced",
                count=len(forced),
                jids=[jobs[i].jid for i in forced],
            )
        return Window(jobs=jobs, forced=forced)

    def extract(
        self, ordered_queue: Sequence[Job], completed: AbstractSet[int]
    ) -> Window:
        """Build the window from a priority-ordered queue.

        ``completed`` is the set of completed job ids used for dependency
        gating.
        """
        return self.extract_eligible(self.eligible(ordered_queue, completed))

    def record_outcome(self, window: Window, selected: AbstractSet[int]) -> None:
        """Update starvation ages after a selection.

        Selected jobs leave the queue; unselected window members age by
        one invocation.
        """
        for i, job in enumerate(window.jobs):
            if i in selected:
                job.window_age = 0
            else:
                job.window_age += 1
