"""Dynamic window sizing — the §3.1 extension.

    "In addition, the window size could be dynamically adjusted in
    response to system status.  Job queue length often changes…"  (§3.1)

:class:`DynamicWindowPolicy` scales the window with the eligible queue
length: a fixed fraction of the queue, clamped to ``[min_size, max_size]``.
Long workday queues get a wide optimization window; near-empty weekend
queues keep the original job order almost untouched (and keep the MOO
cheap).  It is a drop-in replacement for the static
:class:`~repro.windows.window.WindowPolicy`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .window import DEFAULT_STARVATION_BOUND, WindowPolicy


class DynamicWindowPolicy(WindowPolicy):
    """Window sized as a fraction of the eligible queue.

    Parameters
    ----------
    fraction:
        Window size as a share of the eligible queue length (0, 1].
    min_size, max_size:
        Clamp; ``max_size`` also bounds the MOO search space (the §3.2.2
        exhaustive blow-up applies to whatever the window admits).
    starvation_bound:
        As in the static policy.
    """

    def __init__(
        self,
        fraction: float = 0.25,
        min_size: int = 5,
        max_size: int = 50,
        starvation_bound: int | None = DEFAULT_STARVATION_BOUND,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if not 1 <= min_size <= max_size:
            raise ConfigurationError(
                f"need 1 <= min_size <= max_size, got [{min_size}, {max_size}]"
            )
        super().__init__(size=max_size, starvation_bound=starvation_bound)
        self.fraction = fraction
        self.min_size = min_size
        self.max_size = max_size

    def current_size(self, eligible_count: int) -> int:
        """Window size for a queue of ``eligible_count`` eligible jobs."""
        raw = int(round(self.fraction * eligible_count))
        return max(self.min_size, min(raw, self.max_size))

    def scope_size(self, eligible_count: int) -> int:
        return self.current_size(eligible_count)
