"""Window-based scheduling mechanism (§3.1)."""

from .dynamic import DynamicWindowPolicy
from .window import DEFAULT_STARVATION_BOUND, DEFAULT_WINDOW_SIZE, Window, WindowPolicy

__all__ = [
    "Window",
    "WindowPolicy",
    "DynamicWindowPolicy",
    "DEFAULT_WINDOW_SIZE",
    "DEFAULT_STARVATION_BOUND",
]
