"""Exhaustive enumeration behind the :class:`WindowSolver` protocol.

Adapts :class:`repro.core.exhaustive.ExhaustiveSolver` — the chunked
2^w enumeration — to the plugin interface.  It is the gold standard for
tiny windows (every feasible selection is evaluated), but hits a hard
wall at ``max_w`` (default 26); the MILP solver extends exact answers
far past that for linear formulations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exhaustive import MAX_EXHAUSTIVE_W, ExhaustiveSolver
from ..core.ga import ParetoSet
from ..core.scalar import ScalarSolution
from ..errors import SolverError
from ..rng import SeedLike
from .base import WindowSolver


class ExhaustiveWindowSolver(WindowSolver):
    """True Pareto set / scalar optimum by enumerating all 2^w selections.

    Deterministic: ``seed`` is accepted for interface parity and ignored
    (the RNG stream is never touched, so swapping this solver in and out
    of a run does not perturb GA-seeded methods).
    """

    name = "exhaustive"
    exact = True

    def __init__(self, max_w: int = MAX_EXHAUSTIVE_W) -> None:
        self._solver = ExhaustiveSolver(max_w=max_w)

    @property
    def max_w(self) -> int:
        return self._solver.max_w

    def solve(self, problem, seed: SeedLike = None) -> ParetoSet:
        return self._solver.solve(problem)

    def solve_scalar(
        self, problem, coeffs: Sequence[float], seed: SeedLike = None
    ) -> ScalarSolution:
        """Scalar optimum read off the exhaustive Pareto front.

        For non-negative coefficients the scalarized optimum is always
        attained on the Pareto front (any dominated point has a
        componentwise-≥ competitor with no smaller scalar value), so the
        argmax over the front is the global optimum.  Negative
        coefficients would break that argument, so they are rejected.
        """
        coeffs = np.asarray(coeffs, dtype=float)
        if coeffs.ndim != 1 or coeffs.size != problem.n_objectives:
            raise SolverError(
                f"coeffs must have length {problem.n_objectives}, got {coeffs.shape}"
            )
        if (coeffs < 0).any():
            raise SolverError(
                "exhaustive scalar solve requires non-negative coefficients "
                f"(the front argmax is only globally optimal then), got {coeffs}"
            )
        try:
            front = self._solver.solve(problem)
        except SolverError:
            if problem.w > self.max_w:
                raise
            # Nothing feasible: mirror ScalarGASolver.best's empty answer.
            return ScalarSolution(
                genes=np.zeros(problem.w, dtype=np.uint8),
                objectives=np.zeros(problem.n_objectives),
                fitness=0.0,
            )
        if len(front) == 0:
            return ScalarSolution(
                genes=np.zeros(problem.w, dtype=np.uint8),
                objectives=np.zeros(problem.n_objectives),
                fitness=0.0,
            )
        fitness = front.objectives @ coeffs
        i = int(np.argmax(fitness))
        return ScalarSolution(
            genes=front.genes[i].astype(np.uint8),
            objectives=front.objectives[i],
            fitness=float(fitness[i]),
        )
