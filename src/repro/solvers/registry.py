"""Window-solver registry: names on the CLI → configured solver plugins.

``--solver {ga,scalar,milp,exhaustive}`` composes with every selection
method: the registry constructs the solver from the run's GA knobs (which
GA-backed solvers consume and exact solvers ignore) and the selectors
treat it as an opaque :class:`~repro.solvers.base.WindowSolver`.  Adding
a solver family (an RL policy à la MRSch, a different exact backend) is
one class plus one registry row.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.ga import DEFAULT_GENERATIONS, DEFAULT_MUTATION, DEFAULT_POPULATION
from ..errors import ConfigurationError
from .base import WindowSolver
from .exhaustive import ExhaustiveWindowSolver
from .ga import GAWindowSolver, ScalarGAWindowSolver
from .milp import MILPWindowSolver

#: name → (factory, one-line description for ``repro solvers``).
_REGISTRY: Dict[str, Tuple[Callable[..., WindowSolver], str]] = {}


def register_window_solver(
    name: str, factory: Callable[..., WindowSolver], description: str
) -> None:
    """Add a solver family to the registry (idempotent per name)."""
    _REGISTRY[name] = (factory, description)


def available_window_solvers() -> Tuple[str, ...]:
    """Registered solver names, in registration order."""
    return tuple(_REGISTRY)


def solver_matrix() -> Tuple[dict, ...]:
    """One row per registered solver: name, exactness, description."""
    rows = []
    for name, (factory, description) in _REGISTRY.items():
        probe = factory()
        rows.append(
            {"name": name, "exact": bool(probe.exact), "description": description}
        )
    return tuple(rows)


def make_window_solver(
    name: str,
    *,
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    mutation: float = DEFAULT_MUTATION,
    selection: str = "age",
    eval_cache: bool = True,
    fast_repair: bool = False,
    backend: str = "auto",
) -> WindowSolver:
    """Construct a registered solver from the run's knobs.

    GA knobs (``generations`` … ``fast_repair``) configure GA-backed
    solvers and are ignored by exact ones; ``backend`` picks the MILP
    engine.  Unknown names raise :class:`ConfigurationError` listing the
    registered choices.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown window solver {name!r}; "
            f"choices: {', '.join(available_window_solvers())}"
        )
    factory, _ = _REGISTRY[name]
    return factory(
        generations=generations,
        population=population,
        mutation=mutation,
        selection=selection,
        eval_cache=eval_cache,
        fast_repair=fast_repair,
        backend=backend,
    )


def _ga_factory(
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    mutation: float = DEFAULT_MUTATION,
    selection: str = "age",
    eval_cache: bool = True,
    fast_repair: bool = False,
    backend: str = "auto",
) -> WindowSolver:
    return GAWindowSolver(
        generations=generations,
        population=population,
        mutation=mutation,
        selection=selection,
        eval_cache=eval_cache,
        fast_repair=fast_repair,
    )


def _scalar_factory(
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    mutation: float = DEFAULT_MUTATION,
    selection: str = "age",
    eval_cache: bool = True,
    fast_repair: bool = False,
    backend: str = "auto",
) -> WindowSolver:
    return ScalarGAWindowSolver(
        generations=generations,
        population=population,
        mutation=mutation,
        selection=selection,
        eval_cache=eval_cache,
        fast_repair=fast_repair,
    )


def _milp_factory(backend: str = "auto", **_ga_knobs) -> WindowSolver:
    return MILPWindowSolver(backend=backend)


def _exhaustive_factory(**_knobs) -> WindowSolver:
    return ExhaustiveWindowSolver()


register_window_solver(
    "ga",
    _ga_factory,
    "multi-objective genetic algorithm (§3.2.2; the paper's solver)",
)
register_window_solver(
    "scalar",
    _scalar_factory,
    "per-objective scalar GAs, union culled to the nondominated set",
)
register_window_solver(
    "milp",
    _milp_factory,
    "exact 0/1 integer programming (scipy/HiGHS or built-in B&B)",
)
register_window_solver(
    "exhaustive",
    _exhaustive_factory,
    "full 2^w enumeration (exact; refuses w > 26)",
)
