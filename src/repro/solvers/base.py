"""The :class:`WindowSolver` plugin protocol.

A *window solver* answers the §3.2 window-selection problem in one of two
modes:

* :meth:`WindowSolver.solve` — the multi-objective mode: return a (true or
  approximate) Pareto set over the window, which a decision rule then
  collapses to one dispatched selection (BBSched's pipeline);
* :meth:`WindowSolver.solve_scalar` — the single-objective mode: return the
  best selection under a linear scalarization ``coeffs · F(x)`` (the
  weighted / constrained methods, and the optimality-gap yardstick).

Selectors (:mod:`repro.methods`) own the *formulation* — which problem to
build, which coefficients or decision rule to apply — and delegate the
*optimization* to a solver, so GA, exact MILP, exhaustive enumeration, and
future solvers (RL à la MRSch) are interchangeable drop-ins.  Solvers are
discovered by name through :mod:`repro.solvers.registry` and surface on
the CLI as ``--solver {ga,scalar,milp,exhaustive}``.

Contract notes for implementers:

* ``solve``/``solve_scalar`` must honour ``problem.forced`` (starvation
  bound, §3.1) and return only feasible selections — the engine verifies
  joint feasibility and raises on a solver bug.
* ``seed`` may be ``None``, an int, or a live ``numpy`` Generator that the
  caller threads across scheduling passes.  Deterministic solvers simply
  ignore it (and must not consume the stream, so swapping a deterministic
  yardstick in and out never perturbs a GA run).
* ``supports`` lets a solver refuse formulations it cannot represent
  exactly (the MILP solver and the §5 SSD problem, whose waste objective
  depends on a greedy joint tier assignment).  Callers check it to fail
  with a clear error instead of a wrong answer.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # avoid importing numpy-heavy modules for type hints only
    from ..core.ga import ParetoSet
    from ..core.problem import MOOProblem
    from ..core.scalar import ScalarSolution
    from ..rng import SeedLike


class WindowSolver(abc.ABC):
    """One way of solving the window-selection problem."""

    #: Registry name (``--solver`` value); subclasses override.
    name: str = "solver"
    #: True when results are provably optimal (exact Pareto set / exact
    #: scalar optimum), not a metaheuristic approximation.
    exact: bool = False

    @abc.abstractmethod
    def solve(self, problem: "MOOProblem", seed: "SeedLike" = None) -> "ParetoSet":
        """Pareto set of ``problem`` (true or approximate, per ``exact``)."""

    @abc.abstractmethod
    def solve_scalar(
        self,
        problem: "MOOProblem",
        coeffs: Sequence[float],
        seed: "SeedLike" = None,
    ) -> "ScalarSolution":
        """Best selection maximizing ``coeffs · F(x)`` over ``problem``."""

    def supports(self, problem: "MOOProblem") -> bool:
        """Can this solver represent ``problem`` faithfully?"""
        return True

    @property
    def eval_cache_stats(self) -> Optional[dict]:
        """GA evaluation-cache counters, for solvers that have one.

        The engine harvests these through the selector at end of run;
        solvers without a cache report ``None``.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, exact={self.exact})"
