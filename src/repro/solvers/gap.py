"""Optimality-gap yardstick: how far from exact is the GA, per pass?

The GA returns an *approximate* Pareto set; the MILP solver an *exact*
scalar optimum.  The yardstick rides along with a selector and, for each
scheduling pass, re-solves the pass's window-selection problem exactly
under the selector's own scalarization, then records the relative gap

    gap = max(0, (opt − achieved) / |opt|)        (0 when |opt| ≈ 0)

so a run's gap distribution quantifies solution quality, not just
throughput.  This is the §4 comparison the paper could not make (no
exact reference at scale): with the MILP solver, windows up to w ≈ 30+
get an exact yardstick instead of an exhaustive one capped at w = 26.

Design constraints honoured here:

* the yardstick must **never perturb the measured run** — the exact
  solver ignores seeds and consumes no RNG, so results with and without
  the yardstick are byte-identical (the differential suite relies on it);
* problems the exact solver cannot represent (the §5 SSD sweep) are
  *skipped and counted*, never silently mis-measured;
* measurement failures (node-budget blowouts on adversarial windows) are
  also skips: a missing sample beats a bogus one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ReproError
from .base import WindowSolver
from .milp import MILPWindowSolver

#: |opt| below this is treated as zero (empty windows, all-zero demands).
_ZERO = 1e-12


class OptimalityYardstick:
    """Per-pass GA-vs-exact relative gap recorder.

    Parameters
    ----------
    solver:
        The exact reference solver; defaults to a fresh
        :class:`~repro.solvers.milp.MILPWindowSolver` (auto backend).

    Attributes
    ----------
    gaps:
        One relative gap per measured pass, in pass order.
    skipped:
        Passes not measured (unsupported formulation or solver failure).
    """

    def __init__(self, solver: Optional[WindowSolver] = None) -> None:
        self.solver = solver if solver is not None else MILPWindowSolver()
        self.gaps: List[float] = []
        self.skipped: int = 0

    def measure(
        self,
        problem,
        coeffs: Sequence[float],
        achieved: float,
    ) -> Optional[float]:
        """Record the gap between ``achieved`` and the exact optimum.

        ``achieved`` is the scalarized value the approximate method
        actually obtained under ``coeffs`` (for a front method, the best
        scalarization over its front).  Returns the recorded gap, or
        ``None`` when the pass was skipped.
        """
        if not self.solver.supports(problem):
            self.skipped += 1
            return None
        try:
            exact = self.solver.solve_scalar(problem, coeffs)
        except ReproError:
            self.skipped += 1
            return None
        opt = float(exact.fitness)
        if abs(opt) <= _ZERO:
            gap = 0.0
        else:
            # The GA can only be worse; a "negative gap" is float noise.
            gap = max(0.0, (opt - float(achieved)) / abs(opt))
        self.gaps.append(gap)
        return gap

    def measure_front(self, problem, coeffs: Sequence[float], front) -> Optional[float]:
        """Gap for a front method: best scalarization over its Pareto set."""
        if len(front) == 0:
            self.skipped += 1
            return None
        achieved = float(
            np.max(np.asarray(front.objectives, dtype=float) @ np.asarray(coeffs, dtype=float))
        )
        return self.measure(problem, coeffs, achieved)

    def summary(self) -> Optional[dict]:
        """count / mean / max / p95 of the recorded gaps (None if empty)."""
        if not self.gaps:
            return None
        arr = np.asarray(self.gaps, dtype=float)
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "p95": float(np.percentile(arr, 95.0)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OptimalityYardstick(samples={len(self.gaps)}, "
            f"skipped={self.skipped}, solver={self.solver.name!r})"
        )
