"""GA-backed window solvers: the paper's §3.2.2 metaheuristic as plugins.

``GAWindowSolver`` wraps the existing evolutionary machinery behind the
:class:`~repro.solvers.base.WindowSolver` protocol:

* :meth:`~GAWindowSolver.solve` delegates to one long-lived
  :class:`~repro.core.ga.MOGASolver` (BBSched's multi-objective GA);
* :meth:`~GAWindowSolver.solve_scalar` builds a fresh
  :class:`~repro.core.scalar.ScalarGASolver` per call (the weighted /
  constrained methods' historical behaviour) and accumulates its
  evaluation-cache counters.

Both paths thread the caller's RNG through unchanged, so selectors
refactored onto this adapter reproduce the pre-refactor byte-identical
results — the construction order, argument lists, and seed handling match
the code they replace exactly.

``ScalarGAWindowSolver`` ("scalar") is the degenerate-scalarization
family from §2.3 run as a *front* method: one unit-coefficient scalar GA
per objective, with the union of bests culled to its nondominated subset.
It exists as a cheap front approximation to compare against the true MOO
GA and the exact solvers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.ga import (
    DEFAULT_GENERATIONS,
    DEFAULT_MUTATION,
    DEFAULT_POPULATION,
    MOGASolver,
    ParetoSet,
)
from ..core.pareto import non_dominated_mask, unique_front
from ..core.scalar import ScalarGASolver, ScalarSolution
from ..rng import SeedLike
from .base import WindowSolver

#: Zeroed evaluation-cache counter block (shape shared with EvaluationCache).
_ZERO_STATS = {"hits": 0, "misses": 0, "deduped": 0, "evictions": 0}


class GAWindowSolver(WindowSolver):
    """The multi-objective / scalarized genetic algorithm (§3.2.2, §4.3).

    Parameters
    ----------
    generations, population, mutation:
        GA parameters ``G``, ``P``, ``p_m`` (§4.3 defaults: 500, 20, 0.05%).
    selection:
        MOO survival scheme — ``"age"`` (paper) or ``"crowding"`` (ablation).
        Scalar solves always use fitness-elitist survival.
    eval_cache:
        Memoize GA objective evaluations (byte-identical results, see
        :mod:`repro.core.evalcache`); ``False`` is the reference path.
    fast_repair:
        Opt into the vectorized (RNG-order-changing) repair mode.
    """

    name = "ga"
    exact = False

    def __init__(
        self,
        *,
        generations: int = DEFAULT_GENERATIONS,
        population: int = DEFAULT_POPULATION,
        mutation: float = DEFAULT_MUTATION,
        selection: str = "age",
        eval_cache: bool = True,
        fast_repair: bool = False,
    ) -> None:
        self.generations = generations
        self.population = population
        self.mutation = mutation
        self.selection = selection
        self.eval_cache = eval_cache
        self.fast_repair = fast_repair
        # One long-lived MOO solver: its eval cache persists across passes,
        # which is where the memoization speedup comes from.
        self.moga = MOGASolver(
            generations=generations,
            population=population,
            mutation=mutation,
            selection=selection,
            seed=None,
            eval_cache=eval_cache,
            fast_repair=fast_repair,
        )
        # Scalar solves use throwaway solvers; their counters accumulate here.
        self._scalar_stats = dict(_ZERO_STATS)

    def solve(self, problem, seed: SeedLike = None) -> ParetoSet:
        return self.moga.solve(problem, seed=seed)

    def solve_scalar(
        self, problem, coeffs: Sequence[float], seed: SeedLike = None
    ) -> ScalarSolution:
        solver = ScalarGASolver(
            coeffs,
            seed=None,
            generations=self.generations,
            population=self.population,
            mutation=self.mutation,
            eval_cache=self.eval_cache,
            fast_repair=self.fast_repair,
        )
        best = solver.best(problem, seed=seed)
        stats = solver.eval_cache_stats
        if stats:
            for key in self._scalar_stats:
                self._scalar_stats[key] += stats[key]
        return best

    @property
    def eval_cache_stats(self) -> Optional[dict]:
        """Combined MOO + scalar cache counters, or ``None`` when disabled."""
        if not self.eval_cache:
            return None
        moga = self.moga.eval_cache_stats or _ZERO_STATS
        return {key: moga[key] + self._scalar_stats[key] for key in _ZERO_STATS}


class ScalarGAWindowSolver(GAWindowSolver):
    """Per-objective scalar GAs whose union of bests approximates the front.

    One unit-coefficient :meth:`solve_scalar` per objective, culled to the
    nondominated subset.  A front of at most ``n_objectives`` points — the
    §2.3 single-resource viewpoints side by side — useful as a fast, weak
    baseline for the front-quality comparisons in ``docs/solvers.md``.
    """

    name = "scalar"
    exact = False

    def solve(self, problem, seed: SeedLike = None) -> ParetoSet:
        genes_rows = []
        objective_rows = []
        for j in range(problem.n_objectives):
            coeffs = np.zeros(problem.n_objectives)
            coeffs[j] = 1.0
            best = self.solve_scalar(problem, coeffs, seed=seed)
            genes_rows.append(np.asarray(best.genes, dtype=np.uint8))
            objective_rows.append(np.asarray(best.objectives, dtype=float))
        genes = np.vstack(genes_rows) if genes_rows else np.zeros((0, problem.w), np.uint8)
        objectives = (
            np.vstack(objective_rows)
            if objective_rows
            else np.zeros((0, problem.n_objectives))
        )
        keep = non_dominated_mask(objectives)
        genes, objectives = unique_front(genes[keep], objectives[keep])
        return ParetoSet(genes=genes, objectives=objectives)
