"""Exact MILP window selection: knapsack-style 0/1 programs past 2^w.

The §3.2.1 window-selection problem over a :class:`SelectionProblem` is a
pure 0/1 linear program: genes ``x ∈ {0,1}^w``, objectives
``F(x) = xᵀ·demands`` and capacity rows ``xᵀ·demands ≤ capacities``, with
forced genes (§3.1 starvation bound) pinned to 1.  That makes two exact
questions tractable far beyond :mod:`repro.core.exhaustive`'s 2^w wall:

* **scalar optimum** (:meth:`MILPWindowSolver.solve_scalar`) — one
  mixed-integer solve of ``max coeffs·F(x)``;
* **true Pareto front** (:meth:`MILPWindowSolver.solve`, two objectives) —
  an ε-constraint sweep: repeatedly maximize ``f1`` under a descending
  cap, then maximize ``f2`` at that exact ``f1`` level.  Node demands are
  integral, so "exact level" is the box ``a − 0.5 ≤ f1 ≤ ub₁`` — no float
  equality constraints.  A level enters the front iff its ``f2`` strictly
  improves on all higher-``f1`` levels, which is precisely
  :func:`repro.core.pareto.pareto_front_2d`'s membership rule.

Two interchangeable backends solve the underlying 0/1 programs:

* ``scipy`` — :func:`scipy.optimize.milp` (HiGHS), run at
  ``mip_rel_gap=0`` so answers are exact, with every result re-verified
  against ``problem.feasible``'s 1e-9 tolerance (HiGHS works at ~1e-6);
* ``python`` — a dependency-free branch-and-bound over the same row form,
  with fractional-knapsack objective bounds, so the solver works when
  scipy is absent (scipy ships in the optional ``repro[milp]`` extra).

``backend="auto"`` (default) prefers scipy and silently falls back; any
scipy result that fails re-verification is re-solved in pure Python
rather than trusted.  The §5 SSD problem is *not* representable here (its
waste objective and feasibility come from an order-dependent greedy tier
sweep, not a linear form) — :meth:`supports` reports ``False`` and the
solver refuses with a clear error instead of answering a different
problem.
"""

from __future__ import annotations

import contextlib
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from ..core.ga import ParetoSet
from ..core.problem import MOOProblem, SelectionProblem
from ..core.scalar import ScalarSolution
from ..errors import ConfigurationError, SolverError
from ..rng import SeedLike
from .base import WindowSolver

#: Feasibility tolerance, matching ``SelectionProblem.feasible``.
_TOL = 1e-9
_INF = float("inf")

_UNSET = object()
_scipy_cache = _UNSET


def _load_scipy_milp():
    """The ``(milp, LinearConstraint, Bounds)`` triple, or None.

    Memoized import so availability is probed once per process; tests
    monkeypatch this function to exercise the no-scipy path.
    """
    global _scipy_cache
    if _scipy_cache is _UNSET:
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
        except Exception:
            _scipy_cache = None
        else:
            _scipy_cache = (milp, LinearConstraint, Bounds)
    return _scipy_cache


class _BackendFailure(Exception):
    """A scipy solve came back unusable (odd status / tolerance breach)."""


@contextlib.contextmanager
def _quiet_fd1():
    """Silence C-level stdout for the duration of a HiGHS solve.

    The HiGHS build bundled with scipy prints a stray debug line
    (``transformNewIntegerFeasibleSolution``) straight to fd 1 on some
    instances, bypassing ``disp=False``.  That would corrupt any CLI
    output being diffed (e.g. the durability workflow), so the fd is
    parked on /dev/null around the solve.  Best-effort: environments
    without dup-able descriptors just run unsilenced.
    """
    try:
        saved = os.dup(1)
        devnull = os.open(os.devnull, os.O_WRONLY)
    except OSError:
        yield
        return
    try:
        sys.stdout.flush()
        os.dup2(devnull, 1)
        yield
    finally:
        os.dup2(saved, 1)
        os.close(saved)
        os.close(devnull)


def _scipy_solve(
    spec,
    values: np.ndarray,
    rows: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    forced: Sequence[int],
    w: int,
) -> Optional[np.ndarray]:
    """One 0/1 program via scipy/HiGHS; None when provably infeasible."""
    milp, LinearConstraint, Bounds = spec
    lo = np.zeros(w)
    if forced:
        lo[list(forced)] = 1.0
    with _quiet_fd1():
        res = milp(
            c=-values,  # milp minimizes; we maximize
            constraints=[LinearConstraint(rows, lb, ub)] if rows.size else [],
            integrality=np.ones(w),
            bounds=Bounds(lo, np.ones(w)),
            # HiGHS's default 1e-4 relative gap would break exactness.
            options={"mip_rel_gap": 0.0},
        )
    if res.status == 2:  # proven infeasible
        return None
    if res.status != 0 or res.x is None:
        raise _BackendFailure(f"scipy milp status {res.status}: {res.message}")
    genes = (res.x > 0.5).astype(np.uint8)
    if rows.size:
        act = rows @ genes.astype(float)
        if (act > ub + _TOL).any() or (act < lb - _TOL).any():
            # HiGHS tolerances are looser than the problem's 1e-9; a
            # rounded solution that leaks over a row is re-solved exactly.
            raise _BackendFailure("scipy solution violates a row at 1e-9")
    return genes


def _python_solve(
    values: np.ndarray,
    rows: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    forced: Sequence[int],
    w: int,
    node_budget: int,
) -> Optional[np.ndarray]:
    """Branch-and-bound for ``max values·x`` over ``lb ≤ rows·x ≤ ub``.

    All row coefficients are non-negative (demand matrices), which the
    pruning relies on: activities only grow as genes are taken, so an
    upper-bound row can be checked incrementally and a lower-bound row by
    suffix reachability.  The objective bound is a fractional knapsack on
    a surrogate aggregate row (each finite row normalized by its residual
    capacity at the root), explored in the same density order used for
    branching so the greedy prefix walk is the exact LP bound.

    Returns the gene vector of one optimum, or None when infeasible.
    """
    m = rows.shape[0]
    forced_vec = np.zeros(w)
    if forced:
        forced_vec[list(forced)] = 1.0
    act0v = rows @ forced_vec if m else np.zeros(0)
    if m and (act0v > ub + _TOL).any():
        return None
    base_value = float(values @ forced_vec)

    forced_mask = forced_vec.astype(bool)
    free = np.flatnonzero(~forced_mask)
    finite = [int(r) for r in np.flatnonzero(np.isfinite(ub))] if m else []
    lb_rows = [int(r) for r in np.flatnonzero(lb > -np.inf)] if m else []

    # Branch order: value density against a surrogate aggregate weight
    # (each finite row normalized by its residual capacity at the root).
    if finite:
        residual0 = np.maximum(ub[finite] - act0v[finite], 1e-12)
        agg_w = (rows[finite] / residual0[:, None]).sum(axis=0)
    else:
        residual0 = np.zeros(0)
        agg_w = np.zeros(w)
    density = values / np.maximum(agg_w, 1e-12)
    # High density first; index tiebreak keeps runs deterministic.
    order = free[np.lexsort((free, -density[free]))]
    n = order.size

    # Hot-path data in plain lists: the search below is pure-Python
    # recursion and float work, and numpy scalar indexing would dominate.
    vals = [float(v) for v in values[order]]
    pos = [v if v > 0.0 else 0.0 for v in vals]
    ordered_w = [float(v) for v in agg_w[order]]
    cols = [[float(rows[r, item]) for r in range(m)] for item in order]
    ub_l = [float(v) for v in ub]
    lb_l = [float(v) for v in lb]
    suffix_pos = [0.0] * (n + 1)
    suffix_zero = [0.0] * (n + 1)
    for j in range(n - 1, -1, -1):
        suffix_pos[j] = suffix_pos[j + 1] + pos[j]
        suffix_zero[j] = suffix_zero[j + 1] + (
            pos[j] if ordered_w[j] <= 1e-12 else 0.0
        )
    # Suffix row sums: can a lower-bound row still be reached from here?
    suffix_rows = []
    for r in lb_rows:
        srow = [0.0] * (n + 1)
        for j in range(n - 1, -1, -1):
            srow[j] = srow[j + 1] + cols[j][r]
        suffix_rows.append((r, srow))
    # Per-row fractional-knapsack orders: each finite row alone is a
    # relaxation of the program, so min over rows is a valid — and much
    # tighter — objective bound than the aggregate surrogate.
    row_bounds = []
    for r in finite:
        wr = np.array([cols[j][r] for j in range(n)])
        dens = np.array(pos) / np.maximum(wr, 1e-12)
        row_order = [int(j) for j in np.lexsort((np.arange(n), -dens))]
        row_bounds.append((r, row_order, [float(v) for v in wr]))
    # Bitset reachability for *integral* lower-bounded rows (the sweep's
    # exact-level box): bit s of reach[i] is set iff the open items j ≥ i
    # can sum to exactly s on that row.  One big-int AND per node then
    # prunes every subtree that cannot land inside [lb, ub].
    bit_rows = []
    for r in lb_rows:
        coeffs = np.array([cols[j][r] for j in range(n)])
        if not np.allclose(coeffs, np.round(coeffs)):
            continue
        ints = [int(round(c)) for c in coeffs]
        reach = [0] * (n + 1)
        reach[n] = 1
        for j in range(n - 1, -1, -1):
            reach[j] = reach[j + 1] | (reach[j + 1] << ints[j])
        bit_rows.append((r, reach))
    # Exact-total suffix DP for a width-1 integral box row (the level
    # programs of the ε-constraint sweep): box_dp[i][s] bounds the value
    # collectable from open items i.. whose box-row coefficients sum to
    # exactly s.  Infinitely tighter than a fractional knapsack — it is
    # exact whenever the other capacity rows are slack — and it prices
    # every node total, so box programs prune to near-nothing.
    box_dp = None
    box_row = -1
    box_target = 0
    for r, _ in bit_rows:
        if ub_l[r] == _INF:
            continue
        target = int(ub_l[r] + _TOL)
        if target < 0 or target != int(-(-(lb_l[r] - _TOL) // 1)):
            continue
        base = int(round(act0v[r])) if m else 0
        rem0 = target - base
        if rem0 < 0:
            return None
        ints = [int(round(cols[j][r])) for j in range(n)]
        dp = np.full((n + 1, rem0 + 1), -np.inf)
        dp[n, 0] = 0.0
        for j in range(n - 1, -1, -1):
            dp[j] = dp[j + 1]
            c = ints[j]
            if c == 0:
                dp[j] += pos[j]
            elif c <= rem0:
                cand = dp[j + 1][: rem0 + 1 - c] + pos[j]
                view = dp[j][c:]
                np.maximum(view, cand, out=view)
        box_dp = dp.tolist()
        box_row = r
        box_target = target
        break

    best_value = -np.inf
    best_take: Optional[list] = None
    take = [0] * n

    def leaf_feasible(act: list) -> bool:
        return all(act[r] >= lb_l[r] - _TOL for r in lb_rows)

    # Greedy incumbent in branch order: a head start for the pruning.
    g_act = [float(a) for a in act0v]
    g_take = [0] * n
    g_val = base_value
    for i in range(n):
        col = cols[i]
        if all(g_act[r] + col[r] <= ub_l[r] + _TOL for r in range(m)):
            if vals[i] > 0.0 or (lb_rows and not leaf_feasible(g_act)):
                for r in range(m):
                    g_act[r] += col[r]
                g_val += vals[i]
                g_take[i] = 1
    if leaf_feasible(g_act):
        best_value, best_take = g_val, list(g_take)

    def bound(i: int, act: list, cur: float) -> float:
        best = cur + suffix_pos[i]
        for r, row_order, weights in row_bounds:
            cap_r = ub_l[r] - act[r]
            total = cur
            for j in row_order:
                if j < i or pos[j] == 0.0:
                    continue
                wgt = weights[j]
                if wgt <= 1e-12:
                    total += pos[j]
                elif wgt <= cap_r:
                    cap_r -= wgt
                    total += pos[j]
                else:
                    total += pos[j] * (cap_r / wgt)
                    break
            if total < best:
                best = total
                if best <= best_value + 1e-12:
                    return best
        if finite:
            # Aggregate surrogate: occasionally tighter when rows interact.
            cap = 0.0
            for k, r in enumerate(finite):
                ratio = (ub_l[r] - act[r]) / residual0[k]
                cap += 1.0 if ratio > 1.0 else (ratio if ratio > 0.0 else 0.0)
            total = cur
            for j in range(i, n):
                v = pos[j]
                if v == 0.0:
                    continue
                wgt = ordered_w[j]
                if wgt <= 1e-12:
                    total += v
                elif wgt <= cap:
                    cap -= wgt
                    total += v
                else:
                    total += v * (cap / wgt)
                    total += suffix_zero[j + 1]
                    break
            if total < best:
                best = total
        return best

    nodes = 0
    sys.setrecursionlimit(max(sys.getrecursionlimit(), n + 200))

    def rec(i: int, act: list, cur: float) -> None:
        nonlocal best_value, best_take, nodes
        nodes += 1
        if nodes > node_budget:
            raise SolverError(
                f"branch-and-bound exceeded its {node_budget}-node budget "
                f"(w={w}); loosen the instance or install scipy "
                "(pip install 'repro[milp]')"
            )
        for r, srow in suffix_rows:
            if act[r] + srow[i] < lb_l[r] - _TOL:
                return
        for r, reach in bit_rows:
            lo = lb_l[r] - act[r] - _TOL
            lo_i = 0 if lo <= 0 else int(-(-lo // 1))
            hi = ub_l[r] - act[r] + _TOL
            if hi == _INF:
                if not reach[i] >> lo_i:
                    return
                continue
            hi_i = int(hi // 1)
            if hi_i < lo_i or not (reach[i] >> lo_i) & ((1 << (hi_i - lo_i + 1)) - 1):
                return
        if box_dp is not None:
            rem = box_target - int(act[box_row] + 0.5)
            if rem < 0:
                return
            cap_val = box_dp[i][rem]
            if cap_val == -_INF:
                return
            if best_take is not None and cur + cap_val <= best_value + 1e-12:
                return
        if best_take is not None and bound(i, act, cur) <= best_value + 1e-12:
            return
        if i == n:
            if leaf_feasible(act) and cur > best_value:
                best_value, best_take = cur, list(take)
            return
        col = cols[i]
        if all(act[r] + col[r] <= ub_l[r] + _TOL for r in range(m)):
            take[i] = 1
            rec(i + 1, [act[r] + col[r] for r in range(m)], cur + vals[i])
            take[i] = 0
        rec(i + 1, act, cur)

    rec(0, [float(a) for a in act0v], base_value)
    if best_take is None:
        return None
    genes = forced_mask.astype(np.uint8)
    if n:
        genes[order] = np.array(best_take, dtype=np.uint8)
    if forced:
        genes[list(forced)] = 1
    return genes


class _LevelTables:
    """Knapsack DPs over integral node totals for the ε-constraint sweep.

    Phase 1 of the classic sweep (max f1 under a descending cap) is a
    subset-sum — its objective coincides with its own integral constraint
    row — which is the worst case for branch-and-bound and the best case
    for a DP.  Two DPs over node totals ``t ≤ cap_node`` replace it:

    * ``minbb[t]`` — the minimum burst-buffer sum of a selection with
      node total exactly ``t``; the total is an achievable front *level*
      iff ``minbb[t] ≤ cap_bb``.
    * ``maxbb[t]`` — the maximum burst-buffer sum at total ``t``
      *ignoring* the BB cap: an upper bound on phase 2's answer, so a
      level whose bound cannot beat the running front is skipped in O(1),
      and a level whose bound is comfortably under the cap is solved by
      DP reconstruction with no branch-and-bound at all.

    Zero-node jobs never move a level; their BB rides on top of ``maxbb``
    (they are all taken in the unconstrained optimum) and never into
    ``minbb``.
    """

    def __init__(
        self,
        n_int: np.ndarray,
        bb: np.ndarray,
        cap_node: float,
        cap_bb: float,
        forced: Sequence[int],
    ) -> None:
        self.w = int(n_int.size)
        self.cap = int(min(float(cap_node), float(n_int.sum())) + _TOL)
        forced_set = set(int(i) for i in forced)
        self.forced = forced_set
        base_t = int(sum(int(n_int[i]) for i in forced_set))
        base_b = float(sum(float(bb[i]) for i in forced_set))
        free = [i for i in range(self.w) if i not in forced_set]
        if self.cap < 0 or base_t > self.cap or base_b > cap_bb + _TOL:
            self.levels = np.zeros(0, dtype=np.int64)
            self.maxbb = np.zeros(0)
            self._table = None
            self._items = []
            self._zero_items = []
            return
        #: Free items that can move the node total (0 < step ≤ cap).
        self._items = [
            (i, int(n_int[i]), float(bb[i]))
            for i in free
            if 0 < int(n_int[i]) <= self.cap
        ]
        self._zero_items = [i for i in free if int(n_int[i]) == 0]
        zero_bb = float(sum(float(bb[i]) for i in self._zero_items))

        minbb = np.full(self.cap + 1, np.inf)
        minbb[base_t] = base_b
        # Full max-DP table kept for reconstruction: row k is the optimum
        # over the first k items.
        table = np.full((len(self._items) + 1, self.cap + 1), -np.inf)
        table[0, base_t] = base_b
        for k, (_, step, b) in enumerate(self._items):
            # RHS slices are materialized before assignment, so each item
            # is used at most once (0/1 semantics).
            minbb[step:] = np.minimum(minbb[step:], minbb[:-step] + b)
            table[k + 1] = table[k]
            cand = table[k, :-step] + b
            view = table[k + 1, step:]
            upd = cand > view
            view[upd] = cand[upd]
        self.levels = np.flatnonzero(minbb <= cap_bb + _TOL)[::-1].astype(np.int64)
        self.maxbb = table[-1] + zero_bb
        self._table = table

    def reconstruct(self, level: int) -> np.ndarray:
        """Genes of the BB-cap-free optimum at ``level`` (plus forced)."""
        genes = np.zeros(self.w, dtype=np.uint8)
        for i in self.forced:
            genes[i] = 1
        t = int(level)
        table = self._table
        for k in range(len(self._items) - 1, -1, -1):
            i, step, _ = self._items[k]
            if t >= step and table[k + 1, t] > table[k, t]:
                genes[i] = 1
                t -= step
        for i in self._zero_items:
            genes[i] = 1
        return genes


class MILPWindowSolver(WindowSolver):
    """Exact 0/1-program window solver (scipy HiGHS or pure-Python B&B).

    Parameters
    ----------
    backend:
        ``"auto"`` (scipy when installed, else pure Python), ``"scipy"``
        (raise :class:`ConfigurationError` when scipy is missing), or
        ``"python"`` (always the built-in branch-and-bound).
    max_solves:
        Cap on phase-2 0/1 programs per ε-constraint front sweep (levels
        answered by the DP skip/reconstruct fast paths are free), so
        degenerate instances fail loudly instead of spinning.
    node_budget:
        Branch-and-bound node cap per 0/1 program (python backend).
    """

    name = "milp"
    exact = True

    def __init__(
        self,
        backend: str = "auto",
        *,
        max_solves: int = 10_000,
        node_budget: int = 2_000_000,
    ) -> None:
        if backend not in ("auto", "scipy", "python"):
            raise ConfigurationError(
                f"backend must be auto, scipy, or python, got {backend!r}"
            )
        self.backend = backend
        self.max_solves = max_solves
        self.node_budget = node_budget
        #: Per-instance counters: programs solved per backend, plus how
        #: often a scipy answer had to be re-solved in pure Python.
        self.stats = {"solves": 0, "scipy": 0, "python": 0, "scipy_fallbacks": 0}

    def supports(self, problem: MOOProblem) -> bool:
        # SSDSelectionProblem (§5) is NOT linear: its waste objective and
        # feasibility come from an order-dependent greedy tier sweep.
        return isinstance(problem, SelectionProblem)

    def _require_support(self, problem: MOOProblem) -> SelectionProblem:
        if not self.supports(problem):
            raise SolverError(
                f"MILP solver cannot represent {type(problem).__name__}: only "
                "linear SelectionProblem formulations are exactly expressible "
                "(the §5 SSD waste objective is a greedy sweep, not a linear "
                "form); use the GA or exhaustive solver for it"
            )
        return problem

    def _resolve_backend(self) -> str:
        if self.backend == "python":
            return "python"
        spec = _load_scipy_milp()
        if self.backend == "scipy":
            if spec is None:
                raise ConfigurationError(
                    "MILP backend 'scipy' requested but scipy is not "
                    "installed; pip install 'repro[milp]' or use "
                    "backend='python'"
                )
            return "scipy"
        return "scipy" if spec is not None else "python"

    def _solve_binary(
        self,
        values: np.ndarray,
        rows: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        forced: Sequence[int],
        w: int,
        prefer: Optional[str] = None,
        node_budget: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """One 0/1 program; returns an optimal gene vector or None.

        ``prefer="python"`` is set for the exact-node-total *box* programs
        of the level decomposition: their integral lower-bounded row turns
        on the branch-and-bound's bitset reachability prune, which beats
        HiGHS on them by orders of magnitude.  The configured backend
        still governs general free programs and serves as the fallback
        when a preferred solve exhausts its node budget.
        """
        self.stats["solves"] += 1
        budget = self.node_budget if node_budget is None else node_budget
        if w == 0:
            # rows is (m, 0): every activity is 0, so each row needs
            # lb ≤ 0 ≤ ub (empty arrays pass vacuously).
            ok = bool((lb <= _TOL).all() and (ub >= -_TOL).all())
            return np.zeros(0, dtype=np.uint8) if ok else None
        backend = self._resolve_backend()
        if prefer == "python" and backend == "scipy":
            try:
                genes = _python_solve(values, rows, lb, ub, forced, w, budget)
                self.stats["python"] += 1
                return genes
            except SolverError:
                pass  # node budget exhausted: hand the program to HiGHS
        if backend == "scipy":
            try:
                genes = _scipy_solve(_load_scipy_milp(), values, rows, lb, ub, forced, w)
                self.stats["scipy"] += 1
                return genes
            except _BackendFailure:
                self.stats["scipy_fallbacks"] += 1
        self.stats["python"] += 1
        return _python_solve(values, rows, lb, ub, forced, w, budget)

    def solve_scalar(
        self, problem: MOOProblem, coeffs: Sequence[float], seed: SeedLike = None
    ) -> ScalarSolution:
        """Exact ``max coeffs·F(x)``; ``seed`` accepted and ignored."""
        problem = self._require_support(problem)
        # Resolve up front so backend="scipy" without scipy fails loudly
        # even when the DP fast paths could answer without a 0/1 program.
        self._resolve_backend()
        coeffs = np.asarray(coeffs, dtype=float)
        if coeffs.shape != (problem.n_objectives,):
            raise SolverError(
                f"coeffs must have shape ({problem.n_objectives},), "
                f"got {coeffs.shape}"
            )
        if problem.n_objectives == 2 and coeffs[1] >= 0.0 and problem.w > 0:
            d1 = problem.demands[:, 0]
            if np.allclose(d1, np.round(d1)):
                # Decompose over node totals: correlated two-cap knapsacks
                # are the branch-and-bound worst case as one free program,
                # but per-level they collapse to DP lookups or tightly
                # boxed subproblems.
                return self._scalar_by_levels(problem, coeffs)
        values = problem.demands @ coeffs
        rows = problem.demands.T
        lb = np.full(problem.n_objectives, -np.inf)
        ub = problem.capacities.astype(float)
        genes = self._solve_binary(values, rows, lb, ub, problem.forced, problem.w)
        if genes is None:
            raise SolverError("selection problem is infeasible (forced rows?)")
        objectives = problem.evaluate(genes[None, :])[0]
        return ScalarSolution(
            genes=genes,
            objectives=objectives,
            fitness=float(objectives @ coeffs),
        )

    def _scalar_by_levels(
        self,
        problem: SelectionProblem,
        coeffs: np.ndarray,
        tables: Optional["_LevelTables"] = None,
    ) -> ScalarSolution:
        """``max c1·f1 + c2·f2`` via the node-total decomposition.

        For ``c2 ≥ 0`` the optimum restricted to node total ``t`` is
        attained by a max-``f2`` selection at ``t``, so the global optimum
        is ``max over achievable t of (c1·t + c2·phase2(t))``.  Levels are
        visited in descending order of the DP upper bound
        ``c1·t + c2·min(maxbb[t], cap_bb)`` and the search stops as soon
        as the bound drops below the incumbent — usually after one or two
        levels.
        """
        d1 = problem.demands[:, 0]
        d2 = problem.demands[:, 1]
        cap_ub = problem.capacities.astype(float)
        cap_bb = float(cap_ub[1])
        if tables is None:
            tables = _LevelTables(
                np.round(d1).astype(np.int64), d2, cap_ub[0], cap_bb, problem.forced
            )
        if tables.levels.size == 0:
            raise SolverError("selection problem is infeasible (forced rows?)")
        levels = tables.levels
        bounds = coeffs[0] * levels + coeffs[1] * np.minimum(
            tables.maxbb[levels], cap_bb
        )
        visit = np.argsort(-bounds, kind="stable")
        rows = np.vstack([problem.demands.T, d1])
        best_val = -np.inf
        best_genes: Optional[np.ndarray] = None
        best_obj: Optional[np.ndarray] = None
        solves = 0
        for idx in visit:
            # 1e-9 margin: the DP bound and problem.evaluate sum floats in
            # different orders, so only a clear shortfall is conclusive.
            if bounds[idx] <= best_val - 1e-9 and best_genes is not None:
                break
            level = int(levels[idx])
            if tables.maxbb[level] <= cap_bb - 1e-6:
                sol = tables.reconstruct(level)
            else:
                solves += 1
                if solves > self.max_solves:
                    raise SolverError(
                        f"scalar level search exceeded max_solves="
                        f"{self.max_solves} programs (w={problem.w})"
                    )
                lo = np.array([-np.inf, -np.inf, float(level) - 0.5])
                hi = np.append(cap_ub, float(level) + 0.5)
                sol = self._solve_binary(
                    d2, rows, lo, hi, problem.forced, problem.w, prefer="python"
                )
                if sol is None:  # cannot happen: the DP proved it feasible
                    raise SolverError("scalar level program infeasible (solver bug)")
            objectives = problem.evaluate(sol[None, :])[0]
            val = float(objectives @ coeffs)
            if val > best_val:
                best_val, best_genes, best_obj = val, sol, objectives
        return ScalarSolution(genes=best_genes, objectives=best_obj, fitness=best_val)

    def solve(self, problem: MOOProblem, seed: SeedLike = None) -> ParetoSet:
        """The exact Pareto front via an ε-constraint sweep (2 objectives).

        ``seed`` is accepted and ignored (deterministic; never touches the
        RNG stream, so a MILP yardstick beside a GA run cannot perturb it).
        """
        problem = self._require_support(problem)
        self._resolve_backend()  # fail fast on backend="scipy" without scipy
        if problem.n_objectives != 2:
            raise SolverError(
                "the ε-constraint front sweep handles exactly 2 objectives, "
                f"got {problem.n_objectives}; use solve_scalar for a single "
                "scalarization"
            )
        if problem.w == 0:
            return ParetoSet(
                genes=np.zeros((0, 0), dtype=np.uint8),
                objectives=np.zeros((0, 2)),
            )
        d1 = problem.demands[:, 0]
        d2 = problem.demands[:, 1]
        if not np.allclose(d1, np.round(d1)):
            raise SolverError(
                "ε-constraint sweep requires integral first-objective demands "
                "(node counts); got fractional values"
            )
        cap_ub = problem.capacities.astype(float)
        cap_bb = float(cap_ub[1])
        tables = _LevelTables(
            np.round(d1).astype(np.int64), d2, cap_ub[0], cap_bb, problem.forced
        )
        rows = np.vstack([problem.demands.T, d1])
        genes_rows: List[np.ndarray] = []
        objective_rows: List[np.ndarray] = []
        best2 = -np.inf
        # Global max-f2 pre-solve: once the sweep's running best f2
        # reaches this, every remaining (lower-f1) level is dominated and
        # the sweep stops.  Without it, tight-cap instances grind through
        # hundreds of levels below the front's last point.
        f2_star = np.inf  # ∞ = unknown: the break below simply never fires
        try:
            star = self._solve_binary(
                d2,
                problem.demands.T,
                np.full(2, -np.inf),
                cap_ub,
                problem.forced,
                problem.w,
                node_budget=min(self.node_budget, 200_000),
            )
        except SolverError:
            # The pure-Python B&B can time out on this free program
            # (maximizing f2 against its own constraint row is a
            # subset-sum); the sweep is still exact without the break.
            star = None
        else:
            if star is not None:
                f2_star = float(problem.evaluate(star[None, :])[0][1])
        solves = 0
        for level in tables.levels:
            if best2 >= f2_star:
                break
            # Upper bound from the cap-free DP: a level that cannot beat
            # the running best f2 is not a front point; skip it.  The
            # 1e-9 margin keeps the skip conservative against the DP's
            # different float summation order.
            bb_bound = float(tables.maxbb[level])
            if bb_bound <= best2 - 1e-9:
                continue
            if bb_bound <= cap_bb - 1e-6:
                # The BB cap is slack at this level: the cap-free DP
                # optimum is the exact phase-2 answer.
                sol = tables.reconstruct(int(level))
            else:
                solves += 1
                if solves > self.max_solves:
                    raise SolverError(
                        f"ε-constraint sweep exceeded max_solves="
                        f"{self.max_solves} phase-2 programs (w={problem.w}); "
                        "raise max_solves or use solve_scalar"
                    )
                # Phase 2: max f2 at exactly this node total.  Node
                # demands are integral, so "f1 = level" is the box
                # [level ± 0.5] — no float equality constraint needed.
                lo = np.array([-np.inf, -np.inf, float(level) - 0.5])
                hi = np.append(cap_ub, float(level) + 0.5)
                sol = self._solve_binary(
                    d2, rows, lo, hi, problem.forced, problem.w, prefer="python"
                )
                if sol is None:  # cannot happen: the DP proved it feasible
                    raise SolverError("ε-constraint phase 2 infeasible (solver bug)")
            objectives = problem.evaluate(sol[None, :])[0]
            # pareto_front_2d membership: strictly better f2 than every
            # higher-f1 level.
            if objectives[1] > best2:
                genes_rows.append(sol)
                objective_rows.append(objectives)
                best2 = objectives[1]
        if not genes_rows:
            raise SolverError("no feasible selection exists (not even the empty one)")
        return ParetoSet(
            genes=np.vstack(genes_rows).astype(np.uint8),
            objectives=np.vstack(objective_rows),
        )
