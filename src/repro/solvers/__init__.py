"""Interchangeable window-selection solvers (the §3.2 optimization core).

The :class:`~repro.solvers.base.WindowSolver` protocol decouples *what*
is being optimized (the selectors' problem formulations) from *how*
(GA, exact MILP, exhaustive enumeration, …).  See ``docs/solvers.md``
for the solver matrix and the optimality-gap methodology.
"""

from .base import WindowSolver
from .exhaustive import ExhaustiveWindowSolver
from .ga import GAWindowSolver, ScalarGAWindowSolver
from .gap import OptimalityYardstick
from .milp import MILPWindowSolver
from .registry import (
    available_window_solvers,
    make_window_solver,
    register_window_solver,
    solver_matrix,
)

__all__ = [
    "WindowSolver",
    "GAWindowSolver",
    "ScalarGAWindowSolver",
    "ExhaustiveWindowSolver",
    "MILPWindowSolver",
    "OptimalityYardstick",
    "available_window_solvers",
    "make_window_solver",
    "register_window_solver",
    "solver_matrix",
]
