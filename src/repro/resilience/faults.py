"""Deterministic, seeded fault injection for the scheduling simulator.

Production systems lose compute nodes and burst-buffer capacity: Cori and
Theta (§4.1) both publish MTBF figures, and follow-up work (ROME; plan-based
scheduling with shared burst buffers) treats resource volatility as a
first-class scheduling concern.  This module generates the *fault process*
the engine replays alongside the job trace:

* **node failures** — a Poisson process at rate ``1 / node_mtbf`` takes
  ``nodes_per_failure`` nodes of one SSD tier offline; each failure draws a
  lognormal repair time (median ``node_mttr``) after which the nodes rejoin;
* **burst-buffer degradation** — a Poisson process at rate ``1 / bb_mtbf``
  takes a fraction of the schedulable BB capacity offline until repaired;
* **job failures** — a Poisson process at rate ``1 / job_mtbf`` aborts one
  uniformly chosen running job (software crash, not a node loss).

Every stream derives from one scenario seed via
:func:`repro.rng.split_rng`, and each fault kind draws from its own child
stream, so the node-failure schedule is identical whether or not BB or job
faults are enabled — scenarios compose without perturbing each other.
All distributions come from :mod:`repro.workloads.distributions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ResilienceError
from ..rng import split_rng
from ..workloads.distributions import exponential_interarrivals, truncated_lognormal

#: Stream-splitting salt so fault streams never collide with workload ones.
_FAULT_SALT = 0xFA117


@dataclass(frozen=True)
class NodeFailure:
    """One node-failure incident: ``count`` nodes of ``tier`` go down at
    ``time`` and are repaired ``repair`` seconds later."""

    time: float
    count: int
    tier: float
    repair: float


@dataclass(frozen=True)
class BBDegrade:
    """One burst-buffer incident: ``amount`` GB offline for ``repair`` s."""

    time: float
    amount: float
    repair: float


@dataclass(frozen=True)
class FaultScenario:
    """Knobs of the fault model.  All rates are *mean times between
    failures* in simulated seconds; a zero MTBF disables that fault kind,
    so the default scenario injects nothing.

    Parameters
    ----------
    seed:
        Root seed of every fault stream (same seed → identical stream).
    node_mtbf / node_mttr:
        Mean time between node-failure incidents, and the *median* repair
        time (repairs are lognormal with spread ``mttr_sigma``).
    nodes_per_failure:
        Nodes taken down per incident (a blade/chassis, not a whole rack).
    bb_mtbf / bb_mttr / bb_degrade_fraction:
        Burst-buffer incident rate, median repair time, and the fraction of
        schedulable BB capacity each incident takes offline.
    job_mtbf:
        Mean time between spontaneous job aborts (independent of node
        failures).
    """

    seed: int = 0
    node_mtbf: float = 0.0
    node_mttr: float = 4 * 3600.0
    mttr_sigma: float = 0.5
    nodes_per_failure: int = 1
    bb_mtbf: float = 0.0
    bb_mttr: float = 2 * 3600.0
    bb_degrade_fraction: float = 0.1
    job_mtbf: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("node_mtbf", self.node_mtbf),
            ("node_mttr", self.node_mttr),
            ("bb_mtbf", self.bb_mtbf),
            ("bb_mttr", self.bb_mttr),
            ("job_mtbf", self.job_mtbf),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative, got {value}")
        if self.mttr_sigma <= 0:
            raise ConfigurationError(f"mttr_sigma must be positive, got {self.mttr_sigma}")
        if self.nodes_per_failure <= 0:
            raise ConfigurationError(
                f"nodes_per_failure must be positive, got {self.nodes_per_failure}"
            )
        if not 0.0 < self.bb_degrade_fraction <= 1.0:
            raise ConfigurationError(
                f"bb_degrade_fraction must be in (0, 1], got {self.bb_degrade_fraction}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault kind is active."""
        return self.node_mtbf > 0 or self.bb_mtbf > 0 or self.job_mtbf > 0


#: Named scenarios for CLI/experiment plumbing (MTBFs in simulated hours are
#: chosen for the laptop-scale synthetic traces, which span days, not months).
SCENARIOS: Dict[str, FaultScenario] = {
    "mild": FaultScenario(
        seed=0xBEEF, node_mtbf=12 * 3600.0, node_mttr=2 * 3600.0,
        nodes_per_failure=1, bb_mtbf=48 * 3600.0, bb_degrade_fraction=0.05,
    ),
    "harsh": FaultScenario(
        seed=0xBEEF, node_mtbf=2 * 3600.0, node_mttr=4 * 3600.0,
        nodes_per_failure=4, bb_mtbf=12 * 3600.0, bb_degrade_fraction=0.2,
        job_mtbf=6 * 3600.0,
    ),
}


def get_scenario(name: str) -> FaultScenario:
    """Look up a named scenario (for ``--faults`` CLI plumbing)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


class FaultInjector:
    """Regenerative fault-event source bound to one simulation run.

    The engine asks for the *next* incident of each kind as it processes the
    previous one, so the fault process extends as far as the run needs
    without a horizon guess.  Each kind draws from an independent child
    stream of the scenario seed: two injectors built from equal scenarios
    produce identical incident sequences (the seeded-determinism contract
    the tests pin down).
    """

    def __init__(self, scenario: FaultScenario) -> None:
        self.scenario = scenario
        node_rng, bb_rng, job_rng, victim_rng = split_rng(
            scenario.seed, 4, salt=_FAULT_SALT
        )
        self._node_rng = node_rng
        self._bb_rng = bb_rng
        self._job_rng = job_rng
        self._victim_rng = victim_rng
        self._tiers: Tuple[Tuple[float, int], ...] = ()
        self._bb_capacity = 0.0

    def bind(self, *, ssd_tiers: Dict[float, int], bb_capacity: float) -> None:
        """Attach the cluster's nominal shape (called by the engine).

        Tier node counts weight which tier an incident strikes; the nominal
        schedulable BB capacity scales ``bb_degrade_fraction``.
        """
        if not ssd_tiers:
            raise ResilienceError("FaultInjector needs at least one SSD tier")
        self._tiers = tuple(sorted(ssd_tiers.items()))
        self._bb_capacity = float(bb_capacity)

    def _require_bound(self) -> None:
        if not self._tiers:
            raise ResilienceError("FaultInjector.bind() must be called before drawing")

    def _repair(self, rng: np.random.Generator, mttr: float) -> float:
        return float(
            truncated_lognormal(
                rng, 1, mean=mttr, sigma=self.scenario.mttr_sigma,
                low=60.0, high=100.0 * mttr,
            )[0]
        )

    # --- incident streams -------------------------------------------------------
    def next_node_failure(self, now: float) -> Optional[NodeFailure]:
        """Draw the node-failure incident following time ``now`` (or None)."""
        sc = self.scenario
        if sc.node_mtbf <= 0:
            return None
        self._require_bound()
        gap = float(
            exponential_interarrivals(self._node_rng, 1, rate=1.0 / sc.node_mtbf)[0]
        )
        caps = np.array([c for c, _ in self._tiers])
        weights = np.array([n for _, n in self._tiers], dtype=float)
        tier = float(self._node_rng.choice(caps, p=weights / weights.sum()))
        repair = self._repair(self._node_rng, sc.node_mttr)
        return NodeFailure(
            time=now + gap, count=sc.nodes_per_failure, tier=tier, repair=repair
        )

    def next_bb_degrade(self, now: float) -> Optional[BBDegrade]:
        """Draw the burst-buffer incident following time ``now`` (or None)."""
        sc = self.scenario
        if sc.bb_mtbf <= 0 or self._bb_capacity <= 0:
            return None
        self._require_bound()
        gap = float(
            exponential_interarrivals(self._bb_rng, 1, rate=1.0 / sc.bb_mtbf)[0]
        )
        amount = sc.bb_degrade_fraction * self._bb_capacity
        repair = self._repair(self._bb_rng, sc.bb_mttr)
        return BBDegrade(time=now + gap, amount=amount, repair=repair)

    def next_job_fail(self, now: float) -> Optional[float]:
        """Draw the time of the next spontaneous job abort (or None)."""
        sc = self.scenario
        if sc.job_mtbf <= 0:
            return None
        gap = float(
            exponential_interarrivals(self._job_rng, 1, rate=1.0 / sc.job_mtbf)[0]
        )
        return now + gap

    # --- victim choice ----------------------------------------------------------
    def pick_victim(self, candidates: Sequence[int]) -> int:
        """Uniformly pick one of ``candidates`` (running job ids, sorted by
        the engine for determinism)."""
        if not candidates:
            raise ResilienceError("no running jobs to pick a victim from")
        return int(candidates[int(self._victim_rng.integers(len(candidates)))])
