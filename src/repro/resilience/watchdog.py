"""Wall-clock watchdog around a (possibly expensive) selection method.

The GA-backed selectors normally finish in milliseconds (§3.2.3), but a
pathological window — or a mis-tuned ``G``/``P`` — can stall a scheduling
pass, and a real scheduler cannot block its event loop on an optimizer.
:class:`SolverWatchdog` wraps any :class:`~repro.methods.base.Selector`
with a budget: the inner selector runs on a worker thread, and if it misses
its deadline the watchdog *degrades gracefully* to a cheap fallback (greedy
in-order by default, a tiny scalarized GA via :func:`scalar_fallback` if a
site prefers optimization over speed) instead of raising.  Every fallback
is recorded, and after ``trip_after`` consecutive timeouts the breaker
trips: the inner selector is bypassed entirely so stuck worker threads
cannot pile up.

With ``fallback=None`` the watchdog raises
:class:`~repro.errors.SolverTimeoutError` instead — the strict mode batch
tests use to prove the budget is actually enforced.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError, SolverTimeoutError
from ..methods.base import Selector, SystemCapacity
from ..simulator.cluster import Available
from ..simulator.job import Job
from ..telemetry import get_tracer

#: Sentinel distinguishing "use the default fallback" from "no fallback".
_DEFAULT = object()


class GreedyFallbackSelector(Selector):
    """Priority-order greedy packing: the cheapest sane selection.

    Walks the window in base-policy order and takes every job that still
    fits (unlike the blocking Baseline it skips non-fitting jobs, so one
    large blocked job cannot zero out a whole degraded-mode pass).
    """

    name = "Greedy_Fallback"

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        return self.greedy_in_order(window, avail, range(len(window)))


def scalar_fallback(**kw) -> Selector:
    """An equally weighted scalarized GA with a tiny budget.

    A middle ground between the full multi-objective solve and plain
    greedy: still optimization-driven, but cheap enough (G=10, P=8 by
    default) to fit comfortably inside a watchdog budget.
    """
    from ..methods.weighted import weighted_equal  # lazy: avoids import cycle

    kw.setdefault("generations", 10)
    kw.setdefault("population", 8)
    return weighted_equal(**kw)


@dataclass
class WatchdogStats:
    """Everything the watchdog observed across a run."""

    calls: int = 0                 #: total selection requests
    fallback_calls: int = 0        #: requests answered by the fallback
    timeouts: int = 0              #: inner-selector deadline misses
    tripped: bool = False          #: breaker open (inner selector bypassed)
    #: call indices (1-based) at which a fallback was used — the audit
    #: trail "recording every fallback" asks for.
    fallback_at: List[int] = field(default_factory=list)

    @property
    def fallback_rate(self) -> float:
        """Fraction of selection requests served by the fallback."""
        return self.fallback_calls / self.calls if self.calls else 0.0


class SolverWatchdog(Selector):
    """Budget-enforcing wrapper around another selector.

    Parameters
    ----------
    inner:
        The selector under guard (typically ``BBSchedSelector``).
    budget:
        Wall-clock seconds the inner selector may spend per call.
    fallback:
        Selector used on timeout.  Defaults to
        :class:`GreedyFallbackSelector`; pass ``None`` to raise
        :class:`~repro.errors.SolverTimeoutError` instead of degrading.
    trip_after:
        Consecutive timeouts after which the breaker opens and the inner
        selector is no longer invoked (bounds stuck-thread pile-up).
        ``None`` never trips.
    """

    def __init__(
        self,
        inner: Selector,
        budget: float,
        fallback: object = _DEFAULT,
        trip_after: Optional[int] = 3,
    ) -> None:
        super().__init__()
        if budget <= 0:
            raise ConfigurationError(f"watchdog budget must be positive, got {budget}")
        if trip_after is not None and trip_after <= 0:
            raise ConfigurationError(
                f"trip_after must be positive or None, got {trip_after}"
            )
        self.inner = inner
        self.budget = float(budget)
        self.fallback: Optional[Selector] = (
            GreedyFallbackSelector() if fallback is _DEFAULT else fallback  # type: ignore[assignment]
        )
        if self.fallback is not None and not isinstance(self.fallback, Selector):
            raise ConfigurationError(
                f"fallback must be a Selector or None, got {type(self.fallback)}"
            )
        self.trip_after = trip_after
        self.stats = WatchdogStats()
        self._consecutive_timeouts = 0
        self.name = f"{inner.name}+watchdog"

    # --- Selector interface -----------------------------------------------------
    def bind(self, system: SystemCapacity) -> None:
        super().bind(system)
        self.inner.bind(system)
        if self.fallback is not None:
            self.fallback.bind(system)

    @property
    def fallback_calls(self) -> int:
        """Number of selections answered by the fallback (engine-facing)."""
        return self.stats.fallback_calls

    @property
    def needs_releases(self) -> bool:  # type: ignore[override]
        """Forwarded from the inner selector, so the engine projects
        planned releases into the snapshot for a guarded plan-based run."""
        return bool(getattr(self.inner, "needs_releases", False))

    @property
    def yardstick(self):  # type: ignore[override]
        """Inner selector's optimality yardstick (engine-facing).

        Forwarding the yardstick itself lets the base class's
        ``optimality_gaps``/``yardstick_skipped`` views work unchanged.
        """
        return getattr(self.inner, "yardstick", None)

    @property
    def eval_cache_stats(self):
        """Inner selector's GA eval-cache counters (engine-facing).

        ``None`` when the inner selector has no cache (greedy methods) or
        caching is disabled; fallback selectors are cheap greedy/tiny-GA
        paths whose counters are not tracked.
        """
        return getattr(self.inner, "eval_cache_stats", None)

    def select(self, window: Sequence[Job], avail: Available) -> List[int]:
        self.stats.calls += 1
        if self.stats.tripped:
            return self._degrade(window, avail, reason="breaker_open")
        outcome = self._guarded_inner(window, avail)
        if outcome is None:  # deadline missed
            self.stats.timeouts += 1
            self._consecutive_timeouts += 1
            if (
                self.trip_after is not None
                and self._consecutive_timeouts >= self.trip_after
            ):
                self.stats.tripped = True
            return self._degrade(window, avail, reason="timeout")
        self._consecutive_timeouts = 0
        return outcome

    # --- internals ---------------------------------------------------------------
    def _guarded_inner(
        self, window: Sequence[Job], avail: Available
    ) -> Optional[List[int]]:
        """Run the inner selector with a deadline; None means timeout.

        The worker thread cannot be killed — on timeout it is left to
        finish as a daemon and its (late) result is discarded.  The breaker
        bounds how many such threads can ever accumulate.
        """
        box: dict = {}

        def work() -> None:
            try:
                box["result"] = self.inner.select(window, avail)
            except BaseException as exc:  # propagated to the caller below
                box["error"] = exc

        worker = threading.Thread(
            target=work, name=f"{self.inner.name}-select", daemon=True
        )
        worker.start()
        worker.join(self.budget)
        if worker.is_alive():
            return None
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _degrade(
        self, window: Sequence[Job], avail: Available, reason: str = "timeout"
    ) -> List[int]:
        if self.fallback is None:
            raise SolverTimeoutError(
                f"{self.inner.name} exceeded its {self.budget:g}s selection budget "
                f"and no fallback is configured"
            )
        self.stats.fallback_calls += 1
        self.stats.fallback_at.append(self.stats.calls)
        get_tracer().instant(
            "watchdog_fallback",
            reason=reason,
            call=self.stats.calls,
            window=len(window),
            budget=self.budget,
        )
        return self.fallback.select(window, avail)
