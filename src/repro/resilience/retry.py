"""Requeue policy for fault-killed jobs.

When a fault kills a running job the engine throws away its partial
execution and the :class:`RetryPolicy` decides what happens next: requeue
after an exponentially growing backoff, or give up and mark the job
:attr:`~repro.simulator.job.JobState.ABANDONED` once the attempt budget is
spent.  The backoff is the standard submit-side damping — after a node
incident, re-submitting every victim at the failure instant would slam the
scheduler with a correlated burst exactly when capacity is lowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .backoff import BackoffPolicy


@dataclass(frozen=True)
class RetryPolicy:
    """How killed jobs are retried.

    Parameters
    ----------
    max_attempts:
        Kills a job survives before it is abandoned (``attempts`` counts
        kills, so ``max_attempts=3`` allows three restarts after the first
        launch).  ``0`` abandons on the first kill.
    backoff:
        Requeue delay after the first kill, in seconds.
    backoff_factor:
        Multiplier applied per additional kill (exponential backoff).
    max_backoff:
        Upper clamp on the requeue delay.
    """

    max_attempts: int = 3
    backoff: float = 60.0
    backoff_factor: float = 2.0
    max_backoff: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigurationError(
                f"max_attempts must be non-negative, got {self.max_attempts}"
            )
        # Delegating to the shared schedule also validates the knobs
        # (non-negative initial, factor >= 1, clamp >= initial).
        object.__setattr__(self, "_schedule", BackoffPolicy(
            initial=self.backoff, factor=self.backoff_factor,
            max_delay=self.max_backoff,
        ))

    def should_retry(self, attempts: int) -> bool:
        """May a job that has been killed ``attempts`` times run again?"""
        return attempts <= self.max_attempts

    def requeue_delay(self, attempts: int) -> float:
        """Backoff before the ``attempts``-th requeue (``attempts >= 1``)."""
        if attempts < 1:
            raise ConfigurationError(f"requeue_delay needs attempts >= 1, got {attempts}")
        return self._schedule.delay(attempts)
