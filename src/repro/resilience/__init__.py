"""Fault injection and resilience: node/BB failures, retries, watchdogs.

The simulator's default world is ideal hardware; this package makes it
flaky on purpose.  :class:`FaultInjector` drives seeded node/burst-buffer/
job failures through the engine's event loop, :class:`RetryPolicy` governs
requeue-with-backoff and abandonment of killed jobs, and
:class:`SolverWatchdog` bounds the wall-clock cost of each selection with
graceful degradation to a cheap fallback.  Everything is strictly opt-in:
an engine without an injector (and selectors without a watchdog) behaves
byte-identically to the fault-free simulator.
"""

from .backoff import BackoffPolicy
from .faults import (
    SCENARIOS,
    BBDegrade,
    FaultInjector,
    FaultScenario,
    NodeFailure,
    get_scenario,
)
from .retry import RetryPolicy
from .watchdog import (
    GreedyFallbackSelector,
    SolverWatchdog,
    WatchdogStats,
    scalar_fallback,
)

__all__ = [
    "BackoffPolicy",
    "FaultScenario",
    "FaultInjector",
    "NodeFailure",
    "BBDegrade",
    "SCENARIOS",
    "get_scenario",
    "RetryPolicy",
    "SolverWatchdog",
    "WatchdogStats",
    "GreedyFallbackSelector",
    "scalar_fallback",
]
