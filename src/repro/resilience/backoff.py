"""Shared exponential-backoff schedule.

Two retry loops in this codebase damp themselves the same way: the
simulated :class:`~repro.resilience.retry.RetryPolicy` spaces out requeues
of fault-killed jobs (simulated seconds), and the supervised worker pool
(:mod:`repro.parallel.pool`) spaces out re-dispatch of crashed or hung
grid tasks (wall-clock seconds).  :class:`BackoffPolicy` is the one
schedule both consume — ``delay(attempt)`` grows geometrically from
``initial`` by ``factor`` per extra attempt, clamped at ``max_delay``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BackoffPolicy:
    """Geometric backoff: ``initial × factor^(attempt-1)``, clamped.

    Parameters
    ----------
    initial:
        Delay before the first retry, in seconds (simulated or wall —
        the policy is unit-agnostic).
    factor:
        Multiplier applied per additional attempt (``>= 1``).
    max_delay:
        Upper clamp on any single delay.
    """

    initial: float = 60.0
    factor: float = 2.0
    max_delay: float = 3600.0

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ConfigurationError(
                f"backoff initial must be non-negative, got {self.initial}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if self.max_delay < self.initial:
            raise ConfigurationError(
                f"max_delay {self.max_delay} < initial {self.initial}"
            )

    def delay(self, attempt: int) -> float:
        """Delay before the ``attempt``-th retry (``attempt >= 1``)."""
        if attempt < 1:
            raise ConfigurationError(f"delay needs attempt >= 1, got {attempt}")
        return min(self.initial * self.factor ** (attempt - 1), self.max_delay)
