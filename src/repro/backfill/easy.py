"""Multi-resource EASY backfilling (§2.1, used by every method in §4.3).

EASY backfilling lets lower-priority jobs skip ahead *provided they do not
delay the highest-priority waiting job*.  The classic algorithm reserves
the head job's resources at the *shadow time* — the earliest instant the
head fits, assuming running jobs release at their walltime-estimated ends —
and admits a candidate now iff it fits in the free resources and either
(a) its estimated end precedes the shadow time, or (b) it also fits in the
*extra* resources left at the shadow time after the head's reservation.

This implementation generalises the reservation to all three resources:
nodes, shared burst buffer, and per-tier local SSD node counts.  A job is
"delayed" if any one of its resource demands would be.

The backfiller is a planner: it mutates nothing, returning the list of jobs
to start; the engine performs the actual allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..simulator.job import Job

#: Tiny slack added when a running job has exceeded its walltime estimate —
#: its release is then assumed imminent rather than in the past.
_OVERRUN_EPSILON = 1e-6


@dataclass(frozen=True)
class PlannedRelease:
    """A running job's future resource release, per the walltime estimate."""

    est_end: float
    bb: float
    nodes_by_tier: Mapping[float, int]

    @property
    def nodes(self) -> int:
        return sum(self.nodes_by_tier.values())


class _Pool:
    """Mutable (bb, per-tier node) pool used during backfill planning.

    ``fits``/``qualifying`` are the planner's hot loop (called for every
    candidate against every pool), so the pool maintains two exact
    invariants alongside the tier dict: ``_nodes``, the running total of
    all tier counts, and ``_min_cap``, the smallest tier capacity present.
    A request at or below the smallest capacity qualifies *every* node —
    the common case on single-tier systems like Cori, where it turns the
    per-call dict reduction into one comparison.  Counts are integers, so
    the maintained total is exact, never approximate.
    """

    def __init__(self, bb: float, tiers: Mapping[float, int]) -> None:
        self.bb = bb
        self.tiers: Dict[float, int] = {float(c): int(n) for c, n in tiers.items()}
        self._nodes = sum(self.tiers.values())
        self._min_cap = min(self.tiers) if self.tiers else 0.0

    def copy(self) -> "_Pool":
        return _Pool(self.bb, self.tiers)

    @property
    def nodes(self) -> int:
        return self._nodes

    def qualifying(self, ssd: float) -> int:
        if ssd <= self._min_cap:
            return self._nodes
        return sum(n for cap, n in self.tiers.items() if cap >= ssd)

    def fits(self, job: Job) -> bool:
        return job.bb <= self.bb and self.qualifying(job.ssd) >= job.nodes

    def add(self, release: PlannedRelease) -> None:
        self.bb += release.bb
        tiers = self.tiers
        for cap, n in release.nodes_by_tier.items():
            tiers[cap] = tiers.get(cap, 0) + n
            self._nodes += n
            if cap < self._min_cap:
                self._min_cap = cap

    def take(self, job: Job) -> Dict[float, int]:
        """Consume the job's demand, smallest qualifying tier first.

        Returns the per-tier node counts taken (used to plan the job's
        own future release).
        """
        if not self.fits(job):
            raise SchedulingError(f"job {job.jid} does not fit in planning pool")
        self.bb -= job.bb
        remaining = job.nodes
        taken: Dict[float, int] = {}
        for cap in sorted(self.tiers):
            if cap < job.ssd or remaining == 0:
                continue
            grab = min(self.tiers[cap], remaining)
            if grab:
                self.tiers[cap] -= grab
                taken[cap] = grab
                remaining -= grab
        assert remaining == 0
        self._nodes -= job.nodes
        return taken


@dataclass(frozen=True)
class BackfillPlan:
    """Result of one backfill pass."""

    #: Jobs to start now, in decision order.
    to_start: Tuple[Job, ...]
    #: Shadow time reserved for the head job (None when the queue was empty
    #: or the head can never fit, e.g. it exceeds total capacity).
    shadow_time: Optional[float]


class EasyBackfill:
    """Plans EASY backfill decisions over the post-selection queue."""

    def plan(
        self,
        queue: Sequence[Job],
        free_bb: float,
        free_tiers: Mapping[float, int],
        releases: Sequence[PlannedRelease],
        now: float,
    ) -> BackfillPlan:
        """Classic EASY over the remaining queue.

        Queue heads start in priority order while they fit (the base
        scheduler's normal pass — without this, a fitting job left at the
        head by an imperfect window selection would have its resources
        *reserved but idle* until the next event).  The first head that
        does not fit gets the shadow-time reservation; jobs behind it may
        start only if they cannot delay it.

        Parameters
        ----------
        queue:
            Remaining eligible jobs in priority order.
        free_bb, free_tiers:
            Current free burst buffer (GB) and free node count per SSD tier.
        releases:
            Planned releases of currently running jobs.
        now:
            Current simulation time.
        """
        if not queue:
            return BackfillPlan(to_start=(), shadow_time=None)

        pool = _Pool(free_bb, free_tiers)
        started: List[Job] = []
        releases = list(releases)
        idx = 0
        while idx < len(queue) and pool.fits(queue[idx]):
            job = queue[idx]
            taken = pool.take(job)
            started.append(job)
            # A started head is a future release for the shadow computation.
            releases.append(PlannedRelease(
                est_end=now + job.walltime, bb=job.bb, nodes_by_tier=taken,
            ))
            idx += 1
        if idx >= len(queue):
            return BackfillPlan(to_start=tuple(started), shadow_time=None)

        head = queue[idx]
        shadow, extra = self._reserve_head(head, pool, releases, now)

        for job in queue[idx + 1:]:
            if not pool.fits(job):
                continue
            est_end = now + job.walltime
            if shadow is None or est_end <= shadow:
                # Ends before the head needs its resources (or head can
                # never fit, so nothing to protect): safe to start.
                pool.take(job)
                started.append(job)
            elif extra is not None and extra.fits(job):
                # Runs past the shadow time but inside the spare capacity
                # left after the head's reservation.
                pool.take(job)
                extra.take(job)
                started.append(job)
        return BackfillPlan(to_start=tuple(started), shadow_time=shadow)

    @staticmethod
    def _reserve_head(
        head: Job,
        pool: _Pool,
        releases: Sequence[PlannedRelease],
        now: float,
    ) -> Tuple[Optional[float], Optional[_Pool]]:
        """Shadow time and the extra pool left once the head is reserved.

        Walks planned releases in estimated-end order, accumulating freed
        resources into a copy of the current pool until the head fits.
        Returns ``(None, None)`` when the head cannot fit even after every
        release (it exceeds total capacity — a trace error upstream, but we
        degrade to plain "fits now" backfilling rather than crash).
        """
        future = pool.copy()
        if future.fits(head):
            future.take(head)
            return now, future
        # Not vectorized on purpose: the walk usually exits within a few
        # releases (profiled: median release list ~30 long, early exit far
        # sooner), so an O(n) prefix-sum array build loses to the O(k) walk.
        for release in sorted(releases, key=attrgetter("est_end")):
            est = max(release.est_end, now + _OVERRUN_EPSILON)
            future.add(release)
            if future.fits(head):
                future.take(head)
                return est, future
        return None, None
