"""Backfilling: EASY (head reservation) and conservative (per-job)."""

from .conservative import ConservativeBackfill
from .easy import BackfillPlan, EasyBackfill, PlannedRelease

__all__ = ["EasyBackfill", "ConservativeBackfill", "BackfillPlan", "PlannedRelease"]
