"""Conservative backfilling — the strict alternative to EASY.

EASY reserves resources for the *first* blocked job only; conservative
backfilling (Mu'alem & Feitelson 2001, the same [30] the paper cites)
gives **every** queued job a reservation, so a backfilled job may not delay
*anyone* ahead of it.  Production Slurm sits between the two (bounded
reservation depth), which this implementation exposes as ``depth``:
``depth=1`` protects one job like EASY, ``depth=None`` is fully
conservative.

The planner maintains a *capacity profile* — free burst buffer and free
nodes per SSD tier as step functions of time, built from the running jobs'
estimated releases.  Jobs are inserted in priority order at the earliest
instant where the profile can host them for their **entire** walltime;
only jobs whose earliest instant is *now* actually start, everything else
merely occupies the profile as a reservation.

Used by the backfill-policy ablation: conservative backfilling protects
queue order harder, trading throughput for predictability — the same axis
the §3.1 window mechanism negotiates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..simulator.job import Job
from .easy import BackfillPlan, EasyBackfill, PlannedRelease, _OVERRUN_EPSILON

#: Far-future sentinel for the profile's final segment.
_INF = float("inf")


class _Profile:
    """Piecewise-constant free capacity over time.

    Segments are stored as ``(start_time, bb_free, {tier: free})``; the
    last segment extends to infinity.  ``occupy`` subtracts a job's demand
    over ``[t0, t1)``, splitting segments as needed.
    """

    def __init__(self, bb: float, tiers: Mapping[float, int], now: float) -> None:
        self._times: List[float] = [now]
        self._bb: List[float] = [bb]
        self._tiers: List[Dict[float, int]] = [dict(tiers)]

    # --- segment bookkeeping ----------------------------------------------------
    def _split(self, t: float) -> int:
        """Ensure a segment boundary at ``t``; return its segment index."""
        from bisect import bisect_right

        i = bisect_right(self._times, t) - 1
        if self._times[i] == t:
            return i
        self._times.insert(i + 1, t)
        self._bb.insert(i + 1, self._bb[i])
        self._tiers.insert(i + 1, dict(self._tiers[i]))
        return i + 1

    def add_release(self, release: PlannedRelease) -> None:
        """Capacity returned by a running job at its estimated end."""
        i = self._split(max(release.est_end, self._times[0]))
        for j in range(i, len(self._times)):
            self._bb[j] += release.bb
            for cap, n in release.nodes_by_tier.items():
                self._tiers[j][cap] = self._tiers[j].get(cap, 0) + n

    # --- queries ---------------------------------------------------------------
    def _fits_segment(self, i: int, job: Job) -> bool:
        if self._bb[i] < job.bb - 1e-9:
            return False
        qualifying = sum(
            n for cap, n in self._tiers[i].items() if cap >= job.ssd
        )
        return qualifying >= job.nodes

    def fits_interval(self, job: Job, t0: float, t1: float) -> bool:
        """Does the job fit in every segment overlapping ``[t0, t1)``?"""
        from bisect import bisect_right

        i = max(bisect_right(self._times, t0) - 1, 0)
        while i < len(self._times):
            seg_start = self._times[i]
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else _INF
            if seg_start >= t1:
                break
            if seg_end > t0 and not self._fits_segment(i, job):
                return False
            i += 1
        return True

    def earliest_start(self, job: Job, now: float) -> Optional[float]:
        """Earliest ``t >= now`` hosting the job for its full walltime."""
        candidates = [t for t in self._times if t >= now]
        if now not in candidates:
            candidates.insert(0, now)
        for t in candidates:
            if self.fits_interval(job, t, t + job.walltime):
                return t
        return None

    # --- mutation ---------------------------------------------------------------
    def occupy(self, job: Job, t0: float) -> None:
        """Subtract the job's demand over ``[t0, t0 + walltime)``.

        Node demand is drawn smallest-qualifying-tier-first per segment
        (consistent with the cluster's allocation preference).
        """
        t1 = t0 + job.walltime
        i0 = self._split(t0)
        self._split(t1)
        j = i0
        while j < len(self._times) and self._times[j] < t1:
            self._bb[j] -= job.bb
            remaining = job.nodes
            tiers = self._tiers[j]
            for cap in sorted(tiers):
                if cap < job.ssd or remaining == 0:
                    continue
                grab = min(tiers[cap], remaining)
                tiers[cap] -= grab
                remaining -= grab
            j += 1


class ConservativeBackfill(EasyBackfill):
    """Reservation-per-job backfilling with bounded depth."""

    def __init__(self, depth: Optional[int] = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError(f"depth must be >= 1 or None, got {depth}")
        self.depth = depth

    def plan(
        self,
        queue: Sequence[Job],
        free_bb: float,
        free_tiers: Mapping[float, int],
        releases: Sequence[PlannedRelease],
        now: float,
    ) -> BackfillPlan:
        if not queue:
            return BackfillPlan(to_start=(), shadow_time=None)
        profile = _Profile(free_bb, free_tiers, now)
        for release in releases:
            profile.add_release(release)

        started: List[Job] = []
        shadow: Optional[float] = None
        reserved = 0
        for job in queue:
            t = profile.earliest_start(job, now)
            if t is None:
                continue  # never fits (walltime outlasts every profile hole)
            profile.occupy(job, t)
            if t <= now + _OVERRUN_EPSILON:
                started.append(job)
            else:
                if shadow is None:
                    shadow = t
                reserved += 1
                if self.depth is not None and reserved >= self.depth:
                    break
        return BackfillPlan(to_start=tuple(started), shadow_time=shadow)
