"""Workload traces: machine specs, synthesis, augmentation, and I/O."""

from .augment import add_ssd_requests, expand_bb_requests, make_bb_suite, make_ssd_suite
from .darshan import (
    BB_EXTRACTION_THRESHOLD,
    DarshanRecord,
    enhance_trace_with_darshan,
    extract_bb_requests,
    read_darshan_csv,
    synthesize_darshan_log,
    write_darshan_csv,
)
from .generator import WorkloadProfile, cori_profile, generate, theta_profile
from .spec import CORI, MACHINES, THETA, MachineSpec, get_machine
from .swf import read_swf, write_swf
from .trace import CSV_FIELDS, Trace

__all__ = [
    "MachineSpec",
    "CORI",
    "THETA",
    "MACHINES",
    "get_machine",
    "Trace",
    "CSV_FIELDS",
    "WorkloadProfile",
    "cori_profile",
    "theta_profile",
    "generate",
    "expand_bb_requests",
    "add_ssd_requests",
    "make_bb_suite",
    "make_ssd_suite",
    "DarshanRecord",
    "synthesize_darshan_log",
    "extract_bb_requests",
    "enhance_trace_with_darshan",
    "read_darshan_csv",
    "write_darshan_csv",
    "BB_EXTRACTION_THRESHOLD",
    "read_swf",
    "write_swf",
]
