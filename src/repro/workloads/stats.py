"""Workload characterisation statistics.

Summarises a trace the way §4.1 and Table 2 characterise the real logs:
job-size and runtime distributions, walltime-estimate accuracy, burst
buffer request profile, offered loads.  Used by the CLI's workload report
and by EXPERIMENTS.md to document exactly what the synthetic traces look
like next to the paper's descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import TB
from .trace import Trace


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one positive quantity."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: np.ndarray) -> "DistributionSummary":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return cls(count=0, mean=0.0, median=0.0, p90=0.0, maximum=0.0)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            median=float(np.median(values)),
            p90=float(np.percentile(values, 90)),
            maximum=float(values.max()),
        )


@dataclass(frozen=True)
class WorkloadStats:
    """Full characterisation of one trace."""

    name: str
    n_jobs: int
    span_seconds: float
    nodes: DistributionSummary          #: requested node counts
    runtime_seconds: DistributionSummary
    walltime_factor: DistributionSummary  #: walltime / runtime overestimation
    bb_requests_gb: DistributionSummary   #: positive BB requests only
    bb_fraction: float
    offered_node_load: float
    offered_bb_load: float
    power_of_two_fraction: float        #: share of jobs at exact 2^k sizes


def characterize(trace: Trace) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a trace."""
    nodes = np.array([j.nodes for j in trace.jobs], dtype=float)
    runtimes = np.array([j.runtime for j in trace.jobs], dtype=float)
    factors = np.array(
        [j.walltime / j.runtime for j in trace.jobs if j.runtime > 0], dtype=float
    )
    t0, t1 = trace.span()
    span = t1 - t0
    cap = trace.machine.schedulable_bb
    bb_load = (
        sum(j.bb * j.runtime for j in trace.jobs) / (cap * span)
        if span > 0 and cap > 0
        else 0.0
    )
    if nodes.size:
        log2 = np.log2(nodes)
        p2 = float((log2 == np.round(log2)).mean())
    else:
        p2 = 0.0
    return WorkloadStats(
        name=trace.name,
        n_jobs=len(trace),
        span_seconds=span,
        nodes=DistributionSummary.of(nodes),
        runtime_seconds=DistributionSummary.of(runtimes),
        walltime_factor=DistributionSummary.of(factors),
        bb_requests_gb=DistributionSummary.of(trace.bb_requests()),
        bb_fraction=trace.bb_fraction(),
        offered_node_load=trace.offered_load(),
        offered_bb_load=bb_load,
        power_of_two_fraction=p2,
    )


def render_stats(stats: WorkloadStats) -> str:
    """Multi-line human-readable characterisation."""
    lines = [
        f"workload {stats.name}: {stats.n_jobs} jobs over "
        f"{stats.span_seconds / 3600:.1f}h",
        f"  node requests   med {stats.nodes.median:.0f}  "
        f"mean {stats.nodes.mean:.0f}  p90 {stats.nodes.p90:.0f}  "
        f"max {stats.nodes.maximum:.0f}  "
        f"(power-of-two: {100 * stats.power_of_two_fraction:.0f}%)",
        f"  runtimes        med {stats.runtime_seconds.median / 60:.0f}m  "
        f"mean {stats.runtime_seconds.mean / 60:.0f}m  "
        f"max {stats.runtime_seconds.maximum / 3600:.1f}h",
        f"  walltime factor med {stats.walltime_factor.median:.2f}  "
        f"p90 {stats.walltime_factor.p90:.2f}",
        f"  burst buffer    {100 * stats.bb_fraction:.1f}% of jobs, "
        f"med {stats.bb_requests_gb.median / TB:.1f}TB, "
        f"max {stats.bb_requests_gb.maximum / TB:.1f}TB",
        f"  offered load    nodes {stats.offered_node_load:.2f}  "
        f"burst buffer {stats.offered_bb_load:.2f}",
    ]
    return "\n".join(lines)
