"""Synthetic workload augmentation: S1–S4 (burst buffer) and S5–S7 (SSD).

§4.1: because burst buffers were lightly used in the 2018 logs, the paper
stresses the schedulers with eight synthetic workloads per machine pair —
expanding the percentage of jobs requesting burst buffer to 50 % (S1, S3)
or 75 % (S2, S4), with the assigned request drawn from the *original*
requests above 5 TB (S1, S2) or above 20 TB (S3, S4).

§5 builds S5–S7 on top of the S2 workloads by adding per-node local-SSD
requests: 80/20, 50/50, and 20/80 splits between the 0–128 GB and
129–256 GB ranges.
"""

from __future__ import annotations

from typing import Dict, Optional


from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.job import Job
from ..units import TB
from .trace import Trace


def _replace_bb(job: Job, bb: float) -> Job:
    return Job(
        jid=job.jid,
        submit_time=job.submit_time,
        runtime=job.runtime,
        walltime=job.walltime,
        nodes=job.nodes,
        bb=bb,
        ssd=job.ssd,
        deps=job.deps,
        user=job.user,
    )


def _replace_ssd(job: Job, ssd: float) -> Job:
    return Job(
        jid=job.jid,
        submit_time=job.submit_time,
        runtime=job.runtime,
        walltime=job.walltime,
        nodes=job.nodes,
        bb=job.bb,
        ssd=ssd,
        deps=job.deps,
        user=job.user,
    )


#: Minimum pool size below which request sampling falls back to the
#: synthetic law (tiny pools would just replay a couple of values).
_MIN_POOL = 30


def offered_bb_load(trace: Trace) -> float:
    """Offered burst-buffer load ρ_bb: Σ bb·runtime / (capacity × span)."""
    t0, t1 = trace.span()
    cap = trace.machine.schedulable_bb
    if t1 <= t0 or cap <= 0:
        return 0.0
    return sum(j.bb * j.runtime for j in trace.jobs) / (cap * (t1 - t0))


def expand_bb_requests(
    trace: Trace,
    *,
    fraction: float,
    min_request: float,
    max_request: Optional[float] = None,
    target_bb_load: Optional[float] = None,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Trace:
    """Raise the share of BB-requesting jobs to ``fraction`` (§4.1 S1–S4).

    New requests are sampled (with replacement) from the trace's original
    requests inside ``(min_request, max_request]`` GB.  When fewer than 30
    such originals exist — the normal case for laptop-scale synthetic
    traces, and also true of the real logs' >20 TB tail — a uniform law
    over the same range stands in, matching the broad S3/S4 histograms of
    Figure 5.  Requests never exceed the machine's schedulable burst
    buffer, so every job remains runnable.

    ``target_bb_load`` optionally calibrates the *offered burst-buffer
    load* ρ_bb (aggregate BB-GB-seconds over capacity × trace span): after
    assignment, the newly added requests are rescaled by a common factor
    so the realised ρ_bb matches the target.  The paper controls
    contention regimes through request sizes on fixed machines; with
    synthetic traces the load target is the machine-independent way to
    land each S-workload in its intended regime (S1/S2 moderate, S3/S4
    burst-buffer-bound).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be a probability, got {fraction}")
    if min_request < 0:
        raise ConfigurationError("min_request must be non-negative")
    rng = make_rng(seed)
    cap = trace.machine.schedulable_bb
    if cap <= 0:
        raise ConfigurationError(
            f"machine {trace.machine.name} has no schedulable burst buffer"
        )
    high = min(max_request if max_request is not None else cap, cap)
    if high <= min_request:
        raise ConfigurationError(
            f"max_request {high} must exceed min_request {min_request}"
        )
    pool = trace.bb_requests()
    pool = pool[(pool > min_request) & (pool <= high)]

    jobs = list(trace.jobs)
    have = [i for i, j in enumerate(jobs) if j.uses_bb]
    lack = [i for i, j in enumerate(jobs) if not j.uses_bb]
    target = int(round(fraction * len(jobs)))
    need = max(target - len(have), 0)
    chosen = rng.choice(len(lack), size=min(need, len(lack)), replace=False)
    new_idx = []
    for k in chosen:
        i = lack[int(k)]
        if pool.size >= _MIN_POOL:
            request = float(rng.choice(pool))
        else:
            request = float(rng.uniform(min_request, high))
        jobs[i] = _replace_bb(jobs[i], min(request, cap))
        new_idx.append(i)

    out = trace.with_jobs(jobs, name=name or trace.name)
    if target_bb_load is not None and new_idx:
        if target_bb_load <= 0:
            raise ConfigurationError("target_bb_load must be positive")
        realised = offered_bb_load(out)
        base = offered_bb_load(trace)  # load carried by pre-existing requests
        if realised > base:
            factor = (target_bb_load - base) / (realised - base)
            factor = max(factor, 0.0)
            for i in new_idx:
                jobs[i] = _replace_bb(jobs[i], min(jobs[i].bb * factor, cap))
            out = trace.with_jobs(jobs, name=name or trace.name)
    return out


#: §4.1 request ranges as fractions of the schedulable burst buffer.
#: The S1/S2 range reproduces the paper's absolute figures on full-size
#: machines: its 5 TB threshold and 165 TB / 285 TB request maxima are
#: 0.4 % and ~13 % of Cori's / Theta's schedulable capacity.  The S3/S4
#: range is calibrated upward (5 %–25 % of capacity, versus the paper's
#: literal 20 TB ≈ 1.6 % threshold) so that the S3/S4 *contention regime*
#: — burst buffer saturated, node usage dragged down by BB shortage, the
#: setting Figures 6–8 revolve around — emerges at simulatable trace
#: scale; see DESIGN.md §Substitutions.  Fractions, not absolutes, keep
#: the regimes intact when experiments shrink the machine.
S12_RANGE_FRACTION = (0.004, 0.13)
S34_RANGE_FRACTION = (0.05, 0.25)

#: Offered burst-buffer load targets per synthetic workload.  Calibrated
#: to land each workload in the paper's observed regime: S1/S2 moderate
#: BB pressure (BB usage well under capacity, nodes the bottleneck),
#: S3 near-critical, S4 burst-buffer-bound (BB saturates, node usage
#: drops, waits surge — §4.4's "severe burst buffer contention").
BB_LOAD_TARGETS = {"S1": 0.50, "S2": 0.80, "S3": 1.00, "S4": 1.40}


def make_bb_suite(
    trace: Trace, seed: SeedLike = None, *, machine_label: Optional[str] = None
) -> Dict[str, Trace]:
    """The five §4.1 workloads: Original plus S1–S4.

    Keys are ``"<machine>-Original"`` … ``"<machine>-S4"`` (Figure 6–8,
    12–13 x-axis labels).  S1/S3 put burst-buffer requests on 50 % of the
    jobs, S2/S4 on 75 %; S1/S2 draw from the small-request range, S3/S4
    from the large one (see the range-fraction constants above).
    """
    rng = make_rng(seed)
    label = machine_label or trace.machine.name.split("/")[0]
    cap = trace.machine.schedulable_bb
    specs = {
        "S1": (0.50, S12_RANGE_FRACTION),
        "S2": (0.75, S12_RANGE_FRACTION),
        "S3": (0.50, S34_RANGE_FRACTION),
        "S4": (0.75, S34_RANGE_FRACTION),
    }
    suite = {f"{label}-Original": trace.rename(f"{label}-Original")}
    for sname, (fraction, (lo, hi)) in specs.items():
        suite[f"{label}-{sname}"] = expand_bb_requests(
            trace,
            fraction=fraction,
            min_request=lo * cap,
            max_request=hi * cap,
            target_bb_load=BB_LOAD_TARGETS[sname],
            seed=rng,
            name=f"{label}-{sname}",
        )
    return suite


def add_ssd_requests(
    trace: Trace,
    *,
    small_fraction: float,
    small_range: tuple[float, float] = (0.0, 128.0),
    large_range: tuple[float, float] = (129.0, 256.0),
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Trace:
    """Attach per-node local-SSD requests to every job (§5 S5–S7).

    ``small_fraction`` of the jobs draw uniformly from ``small_range``
    GB/node; the rest from ``large_range``.
    """
    if not 0.0 <= small_fraction <= 1.0:
        raise ConfigurationError("small_fraction must be a probability")
    rng = make_rng(seed)
    # Jobs gain local-SSD needs; bind the trace to the §5 machine variant
    # (50/50 split of 128 GB and 256 GB nodes) unless the spec already has
    # tiers covering the largest request.
    machine = trace.machine
    if machine.ssd_tiers is None:
        machine = machine.with_ssd_split(
            small=max(small_range[1], 1.0), large=max(large_range[1], 1.0)
        )
    tiers = dict(machine.ssd_tiers)
    jobs = []
    for job in trace.jobs:
        if rng.random() < small_fraction:
            lo, hi = small_range
        else:
            lo, hi = large_range
        ssd = float(rng.uniform(lo, hi))
        # A job larger than the count of qualifying nodes could never run;
        # §5 notes jobs over 128 GB "have to be allocated to nodes with
        # 256GB SSD" — jobs too wide for that pool get a small request.
        qualifying = sum(n for cap, n in tiers.items() if cap >= ssd)
        if qualifying < job.nodes:
            ssd = float(rng.uniform(*small_range))
        jobs.append(_replace_ssd(job, ssd))
    return trace.with_jobs(jobs, name=name or trace.name, machine=machine)


def make_ssd_suite(
    s2_trace: Trace, seed: SeedLike = None, *, machine_label: Optional[str] = None
) -> Dict[str, Trace]:
    """The §5 workloads S5–S7, built on an S2 trace.

    S5: 80 % small SSD requests; S6: 50 %; S7: 20 %.
    """
    rng = make_rng(seed)
    label = machine_label or s2_trace.machine.name.split("/")[0]
    fractions = {"S5": 0.8, "S6": 0.5, "S7": 0.2}
    return {
        f"{label}-{sname}": add_ssd_requests(
            s2_trace, small_fraction=f, seed=rng, name=f"{label}-{sname}"
        )
        for sname, f in fractions.items()
    }
