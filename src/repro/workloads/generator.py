"""Synthetic workload generation matched to the Cori and Theta traces (§4.1).

The paper's evaluation uses proprietary job logs; this module is the
documented substitution (DESIGN.md §Substitutions 1): statistical
generators whose knobs are set from everything Table 2 and §4.1 disclose
about the real traces —

* **Cori** (capacity computing): large numbers of predominantly small
  jobs; 0.618 % of jobs request burst buffer, sizes in [1 GB, 165 TB];
* **Theta** (capability computing): far fewer, much larger jobs (128-node
  minimum allocation); 17.18 % of jobs have >1 GB of Darshan-recorded I/O
  that becomes their burst-buffer request, sizes in [1 GB, 285 TB].

The generator fixes the *offered load* ρ (node-demand over capacity per
unit time) rather than an absolute arrival rate, so scheduling contention
— the regime the method comparison depends on — is controlled explicitly
and survives machine scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.job import Job
from ..units import GB, HOURS, MINUTES, TB
from .distributions import (
    bounded_pareto,
    power_of_two_sizes,
    truncated_lognormal,
    walltime_estimates,
)
from .spec import CORI, THETA, MachineSpec
from .trace import Trace


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesise one workload.

    Size parameters are in nodes, time parameters in seconds, storage in
    GB.  ``load`` is the offered node load ρ (1.0 = demand exactly equals
    capacity over the trace span; >1 builds a queue, which all §4
    experiments need).
    """

    name: str
    machine: MachineSpec
    n_jobs: int = 1000
    load: float = 1.0
    # --- job sizes -------------------------------------------------------------
    min_nodes: int = 1
    max_nodes: Optional[int] = None          #: default: machine size
    size_log_mean: float = np.log(16.0)      #: lognormal mean of node counts
    size_log_sigma: float = 1.5
    # --- runtimes / walltimes ----------------------------------------------------
    runtime_median: float = 1.0 * HOURS
    runtime_sigma: float = 1.2
    runtime_min: float = 2.0 * MINUTES
    runtime_max: float = 24.0 * HOURS
    walltime_max_factor: float = 4.0
    # --- burst buffer ---------------------------------------------------------------
    bb_fraction: float = 0.0                 #: fraction of jobs requesting BB
    bb_alpha: float = 0.45                   #: bounded-Pareto tail exponent
    bb_low: float = 1.0 * GB
    bb_high: float = 165.0 * TB
    # --- arrival pattern ---------------------------------------------------------
    #: Diurnal arrival modulation: the instantaneous arrival rate is
    #: ``λ(t) ∝ 1 + amplitude × sin(2πt / period)``.  Production logs are
    #: strongly diurnal; the lulls let the queue drain, which is what makes
    #: scheduling quality *matter* — under a monotonically growing backlog
    #: every work-conserving method converges to the same usage.
    diurnal_amplitude: float = 0.8
    diurnal_period: float = 24.0 * HOURS
    # --- dependencies ------------------------------------------------------------
    dep_fraction: float = 0.0                #: fraction of jobs depending on a predecessor

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ConfigurationError("n_jobs must be positive")
        if self.load <= 0:
            raise ConfigurationError("load must be positive")
        if not 0.0 <= self.bb_fraction <= 1.0:
            raise ConfigurationError("bb_fraction must be a probability")
        if not 0.0 <= self.dep_fraction <= 1.0:
            raise ConfigurationError("dep_fraction must be a probability")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ConfigurationError("diurnal_period must be positive")
        if self.runtime_min <= 0 or self.runtime_max < self.runtime_min:
            raise ConfigurationError("invalid runtime bounds")

    @property
    def effective_max_nodes(self) -> int:
        return self.max_nodes if self.max_nodes is not None else self.machine.nodes


def cori_profile(
    *,
    n_jobs: int = 1000,
    load: float = 1.0,
    machine: MachineSpec = CORI,
    bb_fraction: float = 0.00618,
    name: str = "Cori-Original",
) -> WorkloadProfile:
    """Capacity-computing profile matching the Cori trace description.

    Small-job dominated (median request ~16 nodes), burst-buffer requests
    on 0.618 % of jobs spanning [1 GB, 165 TB] (§4.1).
    """
    return WorkloadProfile(
        name=name,
        machine=machine,
        n_jobs=n_jobs,
        load=load,
        min_nodes=1,
        size_log_mean=np.log(16.0),
        size_log_sigma=1.6,
        runtime_median=50.0 * MINUTES,
        runtime_sigma=1.3,
        # Capacity jobs are short; capping at 6 h keeps synthetic traces
        # short enough that the arrival span dominates single-job runtimes
        # (a sustained queue, not one burst).
        runtime_max=6.0 * HOURS,
        bb_fraction=bb_fraction,
        bb_high=min(165.0 * TB, machine.schedulable_bb),
    )


def theta_profile(
    *,
    n_jobs: int = 1000,
    load: float = 1.0,
    machine: MachineSpec = THETA,
    bb_fraction: float = 0.1718,
    name: str = "Theta-Original",
) -> WorkloadProfile:
    """Capability-computing profile matching the Theta trace description.

    Large-job-biased sizes — but the full 1..4392 range is present, as
    Figure 9's 1–8-node bin shows — and burst-buffer requests derived
    from Darshan I/O volumes on 17.18 % of jobs spanning [1 GB, 285 TB]
    (§4.1).
    """
    return WorkloadProfile(
        name=name,
        machine=machine,
        n_jobs=n_jobs,
        load=load,
        min_nodes=1,
        size_log_mean=np.log(max(machine.nodes / 48.0, 2.0)),
        size_log_sigma=1.3,
        runtime_median=2.0 * HOURS,
        runtime_sigma=1.0,
        runtime_max=12.0 * HOURS,
        bb_fraction=bb_fraction,
        bb_high=min(285.0 * TB, machine.schedulable_bb),
    )


def _invert_diurnal(operational: np.ndarray, amplitude: float, period: float) -> np.ndarray:
    """Map operational times through the inverse cumulative diurnal rate.

    With rate ``λ(t) = 1 + A sin(2πt/P)`` the cumulative intensity is
    ``Λ(t) = t + (A·P/2π)(1 − cos(2πt/P))``, strictly increasing for
    ``A < 1``.  Each operational timestamp ``u`` maps to ``Λ⁻¹(u)``, found
    by bisection (vectorised, ~40 iterations for float precision).
    """
    w = 2.0 * np.pi / period
    c = amplitude / w

    def big_lambda(t: np.ndarray) -> np.ndarray:
        return t + c * (1.0 - np.cos(w * t))

    lo = np.zeros_like(operational)
    hi = np.full_like(operational, operational.max() + 2.0 * period + 1.0)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        too_low = big_lambda(mid) < operational
        lo = np.where(too_low, mid, lo)
        hi = np.where(too_low, hi, mid)
    return 0.5 * (lo + hi)


def generate(profile: WorkloadProfile, seed: SeedLike = None) -> Trace:
    """Synthesise a :class:`Trace` from ``profile``.

    Deterministic for a given ``(profile, seed)`` pair.  Submission times
    are scaled so the realised offered load equals ``profile.load``.
    """
    rng = make_rng(seed)
    n = profile.n_jobs
    machine = profile.machine

    nodes = power_of_two_sizes(
        rng,
        n,
        min_nodes=profile.min_nodes,
        max_nodes=profile.effective_max_nodes,
        log_mean=profile.size_log_mean,
        log_sigma=profile.size_log_sigma,
    )
    runtimes = truncated_lognormal(
        rng,
        n,
        mean=profile.runtime_median,
        sigma=profile.runtime_sigma,
        low=profile.runtime_min,
        high=profile.runtime_max,
    )
    walltimes = walltime_estimates(
        rng, runtimes, max_factor=profile.walltime_max_factor
    )

    # Burst-buffer requests: a Bernoulli mask over a heavy-tailed size law.
    bb = np.zeros(n)
    has_bb = rng.random(n) < profile.bb_fraction
    if has_bb.any():
        bb[has_bb] = bounded_pareto(
            rng,
            int(has_bb.sum()),
            alpha=profile.bb_alpha,
            low=profile.bb_low,
            high=profile.bb_high,
        )

    # Submission times: a (possibly diurnally modulated) Poisson process,
    # rescaled so the realised offered load equals the target.  The
    # nonhomogeneous process is sampled by time-rescaling: unit-rate
    # exponential gaps accumulate in "operational time" Λ, then map back
    # through the inverse of Λ(t) = t + (A·period/2π)(1 − cos(2πt/period)).
    demand = float((nodes * runtimes).sum())
    span = demand / (profile.load * machine.nodes)
    gaps = rng.exponential(scale=1.0, size=n)
    operational = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
    if operational[-1] > 0:
        operational = operational * (span / operational[-1])
    if profile.diurnal_amplitude > 0:
        submit = _invert_diurnal(
            operational, profile.diurnal_amplitude, profile.diurnal_period
        )
        submit -= submit[0]  # bisection leaves ~1e-13 residue at the origin
        if submit[-1] > 0:  # re-pin the span so the load target holds
            submit = submit * (span / submit[-1])
    else:
        submit = operational

    # Optional linear dependencies (the paper's traces carry none, §4.1).
    deps = [frozenset()] * n
    if profile.dep_fraction > 0:
        chained = rng.random(n) < profile.dep_fraction
        deps = [
            frozenset({i - 1}) if (chained[i] and i > 0) else frozenset()
            for i in range(n)
        ]

    jobs = tuple(
        Job(
            jid=i,
            submit_time=float(submit[i]),
            runtime=float(runtimes[i]),
            walltime=float(walltimes[i]),
            nodes=int(nodes[i]),
            bb=float(bb[i]),
            deps=deps[i],
            user=f"u{int(rng.integers(0, max(n // 20, 1)))}",
        )
        for i in range(n)
    )
    return Trace(name=profile.name, machine=machine, jobs=jobs)
