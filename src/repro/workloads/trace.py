"""Workload trace container and CSV I/O.

A :class:`Trace` is an immutable, validated, submit-time-ordered sequence
of :class:`~repro.simulator.job.Job` records plus the machine spec it
targets.  Simulation runs consume *copies* of the jobs (jobs carry mutable
scheduling state), so one trace can drive many runs.

The on-disk format is a plain CSV with a header — trivially diffable and
loadable without this library.  For interoperability with the classic
scheduling-research toolchain, :mod:`repro.workloads.swf` reads and writes
the Standard Workload Format.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TraceError
from ..simulator.job import Job
from .spec import MachineSpec

#: Column order of the CSV trace format.
CSV_FIELDS = (
    "jid",
    "submit_time",
    "runtime",
    "walltime",
    "nodes",
    "bb",
    "ssd",
    "deps",
    "user",
)


@dataclass(frozen=True)
class Trace:
    """An ordered job trace bound to a machine spec."""

    name: str
    machine: MachineSpec
    jobs: Tuple[Job, ...]

    def __post_init__(self) -> None:
        ids = set()
        prev = -np.inf
        for job in self.jobs:
            if job.jid in ids:
                raise TraceError(f"trace {self.name}: duplicate job id {job.jid}")
            ids.add(job.jid)
            if job.submit_time < prev:
                raise TraceError(
                    f"trace {self.name}: jobs must be submit-time ordered"
                )
            prev = job.submit_time
            if job.nodes > self.machine.nodes:
                raise TraceError(
                    f"trace {self.name}: job {job.jid} wants {job.nodes} nodes, "
                    f"machine has {self.machine.nodes}"
                )
        for job in self.jobs:
            missing = job.deps - ids
            if missing:
                raise TraceError(
                    f"trace {self.name}: job {job.jid} depends on unknown {missing}"
                )

    # --- basics -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def fresh_jobs(self) -> List[Job]:
        """Deep-enough copies for one simulation run (state reset)."""
        return [
            Job(
                jid=j.jid,
                submit_time=j.submit_time,
                runtime=j.runtime,
                walltime=j.walltime,
                nodes=j.nodes,
                bb=j.bb,
                ssd=j.ssd,
                deps=j.deps,
                user=j.user,
            )
            for j in self.jobs
        ]

    def head(self, n: int) -> "Trace":
        """Trace restricted to the first ``n`` jobs (Figure 2/4 use 1000)."""
        return replace(self, name=f"{self.name}[:{n}]", jobs=self.jobs[:n])

    def rename(self, name: str) -> "Trace":
        """Same jobs under a new workload label."""
        return replace(self, name=name)

    def with_jobs(
        self,
        jobs: Sequence[Job],
        *,
        name: Optional[str] = None,
        machine: Optional[MachineSpec] = None,
    ) -> "Trace":
        """New trace with replaced jobs (and optionally a new machine spec)."""
        return Trace(
            name=name or self.name,
            machine=machine or self.machine,
            jobs=tuple(jobs),
        )

    # --- statistics ----------------------------------------------------------------
    def bb_requests(self, *, positive_only: bool = True) -> np.ndarray:
        """Burst-buffer request sizes (GB), optionally only the non-zero ones."""
        vals = np.array([j.bb for j in self.jobs])
        return vals[vals > 0] if positive_only else vals

    def bb_fraction(self) -> float:
        """Fraction of jobs requesting any burst buffer."""
        if not self.jobs:
            return 0.0
        return sum(1 for j in self.jobs if j.uses_bb) / len(self.jobs)

    def total_bb_volume(self) -> float:
        """Aggregate requested burst buffer (GB) — Figure 5's parenthetical."""
        return float(sum(j.bb for j in self.jobs))

    def span(self) -> Tuple[float, float]:
        """(first submit, last submit) times."""
        if not self.jobs:
            return (0.0, 0.0)
        return (self.jobs[0].submit_time, self.jobs[-1].submit_time)

    def offered_load(self) -> float:
        """Offered node load: Σ node-seconds / (machine nodes × span)."""
        t0, t1 = self.span()
        if t1 <= t0:
            return 0.0
        demand = sum(j.node_seconds for j in self.jobs)
        return demand / (self.machine.nodes * (t1 - t0))

    # --- I/O ----------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV (header + one row per job)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(CSV_FIELDS)
            for j in self.jobs:
                deps = ";".join(str(d) for d in sorted(j.deps))
                writer.writerow(
                    [
                        j.jid,
                        f"{j.submit_time:.6f}",
                        f"{j.runtime:.6f}",
                        f"{j.walltime:.6f}",
                        j.nodes,
                        f"{j.bb:.6f}",
                        f"{j.ssd:.6f}",
                        deps,
                        j.user,
                    ]
                )

    @classmethod
    def from_csv(
        cls, path: Union[str, Path], machine: MachineSpec, *, name: Optional[str] = None
    ) -> "Trace":
        """Load a trace written by :meth:`to_csv`."""
        jobs: List[Job] = []
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None or tuple(reader.fieldnames) != CSV_FIELDS:
                raise TraceError(
                    f"{path}: unexpected header {reader.fieldnames}, "
                    f"expected {CSV_FIELDS}"
                )
            for row in reader:
                deps = frozenset(
                    int(d) for d in row["deps"].split(";") if d.strip()
                )
                jobs.append(
                    Job(
                        jid=int(row["jid"]),
                        submit_time=float(row["submit_time"]),
                        runtime=float(row["runtime"]),
                        walltime=float(row["walltime"]),
                        nodes=int(row["nodes"]),
                        bb=float(row["bb"]),
                        ssd=float(row["ssd"]),
                        deps=deps,
                        user=row["user"],
                    )
                )
        return cls(name=name or Path(path).stem, machine=machine, jobs=tuple(jobs))
