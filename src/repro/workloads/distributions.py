"""Statistical distributions for synthetic HPC workload generation.

Shapes follow the well-documented features of production batch logs
(Feitelson's workload archive, the Cori/Theta characterisations in §4.1):

* job sizes cluster at powers of two, with capacity systems dominated by
  small jobs and capability systems by large ones;
* runtimes are roughly lognormal with a heavy right tail, truncated by
  the site's maximum walltime;
* user walltime estimates overestimate runtimes by a wide, often
  quantised margin (Mu'alem & Feitelson 2001);
* interarrivals are approximately exponential at the hour scale.

Every sampler takes an explicit :class:`numpy.random.Generator` so traces
are exactly reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def truncated_lognormal(
    rng: np.random.Generator,
    size: int,
    *,
    mean: float,
    sigma: float,
    low: float,
    high: float,
) -> np.ndarray:
    """Lognormal samples clipped into ``[low, high]``.

    ``mean`` is the *median* of the underlying lognormal (``exp(mu)``),
    which is the intuitive handle when matching a trace ("median runtime
    is ~40 minutes").
    """
    if not 0 < low <= high:
        raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
    if mean <= 0 or sigma <= 0:
        raise ConfigurationError("mean and sigma must be positive")
    samples = rng.lognormal(mean=np.log(mean), sigma=sigma, size=size)
    return np.clip(samples, low, high)


def power_of_two_sizes(
    rng: np.random.Generator,
    size: int,
    *,
    min_nodes: int,
    max_nodes: int,
    log_mean: float,
    log_sigma: float,
    exact_fraction: float = 0.8,
) -> np.ndarray:
    """Node counts with the characteristic power-of-two clustering.

    A lognormal over node counts is sampled, then a fraction
    ``exact_fraction`` of the jobs snap to the nearest power of two (the
    rest keep their raw value), reproducing the spiky size histograms of
    real logs.  All values are clipped into ``[min_nodes, max_nodes]``.
    """
    if not 1 <= min_nodes <= max_nodes:
        raise ConfigurationError(
            f"need 1 <= min_nodes <= max_nodes, got [{min_nodes}, {max_nodes}]"
        )
    if not 0.0 <= exact_fraction <= 1.0:
        raise ConfigurationError("exact_fraction must be a probability")
    raw = rng.lognormal(mean=log_mean, sigma=log_sigma, size=size)
    raw = np.clip(raw, min_nodes, max_nodes)
    snap = rng.random(size) < exact_fraction
    snapped = 2.0 ** np.round(np.log2(raw))
    nodes = np.where(snap, snapped, raw)
    return np.clip(np.round(nodes), min_nodes, max_nodes).astype(np.int64)


def walltime_estimates(
    rng: np.random.Generator,
    runtimes: np.ndarray,
    *,
    exact_fraction: float = 0.15,
    max_factor: float = 4.0,
    quantum: float = 1800.0,
) -> np.ndarray:
    """User walltime requests derived from actual runtimes.

    A fraction of users request exactly their runtime; the rest
    overestimate by a uniform factor in ``(1, max_factor]``, rounded up to
    the scheduler's request ``quantum`` (30 min by default) — matching the
    quantised, pessimistic estimates real logs show.
    """
    if max_factor < 1.0:
        raise ConfigurationError(f"max_factor must be >= 1, got {max_factor}")
    runtimes = np.asarray(runtimes, dtype=float)
    factors = rng.uniform(1.0, max_factor, size=runtimes.shape)
    exact = rng.random(runtimes.shape) < exact_fraction
    estimates = np.where(exact, runtimes, runtimes * factors)
    if quantum > 0:
        estimates = np.ceil(estimates / quantum) * quantum
    return np.maximum(estimates, runtimes.clip(min=1.0))


def exponential_interarrivals(
    rng: np.random.Generator, size: int, *, rate: float
) -> np.ndarray:
    """Poisson-process interarrival gaps (seconds) at ``rate`` jobs/sec."""
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    return rng.exponential(scale=1.0 / rate, size=size)


def bounded_pareto(
    rng: np.random.Generator,
    size: int,
    *,
    alpha: float,
    low: float,
    high: float,
) -> np.ndarray:
    """Bounded-Pareto samples in ``[low, high]`` (heavy-tailed BB requests).

    Inverse-CDF sampling of the Pareto distribution truncated to the
    bounds; ``alpha`` near 1 gives the very heavy tail that burst-buffer
    request logs display ([1 GB, 285 TB] spans five orders of magnitude).
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if not 0 < low < high:
        raise ConfigurationError(f"need 0 < low < high, got [{low}, {high}]")
    u = rng.random(size)
    la, ha = low**alpha, high**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def choice_weighted(
    rng: np.random.Generator,
    values: Sequence[float],
    weights: Sequence[float],
    size: int,
) -> np.ndarray:
    """Weighted sampling with replacement from a discrete pool."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot sample from an empty pool")
    if weights.shape != values.shape or (weights < 0).any() or weights.sum() == 0:
        raise ConfigurationError("weights must be non-negative and sum > 0")
    return rng.choice(values, size=size, p=weights / weights.sum())
