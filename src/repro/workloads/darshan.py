"""Synthetic Darshan-style I/O logs and burst-buffer request extraction.

§4.1: the Theta trace lacks burst-buffer request sizes, so the paper joins
it with Darshan I/O characterisation logs — "we use a corresponding
Darshan trace to extract the amount of data moved between PFS and nodes
and consider this amount to be the potential burst buffer requests"; 40 %
of Theta jobs had Darshan recording, and the 17.18 % of jobs with more
than 1 GB transferred received that volume as their BB request.

We cannot ship ALCF's Darshan logs, so this module synthesises records
with the same statistical profile and implements the *identical
extraction rule*, exercising the same trace-enhancement code path
(DESIGN.md §Substitutions 2).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union


from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..simulator.job import Job
from ..units import GB, TB
from .distributions import bounded_pareto
from .trace import Trace

#: Jobs moving more than this many GB get a burst-buffer request (§4.1).
BB_EXTRACTION_THRESHOLD = 1.0 * GB


@dataclass(frozen=True)
class DarshanRecord:
    """One job's I/O summary, as Darshan's job-level counters expose it."""

    jid: int
    bytes_read: float      #: GB read from the parallel file system
    bytes_written: float   #: GB written to the parallel file system
    n_files: int = 1

    @property
    def data_moved(self) -> float:
        """Total GB moved between PFS and compute nodes."""
        return self.bytes_read + self.bytes_written


def synthesize_darshan_log(
    trace: Trace,
    *,
    instrumented_fraction: float = 0.40,
    heavy_io_fraction: float = 0.4295,
    io_alpha: float = 0.5,
    io_max: float = 285.0 * TB,
    seed: SeedLike = None,
) -> List[DarshanRecord]:
    """Generate Darshan records for a fraction of the trace's jobs.

    Defaults mirror §4.1's Theta numbers: 40 % of jobs are instrumented,
    and 17.18 % of *all* jobs (= 42.95 % of instrumented ones) move more
    than 1 GB; heavy movers draw a bounded-Pareto volume up to 285 TB,
    light movers stay under the 1 GB threshold.
    """
    if not 0 <= instrumented_fraction <= 1 or not 0 <= heavy_io_fraction <= 1:
        raise ConfigurationError("fractions must be probabilities")
    rng = make_rng(seed)
    records: List[DarshanRecord] = []
    for job in trace.jobs:
        if rng.random() >= instrumented_fraction:
            continue
        if rng.random() < heavy_io_fraction:
            volume = float(
                bounded_pareto(
                    rng, 1, alpha=io_alpha, low=BB_EXTRACTION_THRESHOLD, high=io_max
                )[0]
            )
        else:
            volume = float(rng.uniform(0.0, BB_EXTRACTION_THRESHOLD))
        write_share = float(rng.uniform(0.3, 0.9))
        records.append(
            DarshanRecord(
                jid=job.jid,
                bytes_read=volume * (1.0 - write_share),
                bytes_written=volume * write_share,
                n_files=int(rng.integers(1, 64)),
            )
        )
    return records


def extract_bb_requests(
    records: Iterable[DarshanRecord],
    *,
    threshold: float = BB_EXTRACTION_THRESHOLD,
) -> Dict[int, float]:
    """The paper's extraction rule: data moved → BB request when > 1 GB."""
    return {
        r.jid: r.data_moved for r in records if r.data_moved > threshold
    }


def enhance_trace_with_darshan(
    trace: Trace,
    records: Iterable[DarshanRecord],
    *,
    threshold: float = BB_EXTRACTION_THRESHOLD,
    name: Optional[str] = None,
) -> Trace:
    """Attach Darshan-derived BB requests to a trace (§4.1 Theta pipeline).

    Jobs without a qualifying record keep their existing request.
    Requests are capped at the machine's schedulable burst buffer.
    """
    requests = extract_bb_requests(records, threshold=threshold)
    cap = trace.machine.schedulable_bb
    jobs = []
    for job in trace.jobs:
        bb = requests.get(job.jid)
        if bb is None:
            jobs.append(job)
        else:
            jobs.append(
                Job(
                    jid=job.jid,
                    submit_time=job.submit_time,
                    runtime=job.runtime,
                    walltime=job.walltime,
                    nodes=job.nodes,
                    bb=min(bb, cap),
                    ssd=job.ssd,
                    deps=job.deps,
                    user=job.user,
                )
            )
    return trace.with_jobs(jobs, name=name or trace.name)


# --- log file I/O (so the pipeline can run from files, like the real one) -----

_CSV_FIELDS = ("jid", "bytes_read", "bytes_written", "n_files")


def write_darshan_csv(
    records: Sequence[DarshanRecord], path: Union[str, Path]
) -> None:
    """Persist synthetic Darshan records as CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for r in records:
            # repr-precision floats so the round trip is exact
            writer.writerow([r.jid, repr(r.bytes_read), repr(r.bytes_written), r.n_files])


def read_darshan_csv(path: Union[str, Path]) -> List[DarshanRecord]:
    """Load records written by :func:`write_darshan_csv`."""
    records: List[DarshanRecord] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _CSV_FIELDS:
            raise ConfigurationError(f"{path}: unexpected Darshan CSV header")
        for row in reader:
            records.append(
                DarshanRecord(
                    jid=int(row["jid"]),
                    bytes_read=float(row["bytes_read"]),
                    bytes_written=float(row["bytes_written"]),
                    n_files=int(row["n_files"]),
                )
            )
    return records
