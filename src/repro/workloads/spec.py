"""Machine specifications for the paper's two production systems (Table 2).

* **Cori** (NERSC) — capacity computing: 12,076 nodes, 1.8 PB shared Cray
  DataWarp burst buffer, Slurm/FCFS base scheduling.  One third of the
  burst buffer is persistently reserved (§4.1), which the cluster models
  as a capacity carve-out.
* **Theta** (ALCF) — capability computing: 4,392 nodes, Cobalt/WFP base
  scheduling.  Theta has no shared burst buffer; the paper assumes a
  2.16 PB one, scaled from Cori's memory:burst-buffer ratio (§4.1).  For
  the §5 case study each node carries a local SSD, split 50/50 between
  128 GB and 256 GB capacities.

Specs are immutable and convertible into fresh
:class:`~repro.simulator.cluster.Cluster` instances per run.  For
laptop-scale experiments :meth:`MachineSpec.scaled` shrinks node and
burst-buffer capacity by an integer factor while preserving every ratio
that drives the scheduling comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..simulator.cluster import Cluster
from ..units import PB


@dataclass(frozen=True)
class MachineSpec:
    """An HPC system as the scheduler sees it.

    ``ssd_tiers`` maps local-SSD capacity (GB) → node count; ``None`` means
    no local SSDs.  ``base_policy`` names the site's priority policy
    (``"fcfs"`` or ``"wfp"``).
    """

    name: str
    nodes: int
    bb_capacity: float
    base_policy: str = "fcfs"
    bb_reserved_fraction: float = 0.0
    ssd_tiers: Optional[Tuple[Tuple[float, int], ...]] = None

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError(f"{self.name}: nodes must be positive")
        if self.bb_capacity < 0:
            raise ConfigurationError(f"{self.name}: negative burst buffer capacity")
        if self.base_policy not in ("fcfs", "wfp"):
            raise ConfigurationError(
                f"{self.name}: unknown base policy {self.base_policy!r}"
            )
        if self.ssd_tiers is not None:
            total = sum(n for _, n in self.ssd_tiers)
            if total != self.nodes:
                raise ConfigurationError(
                    f"{self.name}: SSD tiers cover {total} nodes, spec has {self.nodes}"
                )

    @property
    def schedulable_bb(self) -> float:
        """Burst buffer available to the scheduler after reservations."""
        return self.bb_capacity * (1.0 - self.bb_reserved_fraction)

    @property
    def ssd_total(self) -> float:
        """Aggregate local SSD over all nodes (GB)."""
        if self.ssd_tiers is None:
            return 0.0
        return sum(cap * n for cap, n in self.ssd_tiers)

    def make_cluster(self) -> Cluster:
        """Fresh mutable cluster instance for one simulation run."""
        tiers: Optional[Dict[float, int]] = (
            dict(self.ssd_tiers) if self.ssd_tiers is not None else None
        )
        return Cluster(
            nodes=self.nodes,
            bb_capacity=self.bb_capacity,
            ssd_tiers=tiers,
            bb_reserved_fraction=self.bb_reserved_fraction,
        )

    def scaled(self, factor: int) -> "MachineSpec":
        """Shrink the machine by an integer factor (≥ 1).

        Node counts, burst buffer, and SSD tier counts divide by
        ``factor``; job generators built against a scaled spec produce
        proportionally scaled demands, so contention behaviour (the thing
        the comparison measures) is preserved while simulations run
        orders of magnitude faster.
        """
        if factor < 1:
            raise ConfigurationError(f"scale factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        nodes = max(self.nodes // factor, 1)
        tiers = None
        if self.ssd_tiers is not None:
            scaled = [(cap, max(n // factor, 0)) for cap, n in self.ssd_tiers]
            # Rounding can strand nodes; pin the total to the scaled count.
            covered = sum(n for _, n in scaled)
            if covered < nodes:
                cap0, n0 = scaled[0]
                scaled[0] = (cap0, n0 + nodes - covered)
            elif covered > nodes:
                nodes = covered
            tiers = tuple((cap, n) for cap, n in scaled if n > 0)
        return replace(
            self,
            name=f"{self.name}/{factor}",
            nodes=nodes,
            bb_capacity=self.bb_capacity / factor,
            ssd_tiers=tiers,
        )

    def with_ssd_split(
        self, small: float = 128.0, large: float = 256.0, small_fraction: float = 0.5
    ) -> "MachineSpec":
        """Spec variant with the §5 heterogeneous local-SSD node split."""
        if not 0.0 <= small_fraction <= 1.0:
            raise ConfigurationError("small_fraction must be in [0, 1]")
        n_small = int(round(self.nodes * small_fraction))
        tiers = tuple(
            (cap, n)
            for cap, n in ((small, n_small), (large, self.nodes - n_small))
            if n > 0
        )
        return replace(self, ssd_tiers=tiers)


#: Cori per Table 2 (12,076 nodes, 1.8 PB DataWarp, 1/3 persistently reserved).
CORI = MachineSpec(
    name="Cori",
    nodes=12_076,
    bb_capacity=1.8 * PB,
    base_policy="fcfs",
    bb_reserved_fraction=1.0 / 3.0,
)

#: Theta per Table 2 with the paper's assumed 2.16 PB shared burst buffer.
THETA = MachineSpec(
    name="Theta",
    nodes=4_392,
    bb_capacity=2.16 * PB,
    base_policy="wfp",
)

#: Registry used by the CLI and experiment configs.
MACHINES: Dict[str, MachineSpec] = {"cori": CORI, "theta": THETA}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by case-insensitive name."""
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
