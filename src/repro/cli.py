"""Command-line interface: regenerate any paper table or figure.

Usage::

    bbsched list                          # available experiments
    bbsched run table1                    # print Table 1(b)
    bbsched run fig6_7 --scale default    # Figures 6 & 7 at a given scale
    bbsched run all --scale smoke         # everything (CI sanity)
    bbsched workloads --scale default     # workload summary (Table 2 view)
    bbsched simulate Theta-S4 BBSched     # one simulation run

Every experiment honours the ``REPRO_SCALE`` environment variable, and
``--scale`` overrides it.

Resilience plumbing: ``--faults mild|harsh`` replays any experiment or
simulation under a named fault scenario (``--node-mtbf`` etc. build a
custom one for ``simulate``), and ``--watchdog SECONDS`` bounds each
selection with graceful degradation::

    bbsched run fig6_7 --faults mild      # Figures 6 & 7 on flaky hardware
    bbsched simulate Theta-S4 BBSched --node-mtbf 21600 --watchdog 0.5

Durability (see ``docs/checkpointing.md``): ``simulate --checkpoint PATH``
snapshots the run every N simulated hours and on SIGINT/SIGTERM (the
process exits 128+signum after the final save), ``--resume-from PATH``
continues a snapshot to completion, and the ``grid`` command runs the §4
evaluation grid with an append-only results ledger so a killed grid
reruns only its unfinished cells::

    bbsched simulate Theta-S4 BBSched --checkpoint run.ckpt
    bbsched simulate Theta-S4 BBSched --resume-from run.ckpt
    bbsched grid --scale smoke --ledger grid.jsonl
    bbsched grid --scale smoke --ledger grid.jsonl --resume

Service mode (see ``docs/service.md``): ``serve`` runs the crash-tolerant
simulation service — a daemon on a Unix socket with admission control, a
self-healing worker pool, and a durable request journal — and ``submit``
sends it work::

    bbsched serve --socket /tmp/bb.sock --journal /tmp/bb.jsonl --deadline 300
    bbsched submit Theta-S4 BBSched --socket /tmp/bb.sock --scale smoke

Observability (see ``docs/observability.md``): ``--trace PATH`` records a
structured trace of the run (``--trace-format chrome`` produces a
Perfetto/``chrome://tracing``-loadable file), ``--metrics-out PATH``
writes the counters/gauges/histograms as JSON, and both print the
end-of-run telemetry report::

    bbsched sim Theta-S4 BBSched --trace out.json --trace-format chrome
    bbsched simulate Theta-S2 BBSched --metrics-out metrics.json
"""

from __future__ import annotations

import argparse
import dataclasses
import signal
import sys
import threading
from contextlib import contextmanager, nullcontext
from typing import Callable, Dict, Iterator, Optional, Tuple

from . import experiments as exp
from .checkpoint import CheckpointConfig
from .errors import ReproError, SimulationInterrupted, TaskError
from .experiments import report
from .methods import METHODS_SECTION4
from .resilience import SCENARIOS, FaultScenario, RetryPolicy, get_scenario
from .solvers import available_window_solvers, solver_matrix
from .telemetry import (
    Tracer,
    render_report,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from .units import fmt_duration, fmt_storage

#: experiment name → (run, render) callables.
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (exp.table1.run, exp.table1.render),
    "fig2": (exp.fig2.run, exp.fig2.render),
    "fig4": (exp.fig4.run, exp.fig4.render),
    "fig5": (exp.fig5.run, exp.fig5.render),
    "fig6_7": (exp.fig6_7.run, exp.fig6_7.render),
    "fig8": (exp.fig8.run, exp.fig8.render),
    "fig9_11": (exp.fig9_11.run, exp.fig9_11.render),
    "fig12": (exp.fig12.run, exp.fig12.render),
    "fig13": (exp.fig13.run, exp.fig13.render),
    "table3": (exp.table3.run, exp.table3.render),
    "overheads": (exp.overheads.run, exp.overheads.render),
    "fig14": (exp.fig14.run, exp.fig14.render),
}


def _cmd_list(args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("  all")
    return 0


def _resolve_scale(args: argparse.Namespace) -> exp.Scale:
    """The requested scale, with any resilience overrides folded in."""
    scale = exp.get_scale(args.scale)
    overrides = {}
    if getattr(args, "faults", None):
        overrides["faults"] = get_scenario(args.faults)
    if getattr(args, "watchdog", None) is not None:
        overrides["watchdog_budget"] = args.watchdog
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _custom_scenario(args: argparse.Namespace) -> Optional[FaultScenario]:
    """A FaultScenario from the simulate command's raw knobs, or None."""
    if not (args.node_mtbf or args.bb_mtbf or args.job_mtbf):
        return None
    return FaultScenario(
        seed=args.fault_seed,
        node_mtbf=args.node_mtbf,
        node_mttr=args.node_mttr,
        nodes_per_failure=args.nodes_per_failure,
        bb_mtbf=args.bb_mtbf,
        job_mtbf=args.job_mtbf,
    )


def _exporting(args: argparse.Namespace) -> bool:
    """Did the user ask for any telemetry output?"""
    return bool(getattr(args, "trace", None) or getattr(args, "metrics_out", None))


def _export_telemetry(args: argparse.Namespace, tracer: Tracer,
                      metrics=None, spans=None, meta=None) -> None:
    """Write the requested trace / metrics files."""
    if getattr(args, "trace", None):
        if args.trace_format == "chrome":
            write_chrome_trace(args.trace, tracer, metrics, meta)
        else:
            write_jsonl(args.trace, tracer, metrics, meta)
        print(f"wrote {args.trace_format} trace to {args.trace}")
    if getattr(args, "metrics_out", None):
        from .telemetry import MetricsRegistry

        write_metrics_json(args.metrics_out, metrics or MetricsRegistry(),
                           spans=spans, meta=meta)
        print(f"wrote metrics to {args.metrics_out}")


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args)
    # The CLI's single timing source is a telemetry tracer; it is installed
    # process-wide (so engines and solvers record into it) only when a
    # trace was requested — untraced runs keep the zero-overhead default.
    tracer = Tracer()
    with use_tracer(tracer) if _exporting(args) else nullcontext():
        for name in names:
            run, render = EXPERIMENTS[name]
            with tracer.span("experiment", experiment=name, scale=scale.name) as sp:
                if name == "table1":
                    result = run(generations=scale.generations * 5)
                else:
                    result = run(scale)
            print(f"=== {name} (scale={scale.name}, {sp.dur:.1f}s) ===")
            print(render(result))
            print()
    if _exporting(args):
        print(render_report(tracer=tracer, title="telemetry report"))
        _export_telemetry(args, tracer,
                          meta={"command": "run", "scale": scale.name})
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    scale = exp.get_scale(args.scale)
    traces = dict(exp.get_all_workloads(scale))
    traces.update(exp.get_ssd_workloads(scale))
    rows = []
    for name, tr in traces.items():
        t0, t1 = tr.span()
        rows.append([
            name,
            len(tr),
            tr.machine.nodes,
            fmt_storage(tr.machine.schedulable_bb),
            f"{100 * tr.bb_fraction():.1f}%",
            fmt_storage(tr.total_bb_volume()),
            fmt_duration(t1 - t0),
        ])
    print(report.format_table(
        rows,
        ["workload", "jobs", "nodes", "sched. BB", "BB jobs", "BB volume", "span"],
        title=f"workloads at scale={scale.name}",
    ))
    return 0


@contextmanager
def _sigterm_as_interrupt(fired: list) -> Iterator[None]:
    """Turn SIGTERM into KeyboardInterrupt so `finally` blocks run.

    Used for runs *without* a checkpoint config (which installs its own
    graceful handlers); without this a SIGTERM would skip the telemetry
    flush.  No-op off the main thread, where handlers cannot be set.

    The signal number is also appended to ``fired`` before raising: a
    KeyboardInterrupt that lands inside a C extension can be swallowed
    and re-surfaced as an unrelated error (numpy's structured-array
    comparisons mask a pending interrupt with their own TypeError), so
    callers need an exception-independent way to recognize the
    interrupt.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum: int, frame) -> None:
        fired.append(signum)
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _flush_interrupted_telemetry(args: argparse.Namespace, tracer: Tracer,
                                 **meta) -> None:
    """Best-effort telemetry export when a run did not finish."""
    if not _exporting(args):
        return
    try:
        _export_telemetry(args, tracer, meta={
            "command": "simulate", "interrupted": True, **meta})
    except OSError as exc:  # pragma: no cover - disk-full etc.
        print(f"telemetry flush failed: {exc}", file=sys.stderr)


def _cmd_simulate(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    custom = _custom_scenario(args)
    if custom is not None:
        scale = dataclasses.replace(scale, faults=custom)
    retry = RetryPolicy(max_attempts=args.max_attempts) if args.max_attempts is not None else None
    checkpoint = None
    if args.checkpoint:
        checkpoint = CheckpointConfig(
            path=args.checkpoint, every_hours=args.checkpoint_every,
            handle_signals=True,
        )
    trace = exp.get_workload(args.workload, scale)
    tracer = Tracer()
    sigterm_fired: list = []
    signal_scope = (nullcontext() if checkpoint is not None
                    else _sigterm_as_interrupt(sigterm_fired))
    with use_tracer(tracer) if _exporting(args) else nullcontext():
        with tracer.span("simulate", workload=args.workload, method=args.method,
                         scale=scale.name) as sim_span:
            try:
                with signal_scope:
                    result = exp.run_one(trace, args.method, scale, seed=args.seed,
                                         retry=retry, checkpoint=checkpoint,
                                         resume_from=args.resume_from,
                                         eval_cache=not args.no_eval_cache,
                                         fast_engine=not args.no_fast_engine,
                                         solver=args.solver,
                                         yardstick=args.yardstick)
            except SimulationInterrupted as exc:
                # Orderly signal path: the final checkpoint is already on
                # disk; flush exporters and exit with the signal's code.
                print(f"interrupted at sim-time {exc.sim_time:.0f}s; "
                      f"checkpoint: {exc.checkpoint_path}", file=sys.stderr)
                print(f"resume with: bbsched simulate {args.workload} "
                      f"{args.method} --scale {scale.name} "
                      f"--resume-from {exc.checkpoint_path}", file=sys.stderr)
                _flush_interrupted_telemetry(
                    args, tracer, workload=args.workload, method=args.method,
                    checkpoint=exc.checkpoint_path)
                return 128 + exc.signum if exc.signum is not None else 3
            except KeyboardInterrupt:
                # Un-checkpointed interrupt (or second signal): nothing to
                # resume from, but the telemetry buffers still flush.
                print("interrupted (no checkpoint written)", file=sys.stderr)
                _flush_interrupted_telemetry(
                    args, tracer, workload=args.workload, method=args.method)
                return 130
            except Exception:
                if not sigterm_fired:
                    raise
                # The handler fired but its KeyboardInterrupt came back as
                # something else — the interrupt landed inside a C
                # extension that masked it (see _sigterm_as_interrupt).
                # Same orderly exit as the unmasked path.
                print("interrupted (no checkpoint written)", file=sys.stderr)
                _flush_interrupted_telemetry(
                    args, tracer, workload=args.workload, method=args.method)
                return 130
    dt = sim_span.dur
    s = result.summary
    print(f"{args.method} on {args.workload} (scale={scale.name}, {dt:.1f}s):")
    print(f"  node usage        {100 * s.node_usage:.2f}%")
    print(f"  burst buffer usage {100 * s.bb_usage:.2f}%")
    print(f"  avg wait          {report.hours(s.avg_wait)}")
    print(f"  avg slowdown      {s.avg_slowdown:.2f}")
    print(f"  jobs measured     {s.n_jobs}")
    print(f"  selector calls    {result.selector_calls} "
          f"({1e3 * result.mean_selector_time:.1f}ms each)")
    g = result.optimality_gap
    if g is not None:
        print("  --- optimality gap (method vs exact) ---")
        print(f"  measured passes   {g['count']:.0f} "
              f"(skipped {g['skipped']:.0f})")
        print(f"  mean / p95 / max  {100 * g['mean']:.4f}% / "
              f"{100 * g['p95']:.4f}% / {100 * g['max']:.4f}%")
    r = result.resilience
    if r is not None:
        print("  --- resilience ---")
        print(f"  node failures     {r.node_failures} "
              f"(mean online {100 * r.mean_nodes_online:.2f}%)")
        print(f"  bb degrades       {r.bb_degrades}")
        print(f"  killed / requeued {r.killed_jobs} / {r.requeued_jobs}")
        print(f"  abandoned jobs    {r.abandoned_jobs}")
        print(f"  lost node-hours   {r.lost_node_hours:.1f}")
        print(f"  usage vs online   {100 * r.node_usage_degraded:.2f}%")
        print(f"  watchdog fallbacks {r.fallback_calls} "
              f"({100 * r.fallback_rate:.1f}% of calls)")
    if _exporting(args):
        snap = result.telemetry
        metrics = snap.metrics if snap is not None else None
        print()
        print(render_report(tracer=tracer, metrics=metrics,
                            title=f"telemetry: {args.method} on {args.workload}"))
        _export_telemetry(
            args, tracer, metrics=metrics,
            spans=snap.spans if snap is not None else None,
            meta={"command": "simulate", "workload": args.workload,
                  "method": args.method, "scale": scale.name, "seed": args.seed},
        )
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    rows = [
        [row["name"], "exact" if row["exact"] else "heuristic", row["description"]]
        for row in solver_matrix()
    ]
    print(report.format_table(
        rows, ["solver", "kind", "description"],
        title="window solvers (--solver NAME; see docs/solvers.md)",
    ))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    # Grid cells re-resolve the scale by name inside pool workers, so only
    # named scales (no ad-hoc fault overrides) are offered here.
    scale = exp.get_scale(args.scale)
    workloads = args.workloads.split(",") if args.workloads else list(exp.ALL_WORKLOADS)
    methods = args.methods.split(",") if args.methods else list(METHODS_SECTION4)
    if args.resume and not args.ledger:
        print("--resume requires --ledger", file=sys.stderr)
        return 2
    try:
        grid = exp.run_grid(
            scale, workloads=workloads, methods=methods, workers=args.workers,
            ledger=args.ledger, resume=args.resume,
            task_timeout=args.task_timeout, task_retries=args.task_retries,
        )
    except TaskError as exc:
        print(f"grid cell failed: {exc}", file=sys.stderr)
        if exc.traceback_text:
            print(exc.traceback_text, file=sys.stderr)
        if args.ledger:
            print(f"completed cells are preserved in {args.ledger}; "
                  f"rerun with --resume to retry only the rest", file=sys.stderr)
        return 1
    for metric in args.metric or ("node_usage", "bb_usage", "avg_wait"):
        table = exp.metric_table(grid, metric, workloads, methods)
        rows = []
        for w in workloads:
            row: list = [w]
            for m in methods:
                value = table.get(w, {}).get(m)
                if value is None:
                    row.append("-")
                elif metric == "avg_wait":
                    row.append(report.hours(value))
                elif metric.endswith("usage"):
                    row.append(f"{100 * value:.2f}%")
                else:
                    row.append(f"{value:.3f}")
            rows.append(row)
        print(report.format_table(rows, ["workload"] + methods,
                                  title=f"{metric} (scale={scale.name})"))
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfig, ServiceDaemon

    config = ServiceConfig(
        socket_path=args.socket,
        journal_path=args.journal,
        workers=args.workers,
        high_water=args.high_water,
        policy=args.policy,
        deadline=args.deadline,
        retries=args.retries,
        quarantine_after=args.quarantine_after,
        allow_chaos=args.allow_chaos,
        degrade=not args.no_degrade,
        tcp=args.tcp,
        max_connections=args.max_connections,
        io_deadline=args.io_deadline,
        shard=args.shard,
        shm_traces=args.shm_traces,
    )
    daemon = ServiceDaemon(config)

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        # SIGTERM drains the backlog then exits; SIGINT abandons it
        # (queued/in-flight work is still in the journal for next boot).
        try:
            loop.add_signal_handler(
                signal.SIGTERM, daemon.request_shutdown, "graceful")
            loop.add_signal_handler(
                signal.SIGINT, daemon.request_shutdown, "now")
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        ready = asyncio.Event()
        task = loop.create_task(daemon.serve(ready))
        await ready.wait()
        listeners = args.socket
        if daemon.tcp_address is not None:
            listeners += f" + tcp {daemon.tcp_address[0]}:{daemon.tcp_address[1]}"
        shard = f", shard: {args.shard}" if args.shard else ""
        print(f"serving on {listeners} "
              f"(journal: {args.journal or 'none'}, "
              f"policy: {args.policy}, workers: {args.workers}{shard})",
              flush=True)
        if daemon.recovered:
            print(f"recovered {daemon.recovered} unfinished request(s) "
                  f"from the journal", flush=True)
        await task

    asyncio.run(_serve())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service import ClientRetryPolicy, ServiceClient
    from .service.shards import ShardRouter

    if not args.socket and not args.shards:
        print("error: submit needs --socket or --shards", file=sys.stderr)
        return 2
    retry = (ClientRetryPolicy(attempts=max(args.client_retries, 1))
             if args.client_retries is not None else None)
    params: dict = {"workload": args.workload, "method": args.method}
    if args.scale:
        params["scale"] = args.scale
    if args.seed is not None:
        params["seed"] = args.seed
    if args.generations is not None:
        params["generations"] = args.generations
    if args.nodes_hint is not None:
        params["nodes_hint"] = args.nodes_hint
    if args.walltime_hint is not None:
        params["walltime_hint"] = args.walltime_hint
    if args.chaos:
        params["chaos"] = json.loads(args.chaos)
    if args.key:
        params["idempotency_key"] = args.key
    if args.shards:
        router = ShardRouter(
            [e for e in args.shards.split(",") if e],
            timeout=args.connect_timeout, retry=retry,
            hedge_delay=args.hedge)
        routed = router.submit(**params)
        extra = ("deduped" if routed.deduped else
                 "adopted" if routed.adopted else
                 "failover" if routed.failover else "primary")
        print(f"accepted as {routed.request_id} on {routed.endpoint} "
              f"({extra}, key {routed.key})")
        if args.no_wait:
            return 0
        status = router.wait(routed, timeout=args.timeout)
        rid = routed.request_id
    else:
        client = ServiceClient(args.socket, timeout=args.connect_timeout,
                               retry=retry, hedge_delay=args.hedge)
        accepted = client.submit(**params)
        rid = accepted["id"]
        if accepted.get("deduped"):
            print(f"deduped to existing request {rid} "
                  f"(state {accepted.get('state')})")
        else:
            print(f"accepted as {rid} (queue depth {accepted['depth']}, "
                  f"degrade level {accepted['degrade']})")
        if args.no_wait:
            return 0
        status = client.wait(rid, timeout=args.timeout)
    state = status["state"]
    if state != "done":
        print(f"{rid} {state}: {status.get('error')}", file=sys.stderr)
        return 1
    summary = status.get("summary") or {}
    metrics = summary.get("metrics") or {}
    print(f"{rid} done: {args.method} on {args.workload}")
    for name in ("node_usage", "bb_usage", "avg_wait", "avg_slowdown"):
        if name in metrics:
            value = metrics[name]
            shown = (f"{100 * value:.2f}%" if name.endswith("usage")
                     else f"{value:.3f}")
            print(f"  {name:<14} {shown}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .service.shards import ShardRouter

    endpoints = [e for e in args.shards.split(",") if e]
    router = ShardRouter(endpoints, seed=args.seed)
    if args.check:
        health = router.check()
        for endpoint, up in sorted(health.items()):
            print(f"{endpoint:<40} {'up' if up else 'DOWN'}")
        return 0 if all(health.values()) else 1
    keys = args.key if args.key else [router.new_key()
                                      for _ in range(args.sample)]
    for key in keys:
        info = router.route(key)
        print(f"{key} -> {info['target']}  "
              f"(preference: {' > '.join(info['preference'])})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bbsched",
        description="BBSched (HPDC'19) reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments")
    p_list.set_defaults(func=_cmd_list)

    def add_telemetry_flags(p: argparse.ArgumentParser, with_metrics: bool = True) -> None:
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record a structured trace of the run to PATH")
        p.add_argument("--trace-format", default="jsonl",
                       choices=("jsonl", "chrome"),
                       help="trace file format: JSON Lines or Chrome trace_event "
                            "(Perfetto-loadable)")
        if with_metrics:
            p.add_argument("--metrics-out", default=None, metavar="PATH",
                           help="write the run's telemetry metrics as JSON")

    p_run = sub.add_parser("run", help="run an experiment and print its table/figure")
    p_run.add_argument("experiment", help="experiment name or 'all'")
    p_run.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_run.add_argument("--faults", default=None, choices=sorted(SCENARIOS),
                       help="named fault scenario to inject into every run")
    p_run.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget per selection (graceful fallback)")
    add_telemetry_flags(p_run, with_metrics=False)
    p_run.set_defaults(func=_cmd_run)

    p_wl = sub.add_parser("workloads", help="summarise the evaluation workloads")
    p_wl.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_wl.set_defaults(func=_cmd_workloads)

    p_sim = sub.add_parser("simulate", aliases=["sim"],
                           help="run one (workload, method) simulation")
    p_sim.add_argument("workload", help="e.g. Theta-S4")
    p_sim.add_argument("method", help="e.g. BBSched")
    p_sim.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--solver", default=None,
                       choices=available_window_solvers(),
                       help="window solver for the optimization-backed "
                            "methods (default: the paper's GA); see "
                            "'bbsched solvers'")
    p_sim.add_argument("--yardstick", action="store_true",
                       help="re-solve every selection pass exactly (MILP) "
                            "and report the method-vs-exact optimality gap")
    p_sim.add_argument("--no-eval-cache", action="store_true",
                       help="disable the GA evaluation memo (slower reference "
                            "path; results are byte-identical either way)")
    p_sim.add_argument("--no-fast-engine", action="store_true",
                       help="disable the array-backed engine fast path "
                            "(slower reference path; results are "
                            "byte-identical either way)")
    p_sim.add_argument("--faults", default=None, choices=sorted(SCENARIOS),
                       help="named fault scenario to inject")
    p_sim.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget per selection (graceful fallback)")
    add_telemetry_flags(p_sim)
    fault = p_sim.add_argument_group(
        "custom fault scenario (overrides --faults; rates in seconds)")
    fault.add_argument("--node-mtbf", type=float, default=0.0,
                       help="mean time between node failures (0 disables)")
    fault.add_argument("--node-mttr", type=float, default=4 * 3600.0,
                       help="median node repair time")
    fault.add_argument("--nodes-per-failure", type=int, default=1,
                       help="nodes taken down per failure incident")
    fault.add_argument("--bb-mtbf", type=float, default=0.0,
                       help="mean time between burst-buffer degradations")
    fault.add_argument("--job-mtbf", type=float, default=0.0,
                       help="mean time between spontaneous job failures")
    fault.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault-injection streams")
    fault.add_argument("--max-attempts", type=int, default=None,
                       help="kills tolerated before a job is abandoned")
    ckpt = p_sim.add_argument_group(
        "checkpoint/resume (see docs/checkpointing.md)")
    ckpt.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="snapshot the run to PATH periodically and on "
                           "SIGINT/SIGTERM (exits 128+signum after saving)")
    ckpt.add_argument("--checkpoint-every", type=float, default=6.0,
                      metavar="SIM_HOURS",
                      help="simulated hours between periodic snapshots "
                           "(0 = only on signals)")
    ckpt.add_argument("--resume-from", default=None, metavar="PATH",
                      help="restore a checkpoint and continue it to completion")
    p_sim.set_defaults(func=_cmd_simulate)

    p_solvers = sub.add_parser(
        "solvers", help="list the window solvers --solver accepts")
    p_solvers.set_defaults(func=_cmd_solvers)

    p_grid = sub.add_parser(
        "grid", help="run the §4 evaluation grid (resumable via a ledger)")
    p_grid.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_grid.add_argument("--workloads", default=None, metavar="W1,W2,...",
                        help="comma-separated workload subset (default: all)")
    p_grid.add_argument("--methods", default=None, metavar="M1,M2,...",
                        help="comma-separated method subset (default: all §4)")
    p_grid.add_argument("--workers", type=int, default=None,
                        help="pool size (default: REPRO_WORKERS or cores-1)")
    p_grid.add_argument("--metric", action="append",
                        default=None, metavar="NAME",
                        help="metric table(s) to print (repeatable; default: "
                             "node_usage, bb_usage, avg_wait)")
    durable = p_grid.add_argument_group("durable execution")
    durable.add_argument("--ledger", default=None, metavar="PATH",
                         help="append each completed cell to this JSONL ledger "
                              "the moment it finishes")
    durable.add_argument("--resume", action="store_true",
                         help="skip cells already in the ledger; dispatch only "
                              "missing/failed ones")
    durable.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget per cell attempt")
    durable.add_argument("--task-retries", type=int, default=0,
                         help="re-dispatches allowed per crashed/hung cell")
    p_grid.set_defaults(func=_cmd_grid)

    p_serve = sub.add_parser(
        "serve", help="run the crash-tolerant simulation service daemon "
                      "(see docs/service.md)")
    p_serve.add_argument("--socket", required=True, metavar="PATH",
                         help="Unix socket to listen on")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="durable request journal (JSONL); with one, a "
                              "killed daemon resumes its backlog on restart")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="simulation worker processes")
    p_serve.add_argument("--high-water", type=int, default=16,
                         help="queued requests beyond which submits are shed "
                              "with a 429")
    p_serve.add_argument("--policy", default="fcfs", choices=("fcfs", "wfp"),
                         help="admission-queue ordering policy (the repo's "
                              "own base-scheduler policies)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-request wall-clock deadline; a claimed "
                              "request overdue by this much has its worker "
                              "SIGKILLed and is retried")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="extra attempts for a failing/hung request")
    p_serve.add_argument("--quarantine-after", type=int, default=2,
                         help="isolated worker crashes before a request is "
                              "quarantined as poison")
    p_serve.add_argument("--no-degrade", action="store_true",
                         help="disable the load-shedding degradation ladder")
    p_serve.add_argument("--allow-chaos", action="store_true",
                         help="honour chaos directives in requests "
                              "(fault-injection testing only)")
    p_serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                         help="also listen on TCP (port 0 picks a free "
                              "port); the listener sniffs and answers "
                              "HTTP/1.1 too")
    p_serve.add_argument("--max-connections", type=int, default=128,
                         help="concurrent-connection ceiling across both "
                              "listeners (excess sheds with 503)")
    p_serve.add_argument("--io-deadline", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-read/per-write deadline on every "
                              "connection (slow-loris guard)")
    p_serve.add_argument("--shard", default=None, metavar="I/N",
                         help="shard identity echoed by ping/stats, e.g. 0/4")
    p_serve.add_argument("--shm-traces", action="store_true",
                         help="publish trace columns to checksummed shared "
                              "memory; workers attach zero-copy instead of "
                              "regenerating")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a simulation request to a running service")
    p_submit.add_argument("workload", help="e.g. Theta-S4")
    p_submit.add_argument("method", help="e.g. BBSched")
    p_submit.add_argument("--socket", default=None, metavar="ENDPOINT",
                          help="the daemon's Unix socket path or host:port")
    p_submit.add_argument("--shards", default=None, metavar="EP1,EP2,...",
                          help="route across shard endpoints via consistent "
                               "hashing instead of a single --socket")
    p_submit.add_argument("--key", default=None, metavar="KEY",
                          help="idempotency key: makes the submit safely "
                               "retryable (resends dedup on the daemon)")
    p_submit.add_argument("--client-retries", type=int, default=None,
                          metavar="N",
                          help="total client attempts for transient "
                               "transport failures (default 4)")
    p_submit.add_argument("--hedge", type=float, default=None,
                          metavar="SECONDS",
                          help="hedge idempotent reads: duplicate a status/"
                               "wait that is slower than this, first answer "
                               "wins")
    p_submit.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument("--generations", type=int, default=None,
                          help="override the scale's GA generation count")
    p_submit.add_argument("--nodes-hint", type=int, default=None,
                          help="request size hint for the admission policy")
    p_submit.add_argument("--walltime-hint", type=float, default=None,
                          help="request duration hint for the admission policy")
    p_submit.add_argument("--chaos", default=None, metavar="JSON",
                          help="chaos directive, e.g. '{\"crash_attempts\": 1}' "
                               "(daemon must run with --allow-chaos)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the request id and return immediately")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for the result")
    p_submit.add_argument("--connect-timeout", type=float, default=10.0,
                          help="per-call socket timeout")
    p_submit.set_defaults(func=_cmd_submit)

    p_route = sub.add_parser(
        "route", help="inspect shard routing: where keys hash, which "
                      "shards are alive")
    p_route.add_argument("--shards", required=True, metavar="EP1,EP2,...",
                         help="shard endpoints (socket paths or host:port)")
    p_route.add_argument("--key", action="append", default=None,
                         help="key(s) to route (repeatable); default "
                              "samples random keys")
    p_route.add_argument("--sample", type=int, default=8,
                         help="random keys to sample without --key")
    p_route.add_argument("--seed", type=int, default=None,
                         help="seed for sampled keys")
    p_route.add_argument("--check", action="store_true",
                         help="ping every shard and report health "
                              "(exit 1 if any is down)")
    p_route.set_defaults(func=_cmd_route)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: unknown key {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
