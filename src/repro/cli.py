"""Command-line interface: regenerate any paper table or figure.

Usage::

    bbsched list                          # available experiments
    bbsched run table1                    # print Table 1(b)
    bbsched run fig6_7 --scale default    # Figures 6 & 7 at a given scale
    bbsched run all --scale smoke         # everything (CI sanity)
    bbsched workloads --scale default     # workload summary (Table 2 view)
    bbsched simulate Theta-S4 BBSched     # one simulation run

Every experiment honours the ``REPRO_SCALE`` environment variable, and
``--scale`` overrides it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from . import experiments as exp
from .errors import ReproError
from .experiments import report
from .units import fmt_duration, fmt_storage

#: experiment name → (run, render) callables.
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (exp.table1.run, exp.table1.render),
    "fig2": (exp.fig2.run, exp.fig2.render),
    "fig4": (exp.fig4.run, exp.fig4.render),
    "fig5": (exp.fig5.run, exp.fig5.render),
    "fig6_7": (exp.fig6_7.run, exp.fig6_7.render),
    "fig8": (exp.fig8.run, exp.fig8.render),
    "fig9_11": (exp.fig9_11.run, exp.fig9_11.render),
    "fig12": (exp.fig12.run, exp.fig12.render),
    "fig13": (exp.fig13.run, exp.fig13.render),
    "table3": (exp.table3.run, exp.table3.render),
    "overheads": (exp.overheads.run, exp.overheads.render),
    "fig14": (exp.fig14.run, exp.fig14.render),
}


def _cmd_list(args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("  all")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    scale = exp.get_scale(args.scale)
    for name in names:
        run, render = EXPERIMENTS[name]
        t0 = time.perf_counter()
        if name == "table1":
            result = run(generations=scale.generations * 5)
        else:
            result = run(scale)
        print(f"=== {name} (scale={scale.name}, "
              f"{time.perf_counter() - t0:.1f}s) ===")
        print(render(result))
        print()
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    scale = exp.get_scale(args.scale)
    traces = dict(exp.get_all_workloads(scale))
    traces.update(exp.get_ssd_workloads(scale))
    rows = []
    for name, tr in traces.items():
        t0, t1 = tr.span()
        rows.append([
            name,
            len(tr),
            tr.machine.nodes,
            fmt_storage(tr.machine.schedulable_bb),
            f"{100 * tr.bb_fraction():.1f}%",
            fmt_storage(tr.total_bb_volume()),
            fmt_duration(t1 - t0),
        ])
    print(report.format_table(
        rows,
        ["workload", "jobs", "nodes", "sched. BB", "BB jobs", "BB volume", "span"],
        title=f"workloads at scale={scale.name}",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scale = exp.get_scale(args.scale)
    trace = exp.get_workload(args.workload, scale)
    t0 = time.perf_counter()
    result = exp.run_one(trace, args.method, scale, seed=args.seed)
    dt = time.perf_counter() - t0
    s = result.summary
    print(f"{args.method} on {args.workload} (scale={scale.name}, {dt:.1f}s):")
    print(f"  node usage        {100 * s.node_usage:.2f}%")
    print(f"  burst buffer usage {100 * s.bb_usage:.2f}%")
    print(f"  avg wait          {report.hours(s.avg_wait)}")
    print(f"  avg slowdown      {s.avg_slowdown:.2f}")
    print(f"  jobs measured     {s.n_jobs}")
    print(f"  selector calls    {result.selector_calls} "
          f"({1e3 * result.mean_selector_time:.1f}ms each)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bbsched",
        description="BBSched (HPDC'19) reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment and print its table/figure")
    p_run.add_argument("experiment", help="experiment name or 'all'")
    p_run.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_run.set_defaults(func=_cmd_run)

    p_wl = sub.add_parser("workloads", help="summarise the evaluation workloads")
    p_wl.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_wl.set_defaults(func=_cmd_workloads)

    p_sim = sub.add_parser("simulate", help="run one (workload, method) simulation")
    p_sim.add_argument("workload", help="e.g. Theta-S4")
    p_sim.add_argument("method", help="e.g. BBSched")
    p_sim.add_argument("--scale", default=None, choices=sorted(exp.SCALES))
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: unknown key {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
