"""Parallel execution helpers for experiment sweeps."""

from .pool import default_workers, parallel_map

__all__ = ["parallel_map", "default_workers"]
