"""Parallel execution helpers for experiment sweeps.

:func:`parallel_map` is a *supervised* pool: per-attempt timeouts,
bounded retries with backoff, worker-crash recovery, and a completion
hook for durable incremental persistence (see
:class:`repro.checkpoint.ResultsLedger`).
"""

from .pool import DEFAULT_POOL_BACKOFF, default_workers, parallel_map

__all__ = ["DEFAULT_POOL_BACKOFF", "parallel_map", "default_workers"]
