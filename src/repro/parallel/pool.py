"""Process-pool execution of experiment grids.

§3.2.2 notes the MOO solve "can be accelerated by leveraging parallel
processing"; at the harness level the natural parallel axis is the
experiment grid itself — 80 independent (method, workload) simulations in
§4.  :func:`parallel_map` fans a pure function over argument tuples with a
:class:`concurrent.futures.ProcessPoolExecutor`, degrading transparently
to serial execution on single-core machines (``nproc==1``) or when
``workers=1`` — results are bit-identical either way because every task
carries its own seed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else CPU count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            n = int(env)
        except ValueError:
            raise ConfigurationError(f"REPRO_WORKERS={env!r} is not an integer")
        if n < 1:
            raise ConfigurationError("REPRO_WORKERS must be >= 1")
        return n
    return max((os.cpu_count() or 1) - 1, 1)


def parallel_map(
    fn: Callable[..., T],
    tasks: Sequence[Tuple[Any, ...]],
    *,
    workers: Optional[int] = None,
) -> List[T]:
    """Apply ``fn(*task)`` to every task, preserving input order.

    ``fn`` and all task elements must be picklable when ``workers > 1``.
    Exceptions propagate from the first failing task.
    """
    n = workers if workers is not None else default_workers()
    if n < 1:
        raise ConfigurationError(f"workers must be >= 1, got {n}")
    if n == 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        futures = [pool.submit(fn, *task) for task in tasks]
        return [f.result() for f in futures]
