"""Supervised process-pool execution of experiment grids.

§3.2.2 notes the MOO solve "can be accelerated by leveraging parallel
processing"; at the harness level the natural parallel axis is the
experiment grid itself — 80 independent (method, workload) simulations in
§4.  :func:`parallel_map` fans a pure function over argument tuples with a
:class:`concurrent.futures.ProcessPoolExecutor`, degrading transparently
to serial execution on single-core machines (``nproc==1``) or when
``workers=1`` — results are bit-identical either way because every task
carries its own seed.

The pool is *supervised*: a multi-hour grid must survive one wedged cell.

* ``timeout`` bounds each attempt's wall-clock time; an overdue task is
  abandoned and the wedged worker's pool is rebuilt so the slot comes
  back (the hung process is terminated best-effort).
* ``retries`` re-dispatches crashed, failed, or timed-out tasks with the
  shared :class:`~repro.resilience.BackoffPolicy` damping successive
  attempts.  A worker crash (``BrokenProcessPool``) fails *every* task in
  flight on the broken pool, and at that instant the parent cannot tell
  the crasher from its co-resident victims — so a pool break never
  charges the retry budget directly.  Instead every task that was in
  flight becomes a *suspect*, and suspects are re-dispatched in
  isolation (at most one in flight at a time): a suspect that completes
  is exonerated, while a suspect whose isolated attempt breaks the pool
  again is the proven crasher and is charged a retry attempt.  Healthy
  victims therefore always get a free requeue, and a crash-looping task
  is still bounded by its own budget.
* Exhausting the budget raises :class:`~repro.errors.TaskError` carrying
  the task index, its arguments, the attempt count, and the final
  traceback, so a failed grid names its cell instead of a bare
  exception from nowhere.
* ``on_result`` fires in the parent as each task completes (completion
  order, not input order) — the hook :mod:`repro.experiments.grid` uses
  to persist cells to the results ledger the moment they exist.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import ConfigurationError, TaskError
from ..resilience import BackoffPolicy

T = TypeVar("T")

#: Wall-clock damping between re-dispatches of a failed task.  Much
#: tighter than the simulated-time requeue default — a grid retry should
#: not stall the harness for a minute.
DEFAULT_POOL_BACKOFF = BackoffPolicy(initial=0.25, factor=2.0, max_delay=30.0)


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else CPU count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            n = int(env)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_WORKERS={env!r} is not an integer"
            ) from exc
        if n < 1:
            raise ConfigurationError("REPRO_WORKERS must be >= 1")
        return n
    return max((os.cpu_count() or 1) - 1, 1)


def _format_exception(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


def _task_error(
    index: int,
    task: Tuple[Any, ...],
    attempts: int,
    exc: Optional[BaseException] = None,
    reason: Optional[str] = None,
) -> TaskError:
    detail = reason if reason is not None else f"{type(exc).__name__}: {exc}"
    return TaskError(
        f"task {index} {tuple(task)!r} failed after {attempts} attempt(s): {detail}",
        index=index,
        task=tuple(task),
        attempts=attempts,
        traceback_text=_format_exception(exc) if exc is not None else "",
    )


def _serial_map(
    fn: Callable[..., T],
    tasks: Sequence[Tuple[Any, ...]],
    retries: int,
    backoff: BackoffPolicy,
    on_result: Optional[Callable[[int, T], None]],
) -> List[T]:
    results: List[T] = []
    for index, task in enumerate(tasks):
        attempts = 0
        while True:
            attempts += 1
            try:
                value = fn(*task)
            except Exception as exc:
                if attempts > retries:
                    raise _task_error(index, task, attempts, exc) from exc
                time.sleep(backoff.delay(attempts))
            else:
                results.append(value)
                if on_result is not None:
                    on_result(index, value)
                break
    return results


def _shutdown(pool: ProcessPoolExecutor, *, terminate: bool) -> None:
    """Stop a pool; optionally terminate its workers (wedged/abandoned).

    ``_processes`` is executor-internal, but terminating a provably hung
    worker is the whole point of supervision — guarded so a stdlib
    layout change degrades to abandonment instead of crashing.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=not terminate, cancel_futures=terminate)
    if terminate:
        for proc in processes:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass


def _supervised_map(
    fn: Callable[..., T],
    tasks: Sequence[Tuple[Any, ...]],
    workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: BackoffPolicy,
    on_result: Optional[Callable[[int, T], None]],
) -> List[T]:
    n = len(tasks)
    results: List[Optional[T]] = [None] * n
    attempts = [0] * n
    pending: deque = deque(range(n))
    waiting: List[Tuple[float, int]] = []   # (ready_at, index) retry queue
    inflight: Dict[Future, Tuple[int, Optional[float]]] = {}  # future → (index, deadline)
    #: tasks that were in flight when a pool broke; dispatched in isolation
    #: (at most one at a time) until they complete or break a pool alone.
    suspects: set = set()
    pool = ProcessPoolExecutor(max_workers=workers)

    def submit(index: int) -> None:
        attempts[index] += 1
        future = pool.submit(fn, *tasks[index])
        deadline = time.monotonic() + timeout if timeout is not None else None
        inflight[future] = (index, deadline)

    def retry_or_raise(index: int, exc: Optional[BaseException] = None,
                       reason: Optional[str] = None) -> None:
        if attempts[index] > retries:
            raise _task_error(index, tasks[index], attempts[index], exc, reason) from exc
        waiting.append((time.monotonic() + backoff.delay(attempts[index]), index))

    def requeue_free(index: int) -> None:
        attempts[index] -= 1
        pending.append(index)

    def suspect_in_flight() -> bool:
        return any(index in suspects for index, _ in inflight.values())

    def dispatch() -> None:
        # Fill free workers from the pending queue, but isolate suspects:
        # at most one task that has ever broken a pool runs at a time, so
        # the next break names its crasher instead of a crowd.
        held: List[int] = []
        while pending and len(inflight) < workers:
            index = pending.popleft()
            if index in suspects and suspect_in_flight():
                held.append(index)
                continue
            submit(index)
        pending.extendleft(reversed(held))

    def rebuild_pool(mark_suspects: bool = False) -> None:
        # The wedged/dead pool's healthy in-flight tasks are victims,
        # not causes: requeue them immediately without charging attempts.
        nonlocal pool
        for future, (index, _) in inflight.items():
            future.cancel()
            requeue_free(index)
            if mark_suspects:
                suspects.add(index)
        inflight.clear()
        _shutdown(pool, terminate=True)
        pool = ProcessPoolExecutor(max_workers=workers)

    failed = False
    try:
        while pending or waiting or inflight:
            now = time.monotonic()
            if waiting:
                due = [index for ready_at, index in waiting if ready_at <= now]
                if due:
                    waiting[:] = [w for w in waiting if w[0] > now]
                    pending.extend(due)
            dispatch()
            if not inflight:
                # Nothing running: sleep until the earliest retry matures.
                time.sleep(max(0.0, min(r for r, _ in waiting) - time.monotonic()))
                continue
            wake: Optional[float] = None
            deadlines = [d for _, d in inflight.values() if d is not None]
            if deadlines:
                wake = max(0.0, min(deadlines) - now)
            if waiting:
                next_retry = max(0.0, min(r for r, _ in waiting) - now)
                wake = next_retry if wake is None else min(wake, next_retry)
            done, _ = wait(set(inflight), timeout=wake, return_when=FIRST_COMPLETED)
            broken: List[Tuple[int, BrokenProcessPool]] = []
            for future in done:
                index, _ = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    broken.append((index, exc))
                except Exception as exc:
                    retry_or_raise(index, exc=exc)
                else:
                    results[index] = value
                    suspects.discard(index)  # exonerated
                    if on_result is not None:
                        on_result(index, value)
            if broken:
                # A dead worker fails every in-flight future.  A break
                # while an *isolated suspect* was in flight convicts that
                # suspect — it is charged a retry attempt.  Everyone else
                # is a victim: requeued without losing budget, but marked
                # suspect so future dispatch isolates them one at a time
                # until each is exonerated by a clean completion.
                for index, exc in broken:
                    if index in suspects:
                        retry_or_raise(index, exc=exc,
                                       reason="worker process died mid-task "
                                              "(isolated re-run)")
                    else:
                        requeue_free(index)
                        suspects.add(index)
                rebuild_pool(mark_suspects=True)
                continue
            now = time.monotonic()
            overdue = [
                (future, index)
                for future, (index, deadline) in inflight.items()
                if deadline is not None and now >= deadline
            ]
            if overdue:
                wedged = False
                for future, index in overdue:
                    del inflight[future]
                    if not future.cancel():
                        wedged = True  # already running → that worker is hung
                    retry_or_raise(
                        index, reason=f"attempt exceeded timeout of {timeout}s")
                if wedged:
                    rebuild_pool()
        return results  # type: ignore[return-value]  # every slot filled
    except BaseException:
        failed = True
        raise
    finally:
        _shutdown(pool, terminate=failed)


def parallel_map(
    fn: Callable[..., T],
    tasks: Sequence[Tuple[Any, ...]],
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    on_result: Optional[Callable[[int, T], None]] = None,
) -> List[T]:
    """Apply ``fn(*task)`` to every task, preserving input order.

    ``fn`` and all task elements must be picklable when ``workers > 1``.

    Parameters
    ----------
    timeout:
        Wall-clock seconds allowed per attempt.  Overdue tasks count as
        failed attempts; the wedged worker is abandoned and its pool
        rebuilt.  Unenforceable in serial mode (``workers=1`` cannot
        pre-empt itself) and therefore ignored there.
    retries:
        Extra attempts after the first for a crashed, raising, or
        timed-out task.  ``0`` preserves fail-fast semantics for tasks
        that *raise*.  Worker crashes fail every task in flight on the
        broken pool; a pool break never charges the retry budget
        directly (crash victims always requeue free).  The tasks that
        were in flight are instead re-dispatched one at a time, and only
        a task whose isolated re-run breaks the pool again — the proven
        crasher — is charged an attempt, so even ``retries=0`` survives
        a one-off worker crash while a deterministic crasher still fails
        after ``retries + 1`` isolated convictions.
    backoff:
        Delay schedule between attempts of one task
        (:data:`DEFAULT_POOL_BACKOFF` when None).
    on_result:
        ``on_result(index, result)`` runs in the parent as each task
        completes — in *completion* order — for durable incremental
        persistence (see the results ledger).

    Raises
    ------
    TaskError
        When a task exhausts its attempt budget; carries the failing
        index, arguments, attempt count, and worker traceback.  Tasks
        already completed will have reached ``on_result``.
    """
    n = workers if workers is not None else default_workers()
    if n < 1:
        raise ConfigurationError(f"workers must be >= 1, got {n}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    schedule = backoff if backoff is not None else DEFAULT_POOL_BACKOFF
    if not tasks:
        return []
    if n == 1 or len(tasks) <= 1:
        return _serial_map(fn, tasks, retries, schedule, on_result)
    return _supervised_map(
        fn, tasks, min(n, len(tasks)), timeout, retries, schedule, on_result
    )
