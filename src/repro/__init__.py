"""repro — reproduction of *Scheduling Beyond CPUs for HPC* (BBSched, HPDC 2019).

A multi-resource HPC batch-scheduling library built around a discrete-event
trace simulator.  The headline contribution, **BBSched**, selects jobs from
a window at the front of the priority queue by solving a multi-objective
optimization (node + burst-buffer (+ local SSD) utilization) with a genetic
algorithm, and picks one Pareto solution with a site decision rule.

Quick start::

    from repro import (Cluster, Job, SchedulingEngine, FCFS,
                       BBSchedSelector, WindowPolicy)

    cluster = Cluster(nodes=100, bb_capacity=100 * 1024)   # 100 nodes, 100 TB
    jobs = [Job(jid=i, submit_time=0, runtime=3600, walltime=3600,
                nodes=10 * (i + 1), bb=1024.0 * i) for i in range(5)]
    engine = SchedulingEngine(cluster, FCFS(), BBSchedSelector(generations=100),
                              WindowPolicy(size=5))
    result = engine.run(jobs)

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every table and figure.
"""

from .core import (
    AdaptiveDecisionRule,
    BBSchedSelector,
    Decision,
    DecisionRule,
    ExhaustiveSolver,
    MOGASolver,
    MOOProblem,
    ParetoSet,
    ScalarGASolver,
    SelectionProblem,
    SSDSelectionProblem,
    four_resource_rule,
    generational_distance,
    hypervolume_2d,
    non_dominated_mask,
    two_resource_rule,
)
from .errors import (
    AllocationError,
    ConfigurationError,
    ReproError,
    ResilienceError,
    SchedulingError,
    SolverError,
    SolverTimeoutError,
    TraceError,
)
from .methods import (
    BinPackingSelector,
    ConstrainedSelector,
    NaiveSelector,
    Selector,
    SystemCapacity,
    WeightedSelector,
    available_methods,
    make_selector,
)
from .policies import FCFS, WFP, PriorityPolicy
from .resilience import (
    SCENARIOS,
    FaultInjector,
    FaultScenario,
    GreedyFallbackSelector,
    RetryPolicy,
    SolverWatchdog,
    WatchdogStats,
    get_scenario,
)
from .simulator import (
    Available,
    Cluster,
    Interval,
    Job,
    JobState,
    MetricsSummary,
    ResilienceSummary,
    SchedulingEngine,
    SimulationResult,
    SSDPool,
    compute_resilience_summary,
    compute_summary,
    trimmed_interval,
)
from .simulator import ValidationReport, validate_schedule
from .telemetry import (
    MetricsRegistry,
    NullTracer,
    TelemetrySnapshot,
    Tracer,
    get_tracer,
    use_tracer,
)
from .windows import DynamicWindowPolicy, Window, WindowPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulator
    "Job",
    "JobState",
    "Cluster",
    "Available",
    "SSDPool",
    "SchedulingEngine",
    "SimulationResult",
    "MetricsSummary",
    "ResilienceSummary",
    "Interval",
    "compute_summary",
    "compute_resilience_summary",
    "trimmed_interval",
    # policies / window
    "PriorityPolicy",
    "FCFS",
    "WFP",
    "Window",
    "WindowPolicy",
    "DynamicWindowPolicy",
    "validate_schedule",
    "ValidationReport",
    # core
    "AdaptiveDecisionRule",
    "MOOProblem",
    "SelectionProblem",
    "SSDSelectionProblem",
    "MOGASolver",
    "ScalarGASolver",
    "ExhaustiveSolver",
    "ParetoSet",
    "DecisionRule",
    "Decision",
    "two_resource_rule",
    "four_resource_rule",
    "BBSchedSelector",
    "non_dominated_mask",
    "generational_distance",
    "hypervolume_2d",
    # methods
    "Selector",
    "SystemCapacity",
    "NaiveSelector",
    "WeightedSelector",
    "ConstrainedSelector",
    "BinPackingSelector",
    "make_selector",
    "available_methods",
    # resilience
    "FaultScenario",
    "FaultInjector",
    "SCENARIOS",
    "get_scenario",
    "RetryPolicy",
    "SolverWatchdog",
    "WatchdogStats",
    "GreedyFallbackSelector",
    # telemetry
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "TelemetrySnapshot",
    "get_tracer",
    "use_tracer",
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "AllocationError",
    "SchedulingError",
    "SolverError",
    "SolverTimeoutError",
    "ResilienceError",
]
