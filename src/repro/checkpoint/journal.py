"""Append-only JSONL journal: the shared durability substrate.

Two subsystems persist their progress as a stream of self-contained JSON
lines: the grid results ledger (:mod:`repro.checkpoint.ledger`) and the
simulation service's request journal (:mod:`repro.service.journal`).
Both need the same three guarantees, factored here once:

* **atomic appends** — each record is a single ``write()`` on an
  ``O_APPEND`` descriptor followed by flush+fsync.  POSIX makes the
  offset update and the write one step, so concurrent appenders
  interleave at line granularity and a crash can only damage the *last*
  line of the file;
* **tail-tolerant replay** — :meth:`JsonlJournal.replay` yields parsed
  records in order, silently dropping an unparseable or
  integrity-violating *final* line (the SIGKILL-mid-append case) while
  raising :class:`~repro.errors.CheckpointError` for damage anywhere
  earlier, which atomic appends cannot produce and therefore indicates
  real corruption;
* **verified payloads** — :func:`encode_payload` / :func:`decode_payload`
  wrap a pickled object as base64 plus its SHA-256, so every record
  carrying a result is individually checkable (by the loader and by
  ``tools/validate_checkpoint.py`` with nothing but the stdlib).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..errors import CheckpointError

#: Pickle protocol for journal payloads (matches checkpoint snapshots).
PICKLE_PROTOCOL = 4


def encode_payload(obj: Any) -> Dict[str, str]:
    """Pickle ``obj`` into self-verifying record fields.

    Returns ``{"payload": <base64>, "payload_sha256": <hex>}`` — merge
    into the record dict before appending.
    """
    payload = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
    return {
        "payload": base64.b64encode(payload).decode("ascii"),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }


def decode_payload(record: Dict[str, Any]) -> Any:
    """Verify and unpickle a record's payload; raises on any damage."""
    try:
        payload = base64.b64decode(record["payload"], validate=True)
    except (KeyError, ValueError, TypeError) as exc:
        raise CheckpointError(f"undecodable journal payload: {exc}") from exc
    if hashlib.sha256(payload).hexdigest() != record.get("payload_sha256"):
        raise CheckpointError("journal payload SHA-256 mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"cannot unpickle journal payload: {exc}") from exc


class JsonlJournal:
    """One append-only JSONL file with crash-safe append and replay."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        #: 1 when the last replay dropped a damaged final line, else 0.
        self.dropped_tail = 0

    # --- writing -----------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record as a single atomic line write."""
        line = json.dumps(record, sort_keys=True)
        if "\n" in line:  # pragma: no cover - json.dumps never emits raw newlines
            raise CheckpointError("journal record would span multiple lines")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One write() on an O_APPEND fd is the atomicity unit: POSIX
        # guarantees the offset update and the write are a single step,
        # so parallel appenders cannot interleave within a line.
        data = line.encode("utf-8") + b"\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def reset(self) -> None:
        """Truncate the journal (fresh, non-resumed run)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
        self.dropped_tail = 0

    def exists(self) -> bool:
        return self.path.exists()

    def repair_tail(
        self,
        parse: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> int:
        """Make replay's torn-tail tolerance durable; returns bytes cut.

        Replay *tolerates* a damaged final line, but a journal that will
        be appended to again must also *remove* it — otherwise the next
        append strands the damage mid-file, exactly where replay treats
        it as real corruption.  Two cases:

        * final line unparseable (or rejected by ``parse``): truncate it;
        * final line intact but missing its newline (a tear that removed
          only the terminator): re-terminate it in place, so the next
          append cannot fuse two records into one corrupt line.
        """
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        stripped = raw[:-1] if raw.endswith(b"\n") else raw
        if not stripped:
            return 0
        start = stripped.rfind(b"\n") + 1
        tail = stripped[start:]
        intact = True
        try:
            record = json.loads(tail.decode("utf-8", errors="replace"))
            if not isinstance(record, dict):
                intact = False
            elif parse is not None:
                parse(record)
        except (json.JSONDecodeError, CheckpointError):
            intact = False
        fd = os.open(self.path, os.O_WRONLY)
        try:
            if intact:
                if not raw.endswith(b"\n"):
                    os.lseek(fd, 0, os.SEEK_END)
                    os.write(fd, b"\n")
                    os.fsync(fd)
                return 0
            os.ftruncate(fd, start)
            os.fsync(fd)
        finally:
            os.close(fd)
        return len(raw) - start

    # --- reading -----------------------------------------------------------------
    def replay(
        self,
        parse: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(line_number, record)`` for every intact record.

        ``parse`` may validate/enrich each raw dict (raising
        :class:`~repro.errors.CheckpointError` on violations); its result
        is what gets yielded.  A damaged *final* line — invalid JSON, or a
        ``parse`` rejection — is dropped and counted in
        :attr:`dropped_tail`, because a SIGKILL mid-append can only ever
        truncate the tail.  Damage on any earlier line raises.
        """
        self.dropped_tail = 0
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            last = i == len(lines) - 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise CheckpointError("journal record must be a JSON object")
                if parse is not None:
                    record = parse(record)
            except (json.JSONDecodeError, CheckpointError) as exc:
                if last:
                    # SIGKILL mid-append damages only the tail line; drop
                    # it and let the caller recompute whatever it recorded.
                    self.dropped_tail = 1
                    continue
                raise CheckpointError(
                    f"{self.path}: corrupt record on line {i + 1} "
                    f"(not the final line, so not crash truncation): {exc}"
                ) from exc
            yield i + 1, record
