"""JSONL results ledger for resumable experiment grids.

Each completed grid cell is appended to the ledger as one self-contained
JSON line the moment its result arrives, so a SIGKILL at any point loses
at most the cells still in flight.  On ``--resume`` the ledger is read
back, completed cells are skipped, and only missing (or previously
failed) cells are re-dispatched.

Record kinds::

    {"kind": "cell", "workload": ..., "method": ..., "scale": ...,
     "telemetry": bool, "seed": int|null,
     "payload_sha256": "...", "payload": "<base64 pickle of RunResult>"}
    {"kind": "failure", "workload": ..., "method": ..., "scale": ...,
     "error": "...", "attempts": int, "traceback": "..."}

Durability mechanics (atomic single-write appends, tail-tolerant replay,
verified payloads) live in the shared :class:`~repro.checkpoint.journal.
JsonlJournal`; this module adds only the grid-cell record schema on top.
A truncated or hash-mismatched *final* line reads as "cell not recorded"
rather than an error, while corruption anywhere earlier (which atomic
appends cannot produce) raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CheckpointError
from .journal import JsonlJournal, decode_payload, encode_payload

#: Bumped on any incompatible change to the record layout.
LEDGER_VERSION = 1


@dataclass
class LedgerView:
    """Parsed ledger contents: completed cells, failures, and tail damage."""

    #: (workload, method) → unpickled RunResult for every matching cell.
    results: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    #: Failure records (raw dicts) matching the filter.
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: 1 when a truncated/corrupt final line was dropped, else 0.
    dropped_tail: int = 0


class ResultsLedger:
    """Append-only JSONL ledger of grid-cell results."""

    def __init__(self, path: os.PathLike | str) -> None:
        self._journal = JsonlJournal(path)

    @property
    def path(self):
        return self._journal.path

    # --- writing -----------------------------------------------------------------
    def append_result(
        self,
        result: Any,
        *,
        scale: str,
        telemetry: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        """Durably record one completed cell (``result`` is a RunResult)."""
        record = {
            "kind": "cell",
            "version": LEDGER_VERSION,
            "workload": result.workload,
            "method": result.method,
            "scale": scale,
            "telemetry": bool(telemetry),
            "seed": seed,
        }
        record.update(encode_payload(result))
        self._journal.append(record)

    def append_failure(
        self,
        *,
        workload: str,
        method: str,
        scale: str,
        error: str,
        attempts: int,
        traceback_text: str = "",
    ) -> None:
        """Record a cell that exhausted its retries (kept for diagnosis;
        failed cells are re-dispatched on resume)."""
        self._journal.append({
            "kind": "failure",
            "version": LEDGER_VERSION,
            "workload": workload,
            "method": method,
            "scale": scale,
            "error": error,
            "attempts": int(attempts),
            "traceback": traceback_text,
        })

    def reset(self) -> None:
        """Truncate the ledger (fresh, non-resumed grid run)."""
        self._journal.reset()

    # --- reading -----------------------------------------------------------------
    def exists(self) -> bool:
        return self._journal.exists()

    def load(
        self,
        *,
        scale: Optional[str] = None,
        telemetry: Optional[bool] = None,
    ) -> LedgerView:
        """Read the ledger back, filtered to one (scale, telemetry) config.

        Cells recorded under a different scale or telemetry setting are
        ignored, so a ledger cannot silently satisfy a resume with
        results computed under other settings.  A failure record for a
        cell does *not* mark it complete — later success lines win, and
        cells with only failures are re-dispatched.
        """
        view = LedgerView()
        for _lineno, record in self._journal.replay(self._parse):
            if scale is not None and record.get("scale") != scale:
                continue
            if record["kind"] == "cell":
                if telemetry is not None and bool(record.get("telemetry")) != telemetry:
                    continue
                result = record["result"]
                view.results[(result.workload, result.method)] = result
            else:
                view.failures.append(record)
        view.dropped_tail = self._journal.dropped_tail
        return view

    @staticmethod
    def _parse(record: Dict[str, Any]) -> Dict[str, Any]:
        """One raw record → dict with ``result`` unpickled; raises on damage."""
        if record.get("kind") not in ("cell", "failure"):
            raise CheckpointError(f"unknown ledger record kind {record.get('kind')!r}")
        if record.get("version") != LEDGER_VERSION:
            raise CheckpointError(
                f"ledger record version {record.get('version')!r}, "
                f"this build reads version {LEDGER_VERSION}"
            )
        if record["kind"] == "failure":
            return record
        record["result"] = decode_payload(record)
        return record
