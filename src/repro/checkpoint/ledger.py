"""JSONL results ledger for resumable experiment grids.

Each completed grid cell is appended to the ledger as one self-contained
JSON line the moment its result arrives, so a SIGKILL at any point loses
at most the cells still in flight.  On ``--resume`` the ledger is read
back, completed cells are skipped, and only missing (or previously
failed) cells are re-dispatched.

Record kinds::

    {"kind": "cell", "workload": ..., "method": ..., "scale": ...,
     "telemetry": bool, "seed": int|null,
     "payload_sha256": "...", "payload": "<base64 pickle of RunResult>"}
    {"kind": "failure", "workload": ..., "method": ..., "scale": ...,
     "error": "...", "attempts": int, "traceback": "..."}

Appends are a single ``write()`` on an ``O_APPEND`` descriptor followed
by flush+fsync — concurrent appends interleave at line granularity and a
crash can only truncate the *last* line.  :meth:`ResultsLedger.load`
therefore treats an unparseable or hash-mismatched final line as
"cell not recorded" rather than an error, while corruption anywhere
earlier (which atomic appends cannot produce) raises
:class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CheckpointError

#: Bumped on any incompatible change to the record layout.
LEDGER_VERSION = 1


@dataclass
class LedgerView:
    """Parsed ledger contents: completed cells, failures, and tail damage."""

    #: (workload, method) → unpickled RunResult for every matching cell.
    results: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    #: Failure records (raw dicts) matching the filter.
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: 1 when a truncated/corrupt final line was dropped, else 0.
    dropped_tail: int = 0


class ResultsLedger:
    """Append-only JSONL ledger of grid-cell results."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)

    # --- writing -----------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        if "\n" in line:  # pragma: no cover - json.dumps never emits raw newlines
            raise CheckpointError("ledger record would span multiple lines")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One write() on an O_APPEND fd is the atomicity unit: POSIX
        # guarantees the offset update and the write are a single step,
        # so parallel appenders cannot interleave within a line.
        data = line.encode("utf-8") + b"\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def append_result(
        self,
        result: Any,
        *,
        scale: str,
        telemetry: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        """Durably record one completed cell (``result`` is a RunResult)."""
        payload = pickle.dumps(result, protocol=4)
        self._append({
            "kind": "cell",
            "version": LEDGER_VERSION,
            "workload": result.workload,
            "method": result.method,
            "scale": scale,
            "telemetry": bool(telemetry),
            "seed": seed,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload": base64.b64encode(payload).decode("ascii"),
        })

    def append_failure(
        self,
        *,
        workload: str,
        method: str,
        scale: str,
        error: str,
        attempts: int,
        traceback_text: str = "",
    ) -> None:
        """Record a cell that exhausted its retries (kept for diagnosis;
        failed cells are re-dispatched on resume)."""
        self._append({
            "kind": "failure",
            "version": LEDGER_VERSION,
            "workload": workload,
            "method": method,
            "scale": scale,
            "error": error,
            "attempts": int(attempts),
            "traceback": traceback_text,
        })

    def reset(self) -> None:
        """Truncate the ledger (fresh, non-resumed grid run)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")

    # --- reading -----------------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def load(
        self,
        *,
        scale: Optional[str] = None,
        telemetry: Optional[bool] = None,
    ) -> LedgerView:
        """Read the ledger back, filtered to one (scale, telemetry) config.

        Cells recorded under a different scale or telemetry setting are
        ignored, so a ledger cannot silently satisfy a resume with
        results computed under other settings.  A failure record for a
        cell does *not* mark it complete — later success lines win, and
        cells with only failures are re-dispatched.
        """
        view = LedgerView()
        if not self.path.exists():
            return view
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            last = i == len(lines) - 1
            try:
                record = self._parse(line)
            except CheckpointError:
                if last:
                    # A SIGKILL mid-append truncates only the tail line;
                    # drop it and let the grid recompute that cell.
                    view.dropped_tail = 1
                    continue
                raise CheckpointError(
                    f"{self.path}: corrupt record on line {i + 1} "
                    f"(not the final line, so not crash truncation)"
                )
            if scale is not None and record.get("scale") != scale:
                continue
            if record["kind"] == "cell":
                if telemetry is not None and bool(record.get("telemetry")) != telemetry:
                    continue
                result = record["result"]
                view.results[(result.workload, result.method)] = result
            else:
                view.failures.append(record)
        return view

    def _parse(self, line: str) -> Dict[str, Any]:
        """One line → record dict with ``result`` unpickled; raises on damage."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or record.get("kind") not in ("cell", "failure"):
            raise CheckpointError(f"unknown ledger record: {line[:80]!r}")
        if record.get("version") != LEDGER_VERSION:
            raise CheckpointError(
                f"ledger record version {record.get('version')!r}, "
                f"this build reads version {LEDGER_VERSION}"
            )
        if record["kind"] == "failure":
            return record
        try:
            payload = base64.b64decode(record["payload"], validate=True)
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckpointError(f"undecodable cell payload: {exc}") from exc
        if hashlib.sha256(payload).hexdigest() != record.get("payload_sha256"):
            raise CheckpointError("cell payload SHA-256 mismatch")
        try:
            record["result"] = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(f"cannot unpickle cell payload: {exc}") from exc
        return record
