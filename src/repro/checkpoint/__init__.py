"""Checkpoint/restore and resumable experiment grids.

Long simulations and 80-cell grids should survive pre-emption.  This
package supplies the two durability layers (see ``docs/checkpointing.md``):

* **engine snapshots** — :func:`save_checkpoint` /
  :func:`load_checkpoint` persist a mid-run
  :class:`~repro.simulator.engine.SchedulingEngine` (event queue, clock,
  allocations, job states, RNG streams, metrics) to a self-verifying
  file; :class:`Checkpointer` schedules saves at batch boundaries every
  N simulated hours, on SIGTERM/SIGINT, or at a deterministic cut point,
  and ``run_one(resume_from=...)`` continues a restored engine;
* **the results ledger** — :class:`ResultsLedger` appends each completed
  grid cell to a JSONL file the moment it finishes, so
  ``run_grid(ledger=..., resume=True)`` re-dispatches only missing or
  failed cells after a crash.

:func:`verify_resume` proves the contract the rest of the package
depends on: an interrupted-and-resumed run is fingerprint-identical to
an uninterrupted one.
"""

from .journal import JsonlJournal, decode_payload, encode_payload
from .ledger import LEDGER_VERSION, LedgerView, ResultsLedger
from .runtime import CheckpointConfig, Checkpointer
from .snapshot import (
    FORMAT_VERSION,
    MAGIC,
    build_manifest,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from .verify import VerifyReport, fingerprint_digest, run_fingerprint, verify_resume

__all__ = [
    "CheckpointConfig",
    "Checkpointer",
    "FORMAT_VERSION",
    "JsonlJournal",
    "LEDGER_VERSION",
    "LedgerView",
    "MAGIC",
    "ResultsLedger",
    "VerifyReport",
    "build_manifest",
    "decode_payload",
    "encode_payload",
    "fingerprint_digest",
    "load_checkpoint",
    "read_header",
    "run_fingerprint",
    "save_checkpoint",
    "verify_resume",
]
