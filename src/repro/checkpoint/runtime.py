"""Checkpoint scheduling inside the engine's event loop.

The engine calls :meth:`Checkpointer.after_batch` at every *batch
boundary* — all events at the current timestamp applied and the
scheduling pass finished — which is the only instant a snapshot is
guaranteed consistent.  The checkpointer decides whether that boundary
warrants a save:

* the periodic interval (``every_hours`` of *simulated* time) elapsed;
* a SIGTERM/SIGINT arrived since the last boundary (``handle_signals``);
* the deterministic cut point ``stop_after`` was reached (tests and
  ``verify_resume`` use this to interrupt a run at a known sim-time).

Signals and ``stop_after`` additionally abort the run by raising
:class:`~repro.errors.SimulationInterrupted` *after* the save, so the
caller always holds a fresh checkpoint when the loop unwinds.  A second
signal skips the orderly path and raises ``KeyboardInterrupt`` straight
from the handler — the escape hatch when the final save itself wedges.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..errors import ConfigurationError, SimulationInterrupted
from .snapshot import save_checkpoint

#: Signals that trigger an orderly save-and-exit when ``handle_signals``.
_GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to snapshot a run.

    Parameters
    ----------
    path:
        Checkpoint file; each save atomically replaces the previous one
        (the format is self-verifying, see :mod:`repro.checkpoint.snapshot`).
    every_hours:
        Simulated hours between periodic saves.  ``0`` disables periodic
        saves — only signals / ``stop_after`` then write checkpoints.
    stop_after:
        Simulated time (seconds) after which the run is checkpointed and
        interrupted, as if a signal had arrived at that boundary.  For
        deterministic kill-and-resume tests; ``None`` in production.
    handle_signals:
        When true, :meth:`Checkpointer.signals` installs SIGINT/SIGTERM
        handlers for the duration of the run.
    """

    path: str
    every_hours: float = 6.0
    stop_after: Optional[float] = None
    handle_signals: bool = False

    def __post_init__(self) -> None:
        if self.every_hours < 0:
            raise ConfigurationError(
                f"every_hours must be non-negative, got {self.every_hours}"
            )
        if self.stop_after is not None and self.stop_after < 0:
            raise ConfigurationError(
                f"stop_after must be non-negative, got {self.stop_after}"
            )


class Checkpointer:
    """Drives periodic/terminal checkpoints for one engine run."""

    def __init__(self, config: CheckpointConfig,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.config = config
        self.meta = dict(meta or {})
        self.saves = 0
        self.last_header: Optional[Dict[str, Any]] = None
        self._next_due: Optional[float] = None
        self._signal: Optional[int] = None

    @property
    def path(self) -> Path:
        return Path(self.config.path)

    @property
    def interrupted_by(self) -> Optional[int]:
        """Signal number that interrupted the run, if any."""
        return self._signal

    def save(self, engine: Any) -> Dict[str, Any]:
        """Checkpoint ``engine`` now, regardless of schedule."""
        meta = dict(self.meta)
        if self._signal is not None:
            meta["signal"] = int(self._signal)
        header = save_checkpoint(self.path, engine, meta=meta)
        self.saves += 1
        self.last_header = header
        return header

    def after_batch(self, engine: Any) -> None:
        """Engine hook: maybe save, maybe abort.  Called at batch boundaries."""
        now = engine.now
        interval = self.config.every_hours * 3600.0
        if self._next_due is None and interval > 0:
            self._next_due = now + interval
        stop = self.config.stop_after is not None and now >= self.config.stop_after
        due = self._next_due is not None and now >= self._next_due
        if not (stop or due or self._signal is not None):
            return
        self.save(engine)
        if interval > 0:
            self._next_due = now + interval
        if self._signal is not None:
            raise SimulationInterrupted(
                f"run interrupted by signal {self._signal}; "
                f"checkpoint written to {self.path}",
                checkpoint_path=str(self.path), sim_time=now,
                signum=self._signal,
            )
        if stop:
            raise SimulationInterrupted(
                f"run stopped at sim-time {now:.0f}s (stop_after="
                f"{self.config.stop_after}); checkpoint written to {self.path}",
                checkpoint_path=str(self.path), sim_time=now,
            )

    def request_stop(self, signum: int = signal.SIGTERM) -> None:
        """Flag the run for save-and-exit at the next batch boundary.

        The signal handler calls this; tests may call it directly to
        simulate a signal without process plumbing.
        """
        self._signal = int(signum)

    @contextmanager
    def signals(self) -> Iterator["Checkpointer"]:
        """Install SIGINT/SIGTERM → orderly save-and-exit for the block.

        First signal: set the flag; the run ends at the next batch
        boundary with a final checkpoint.  Second signal: raise
        ``KeyboardInterrupt`` immediately (force exit, checkpoint from
        the first signal may already be on disk).  A no-op off the main
        thread or when ``handle_signals`` is false, because the signal
        module only allows handler installation from the main thread.
        """
        if (not self.config.handle_signals
                or threading.current_thread() is not threading.main_thread()):
            yield self
            return

        def _handler(signum: int, frame: Any) -> None:
            if self._signal is not None:
                raise KeyboardInterrupt
            self.request_stop(signum)

        previous = {s: signal.signal(s, _handler) for s in _GRACEFUL_SIGNALS}
        try:
            yield self
        finally:
            for s, old in previous.items():
                signal.signal(s, old)
