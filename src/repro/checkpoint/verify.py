"""Resume-equivalence verification: interrupted + resumed == uninterrupted.

The whole point of deterministic snapshots is that a resumed run is
indistinguishable from one that never stopped.  :func:`verify_resume`
proves it for a concrete (trace, method, scale, seed):

1. run the simulation uninterrupted → reference result;
2. rerun with a checkpoint cut at ``stop_fraction`` of the reference
   makespan, catching :class:`~repro.errors.SimulationInterrupted`;
3. resume from the checkpoint to completion;
4. compare deterministic fingerprints of both results byte-for-byte.

The fingerprint covers everything the simulation itself decides —
metrics summary, wait-time breakdowns, makespan, selector call count,
resilience counters — and deliberately excludes wall-clock artifacts
(``mean_selector_time``, telemetry spans), which legitimately differ
between runs of identical simulated behaviour.  Watchdog-degraded runs
are wall-clock-*dependent* simulations and cannot be verified this way;
see ``docs/checkpointing.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import CheckpointError, SimulationInterrupted
from .runtime import CheckpointConfig


def _canon(value: Any) -> Any:
    """JSON-safe deep copy with numpy scalars collapsed to builtins."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return float(value)


def run_fingerprint(result: Any) -> Dict[str, Any]:
    """The deterministic portion of a RunResult, as a canonical dict."""
    fp = {
        "workload": result.workload,
        "method": result.method,
        "summary": _canon(result.summary.as_dict()),
        "wait_by_size": _canon(result.wait_by_size),
        "wait_by_bb": _canon(result.wait_by_bb),
        "wait_by_runtime": _canon(result.wait_by_runtime),
        "makespan": _canon(result.makespan),
        "selector_calls": int(result.selector_calls),
    }
    if result.resilience is not None:
        fp["resilience"] = _canon(result.resilience.as_dict())
    return fp


def fingerprint_digest(result: Any) -> str:
    """SHA-256 over the canonical JSON fingerprint (stable across runs)."""
    blob = json.dumps(run_fingerprint(result), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one resume-equivalence check (only produced on success)."""

    workload: str
    method: str
    digest: str
    cut_sim_time: float
    checkpoint_path: str


def verify_resume(
    trace: Any,
    method: str,
    scale: Any = None,
    *,
    seed: Any = None,
    faults: Any = None,
    retry: Any = None,
    eval_cache: bool = True,
    stop_fraction: float = 0.5,
    workdir: Optional[str] = None,
) -> VerifyReport:
    """Assert interrupted-and-resumed equals uninterrupted; returns a report.

    Raises :class:`~repro.errors.CheckpointError` with a field-level diff
    when the fingerprints diverge, or when the cut point fell so late
    that the "interrupted" run finished (pick a smaller
    ``stop_fraction``).  ``workdir`` hosts the temporary checkpoint
    (defaults to the trace name under the current directory's
    ``.verify_resume``).  ``eval_cache`` reaches the reference and
    interrupted runs; the resumed run inherits whatever the snapshot
    baked in (the GA's memo store itself is dropped on pickling and
    rebuilt lazily, so it never rides along in a checkpoint).
    """
    from ..experiments.runner import run_one  # circular at import time

    if not 0.0 < stop_fraction < 1.0:
        raise CheckpointError(f"stop_fraction must be in (0, 1), got {stop_fraction}")
    reference = run_one(trace, method, scale, seed=seed, faults=faults, retry=retry,
                        eval_cache=eval_cache)
    base = Path(workdir) if workdir is not None else Path(".verify_resume")
    ckpt = base / f"{reference.workload}_{method}.ckpt"
    cut = stop_fraction * reference.makespan
    config = CheckpointConfig(path=str(ckpt), every_hours=0.0, stop_after=cut)
    try:
        run_one(trace, method, scale, seed=seed, faults=faults, retry=retry,
                eval_cache=eval_cache, checkpoint=config)
    except SimulationInterrupted as exc:
        cut_time = exc.sim_time
    else:
        raise CheckpointError(
            f"stop_after={cut:.0f}s did not interrupt the run "
            f"(makespan {reference.makespan:.0f}s) — no batch boundary after "
            f"the cut; use a smaller stop_fraction"
        )
    resumed = run_one(trace, method, scale, seed=seed, faults=faults, retry=retry,
                      resume_from=str(ckpt))
    ref_fp, res_fp = run_fingerprint(reference), run_fingerprint(resumed)
    if ref_fp != res_fp:
        diffs = [
            f"  {key}: uninterrupted={ref_fp.get(key)!r} resumed={res_fp.get(key)!r}"
            for key in sorted(set(ref_fp) | set(res_fp))
            if ref_fp.get(key) != res_fp.get(key)
        ]
        raise CheckpointError(
            "resumed run diverged from uninterrupted run for "
            f"{reference.workload}/{method} (cut at {cut_time:.0f}s):\n"
            + "\n".join(diffs)
        )
    return VerifyReport(
        workload=reference.workload,
        method=method,
        digest=fingerprint_digest(reference),
        cut_sim_time=cut_time,
        checkpoint_path=str(ckpt),
    )
