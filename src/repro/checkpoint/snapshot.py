"""Checkpoint file format: one header line + a pickled engine.

A checkpoint is a single file::

    {"magic": "repro-ckpt", "version": 1, "payload_bytes": N,
     "payload_sha256": "...", "manifest": {...}}\\n
    <N bytes of pickle payload>

The first line is UTF-8 JSON (no embedded newlines) describing the
payload that follows; everything after the first ``\\n`` is a pickle of
the :class:`~repro.simulator.engine.SchedulingEngine` — event queue,
clock, cluster/BB/SSD allocations, job states, RNG streams, metrics
accumulators and all.  The header carries enough redundancy (payload
length *and* SHA-256) that truncation from a SIGKILL mid-write and
bit-rot are both detected at load time, and ``tools/validate_checkpoint.py``
can audit a file with nothing but the stdlib.

Writes are atomic: payload and header go to a temp file in the target
directory, which is fsynced and ``os.replace``-d over the destination
(then the directory is fsynced), so a reader never observes a partial
checkpoint under POSIX rename semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import CheckpointError
from ..telemetry import get_tracer

#: First bytes of every checkpoint header — also the format discriminator
#: used by :mod:`tools.validate_checkpoint`.
MAGIC = "repro-ckpt"
#: Bumped on any incompatible change to the header or payload layout.
FORMAT_VERSION = 1
#: Protocol 4 keeps checkpoints loadable across every Python this repo
#: supports (3.8+) regardless of which interpreter wrote them.
PICKLE_PROTOCOL = 4


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def build_manifest(engine: Any, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run-state summary embedded in the header (and shown by the validator)."""
    return {
        "sim_time": float(engine.now),
        "jobs_total": int(engine.jobs_total),
        "jobs_terminal": int(engine.jobs_terminal),
        "events_pending": int(engine.events_pending),
        "created_unix": time.time(),
        "meta": dict(meta or {}),
    }


def save_checkpoint(
    path: os.PathLike | str,
    engine: Any,
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Atomically write ``engine`` to ``path``; returns the header dict.

    ``meta`` is caller context (workload, method, scale, seed) stored
    verbatim in the manifest — :func:`load_checkpoint` hands it back so a
    resume can refuse a checkpoint taken from a different run.
    """
    path = Path(path)
    tracer = get_tracer()
    with tracer.span("checkpoint_save", path=str(path)) as span:
        t0 = time.perf_counter()
        payload = pickle.dumps(engine, protocol=PICKLE_PROTOCOL)
        t_pickle = time.perf_counter()
        digest = hashlib.sha256(payload).hexdigest()
        t_digest = time.perf_counter()
        header = {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "payload_bytes": len(payload),
            "payload_sha256": digest,
            "manifest": build_manifest(engine, meta),
        }
        line = json.dumps(header, sort_keys=True)
        if "\n" in line:  # pragma: no cover - json.dumps never emits raw newlines
            raise CheckpointError("checkpoint header would span multiple lines")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(line.encode("utf-8"))
                fh.write(b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _fsync_dir(path.parent)
        elapsed = time.perf_counter() - t0
        span.set(bytes=len(payload), sim_time=header["manifest"]["sim_time"])
        metrics = getattr(engine, "metrics", None)
        if metrics is not None:
            metrics.inc("checkpoint.saves")
            metrics.inc("checkpoint.bytes", len(payload))
            metrics.observe("checkpoint.save_seconds", elapsed)
            # Per-phase breakdown, so the overhead bench can attribute the
            # cost instead of reporting one opaque number.
            metrics.observe("checkpoint.pickle_seconds", t_pickle - t0)
            metrics.observe("checkpoint.digest_seconds", t_digest - t_pickle)
            metrics.observe("checkpoint.io_seconds", elapsed - (t_digest - t0))
    return header


def read_header(path: os.PathLike | str) -> Dict[str, Any]:
    """Parse and sanity-check a checkpoint's header line (payload untouched).

    Cheap enough to call on every candidate file; full payload
    verification happens in :func:`load_checkpoint`.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            line = fh.readline(1 << 20)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not line.endswith(b"\n"):
        raise CheckpointError(f"{path}: truncated header (no newline in first 1MiB)")
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: header is not valid JSON ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise CheckpointError(f"{path}: not a {MAGIC} checkpoint")
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: format version {header.get('version')!r}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    for key, typ in (("payload_bytes", int), ("payload_sha256", str),
                     ("manifest", dict)):
        if not isinstance(header.get(key), typ):
            raise CheckpointError(f"{path}: header field {key!r} missing or mistyped")
    return header


def load_checkpoint(path: os.PathLike | str) -> Tuple[Any, Dict[str, Any]]:
    """Verify and unpickle a checkpoint → ``(engine, header)``.

    Raises :class:`~repro.errors.CheckpointError` on truncation (payload
    shorter than the header promised), corruption (SHA-256 mismatch), or
    an unloadable payload.  The restored engine is ready for
    :meth:`~repro.simulator.engine.SchedulingEngine.continue_run`.
    """
    path = Path(path)
    header = read_header(path)
    with get_tracer().span("checkpoint_load", path=str(path)) as span:
        with open(path, "rb") as fh:
            fh.readline(1 << 20)  # skip the header line just re-parsed
            payload = fh.read()
        expected = header["payload_bytes"]
        if len(payload) != expected:
            raise CheckpointError(
                f"{path}: payload is {len(payload)} bytes, header promised "
                f"{expected} (truncated write?)"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header["payload_sha256"]:
            raise CheckpointError(
                f"{path}: payload SHA-256 mismatch (corrupt checkpoint)"
            )
        try:
            engine = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(f"{path}: cannot unpickle payload: {exc}") from exc
        span.set(bytes=expected, sim_time=header["manifest"].get("sim_time", -1.0))
    return engine, header
