"""Base-scheduler priority policies (FCFS, WFP)."""

from .base import PriorityPolicy
from .fcfs import FCFS
from .wfp import WFP

__all__ = ["PriorityPolicy", "FCFS", "WFP"]
