"""WFP utility priority — ALCF's capability-computing policy (§2.1).

WFP periodically computes a priority increment for each waiting job that
grows with queue wait and favours *large* jobs while normalising by the
requested walltime so short jobs are not starved indefinitely:

    score(job) = nodes × (wait / walltime) ** exponent

with the cubic exponent used at ALCF (Allcock et al., JSSPP 2017).  Larger
scores run first, which realises Theta's mission of prioritising
capability-scale jobs (§4.4 notes "the baseline method on Theta (WFP)
prefers large jobs").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from ..simulator.job import Job
from .base import PriorityPolicy

if TYPE_CHECKING:
    from ..simulator.jobtable import JobTable


class WFP(PriorityPolicy):
    """Utility-based priority used on Theta.

    Parameters
    ----------
    exponent:
        Power applied to the normalised wait; ALCF uses 3.
    """

    name = "wfp"

    def __init__(self, exponent: float = 3.0) -> None:
        if exponent <= 0:
            raise ConfigurationError(f"WFP exponent must be positive, got {exponent}")
        self.exponent = exponent

    def priority(self, job: Job, now: float) -> float:
        wait = max(now - job.submit_time, 0.0)
        return job.nodes * (wait / job.walltime) ** self.exponent

    def priority_array(
        self, table: "JobTable", rows: np.ndarray, now: float
    ) -> np.ndarray:
        """Vectorized score, recomputed each pass (wait depends on ``now``).

        Subtraction, max, division, and multiplication are IEEE-exact
        elementwise, so they match the scalar path bit-for-bit.  The
        ``** exponent`` step deliberately goes through Python's ``pow``
        per element: numpy's SIMD ``np.power`` is *not* bit-identical to
        libm's ``pow`` (verified on this build), and the byte-identity
        contract outranks the last drop of vectorization.
        """
        wait = now - table.submit_time[rows]
        np.maximum(wait, 0.0, out=wait)
        base = wait / table.walltime[rows]
        exponent = self.exponent
        powed = np.fromiter(
            (b ** exponent for b in base.tolist()),
            dtype=np.float64,
            count=len(base),
        )
        return table.nodes[rows] * powed
