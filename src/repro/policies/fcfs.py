"""First-come, first-served priority (the Cori base policy in §4.3)."""

from __future__ import annotations

from ..simulator.job import Job
from .base import PriorityPolicy


class FCFS(PriorityPolicy):
    """Jobs run in arrival order: priority is the negated submit time."""

    name = "fcfs"

    def priority(self, job: Job, now: float) -> float:
        return -job.submit_time
