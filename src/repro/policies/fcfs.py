"""First-come, first-served priority (the Cori base policy in §4.3)."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..simulator.job import Job
from .base import PriorityPolicy

if TYPE_CHECKING:
    from ..simulator.jobtable import JobTable


class FCFS(PriorityPolicy):
    """Jobs run in arrival order: priority is the negated submit time.

    The score never depends on ``now`` (``time_independent``), so the
    engine caches the ordering and invalidates it only when queue
    membership changes.
    """

    name = "fcfs"
    time_independent = True

    def priority(self, job: Job, now: float) -> float:
        return -job.submit_time

    def priority_array(
        self, table: "JobTable", rows: np.ndarray, now: float
    ) -> np.ndarray:
        # Negation is exact, so the vectorized scores are bit-identical
        # to the scalar ones.
        return -table.submit_time[rows]
