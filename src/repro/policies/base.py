"""Base-scheduler priority policies (§2.1).

A *base scheduler* enforces job priority according to a site's policy; the
multi-resource selection methods (BBSched and the comparison methods) run
on top of it.  The paper pairs Cori workloads with FCFS and Theta workloads
with WFP, ALCF's utility-based policy.

A policy is a pure ordering function: given the queued jobs and the current
time it returns them in descending priority.  Ties are always broken by
``(submit_time, jid)`` so orderings are total and deterministic.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from ..simulator.job import Job


class PriorityPolicy(abc.ABC):
    """Orders the waiting queue; higher priority first."""

    #: Short identifier used in reports.
    name: str = "base"

    @abc.abstractmethod
    def priority(self, job: Job, now: float) -> float:
        """Numeric priority of ``job`` at time ``now`` (higher runs first)."""

    def order(self, queue: Sequence[Job], now: float) -> List[Job]:
        """Queue sorted by descending priority, ties by submit order."""
        return sorted(
            queue, key=lambda j: (-self.priority(j, now), j.submit_time, j.jid)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
