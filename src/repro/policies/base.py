"""Base-scheduler priority policies (§2.1).

A *base scheduler* enforces job priority according to a site's policy; the
multi-resource selection methods (BBSched and the comparison methods) run
on top of it.  The paper pairs Cori workloads with FCFS and Theta workloads
with WFP, ALCF's utility-based policy.

A policy is a pure ordering function: given the queued jobs and the current
time it returns them in descending priority.  Ties are always broken by
``(submit_time, jid)`` so orderings are total and deterministic.

Two equivalent execution paths produce the ordering:

* the **reference path** — ``sorted(queue, key=...)`` over per-job
  :meth:`PriorityPolicy.priority` calls, the executable spec;
* the **vectorized path** — used when the caller supplies a
  :class:`~repro.simulator.jobtable.JobTable`: scores come from
  :meth:`PriorityPolicy.priority_array` (or a per-job fallback for custom
  policies) and one ``np.lexsort`` over ``(-score, submit_time, jid)``
  replaces the tuple sort.  Because every jid is unique the sort key is
  total, so both paths yield the *identical* permutation — pinned by the
  property tests in ``tests/test_differential.py``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..simulator.job import Job

if TYPE_CHECKING:  # import cycle: the simulator imports policies
    from ..simulator.jobtable import JobTable


class PriorityPolicy(abc.ABC):
    """Orders the waiting queue; higher priority first."""

    #: Short identifier used in reports.
    name: str = "base"

    #: True when :meth:`priority` ignores ``now`` (e.g. FCFS), letting the
    #: engine reuse an ordering until queue membership changes.
    time_independent: bool = False

    @abc.abstractmethod
    def priority(self, job: Job, now: float) -> float:
        """Numeric priority of ``job`` at time ``now`` (higher runs first)."""

    def priority_array(
        self, table: "JobTable", rows: np.ndarray, now: float
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`priority` over table rows, or None.

        Returning None routes :meth:`order` through the per-job fallback —
        correct for any custom policy; concrete policies override this
        with an implementation whose float64 arithmetic is bit-identical
        to the scalar one.
        """
        return None

    def order(
        self,
        queue: Sequence[Job],
        now: float,
        *,
        table: Optional["JobTable"] = None,
        rows: Optional[np.ndarray] = None,
    ) -> List[Job]:
        """Queue sorted by descending priority, ties by submit order.

        With ``table`` (and optionally precomputed ``rows`` into it) the
        vectorized path runs; without it the reference tuple sort does.
        Both return the same permutation.
        """
        if table is None or len(queue) < 2:
            return sorted(
                queue, key=lambda j: (-self.priority(j, now), j.submit_time, j.jid)
            )
        if rows is None:
            rows = table.rows_for(queue)
        scores = self.priority_array(table, rows, now)
        if scores is None:
            scores = np.fromiter(
                (self.priority(j, now) for j in queue),
                dtype=np.float64,
                count=len(queue),
            )
        # Reference key is (-score, submit_time, jid) ascending; lexsort
        # takes its primary key last.  jid uniqueness makes the key total,
        # so sort stability cannot matter.
        perm = np.lexsort((table.jid[rows], table.submit_time[rows], -scores))
        return [queue[i] for i in perm]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
