"""Deterministic random-number handling.

Every stochastic component (workload generation, GA initialisation,
crossover/mutation) takes an explicit seed or :class:`numpy.random.Generator`
so that simulations are exactly reproducible.  This module centralises the
coercion logic and provides *stream splitting*: deriving independent child
generators from a parent seed so that, e.g., changing the number of jobs in
a trace does not perturb the GA's random stream.
"""

from __future__ import annotations

import copy
import zlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

#: Seed used when the caller passes ``None`` and asks for determinism.
DEFAULT_SEED = 0x5EED


def stable_hash(text: str) -> int:
    """Process-independent 32-bit hash of a string.

    Python's builtin ``hash`` is randomised per process (PYTHONHASHSEED),
    which would make seeds derived from workload/method names — and hence
    entire simulations — irreproducible across runs.  CRC32 is stable.
    """
    return zlib.crc32(text.encode("utf-8"))


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` produces a deterministic one; an
    existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rng_state(rng: np.random.Generator) -> dict:
    """A deep, picklable snapshot of a generator's internal state.

    Together with :func:`restore_rng_state` this is the currency of
    checkpoint/resume (:mod:`repro.checkpoint`): capturing the state of a
    long-lived stream (e.g. a selector's GA generator) and restoring it
    later continues the stream exactly where it left off, which is what
    makes a resumed simulation byte-identical to an uninterrupted one.
    """
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind ``rng`` to a state captured with :func:`rng_state`."""
    rng.bit_generator.state = copy.deepcopy(state)


def split_rng(seed: SeedLike, n: int, *, salt: int = 0) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children's
    streams are statistically independent of each other and of the parent.
    ``salt`` lets distinct subsystems sharing one user seed obtain disjoint
    families of children.
    """
    if n < 0:
        raise ValueError(f"cannot split into {n} generators")
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself; keeps determinism
        # when the caller threads one generator through the whole run.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s) ^ salt) for s in seeds]
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    if salt:
        ss = np.random.SeedSequence(entropy=ss.entropy, spawn_key=(salt,))
    return [np.random.default_rng(child) for child in ss.spawn(n)]
