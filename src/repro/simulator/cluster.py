"""Cluster resource model: compute nodes, shared burst buffer, local SSDs.

The scheduler in the paper allocates three system-level resources:

* **compute nodes** — an undifferentiated pool of ``N`` nodes (the paper
  uses "CPU" and "compute node" interchangeably);
* **shared burst buffer** — a global pool of ``B`` GB (Cori's DataWarp);
* **local SSDs** — per-node storage of heterogeneous capacity (§5),
  modelled by :class:`~repro.simulator.ssd_pool.SSDPool`.

:class:`Cluster` enforces capacity invariants on allocate/release and
exposes an :class:`Available` snapshot that selection methods consume.
A fraction of the burst buffer can be carved out for persistent
reservations (one third on Cori, §4.1), which simply reduces usable
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..errors import AllocationError, ConfigurationError, ResilienceError
from .job import Job
from .ssd_pool import SSDAssignment, SSDPool


@dataclass(frozen=True)
class Available:
    """Snapshot of free capacity at a scheduling instant.

    ``ssd_free`` maps SSD tier capacity (GB) → free node count; for systems
    without local SSDs it has the single tier ``0.0`` covering every node.

    ``releases`` and ``now`` project the near future into the snapshot:
    the running jobs' :class:`~repro.backfill.easy.PlannedRelease` entries
    and the current simulation time.  They default empty — the engine
    populates them only for selectors declaring ``needs_releases`` (the
    plan-based scheduler), so every other construction site is untouched.
    """

    nodes: int
    bb: float
    ssd_free: Mapping[float, int]
    releases: Sequence = ()
    now: float = 0.0

    def fits(self, job: Job) -> bool:
        """Would ``job`` fit into this snapshot on its own?"""
        if job.nodes > self.nodes or job.bb > self.bb:
            return False
        qualifying = sum(n for cap, n in self.ssd_free.items() if cap >= job.ssd)
        return qualifying >= job.nodes

    def fits_mask(self, jobs: Sequence[Job]) -> np.ndarray:
        """Vectorized :meth:`fits` — one boolean per job.

        Result is element-wise identical to ``[self.fits(j) for j in jobs]``.
        """
        if not jobs:
            return np.zeros(0, dtype=bool)
        return self.fits_cols(
            np.array([j.nodes for j in jobs]),
            np.array([j.bb for j in jobs], dtype=float),
            np.array([j.ssd for j in jobs], dtype=float),
        )

    def fits_cols(
        self, nodes: np.ndarray, bb: np.ndarray, ssd: np.ndarray
    ) -> np.ndarray:
        """:meth:`fits_mask` over pre-gathered demand columns.

        The fast engine slices these straight out of its
        :class:`~repro.simulator.jobtable.JobTable` instead of looping over
        Job objects.  Builds the sorted tier-capacity vector and its
        qualifying-node suffix sums once for the whole batch instead of
        re-summing the tier mapping per job.
        """
        if len(nodes) == 0:
            return np.zeros(0, dtype=bool)
        if len(self.ssd_free) == 1:
            # Single-tier system (e.g. Cori: burst buffer, no local SSDs):
            # a request qualifies every free node or none, so the suffix-sum
            # machinery below collapses to one comparison per column.
            ((cap, free),) = self.ssd_free.items()
            return (
                (nodes <= self.nodes)
                & (bb <= self.bb)
                & (ssd <= cap)
                & (nodes <= free)
            )
        caps = np.array(sorted(self.ssd_free), dtype=float)
        free = np.array([self.ssd_free[c] for c in caps], dtype=np.int64)
        # suffix[i] = free nodes on tiers caps[i:]; suffix[len(caps)] = 0
        # (a request above every tier capacity qualifies zero nodes).
        suffix = np.concatenate([np.cumsum(free[::-1])[::-1], [0]])
        qualifying = suffix[np.searchsorted(caps, ssd, side="left")]
        return (nodes <= self.nodes) & (bb <= self.bb) & (qualifying >= nodes)


class Cluster:
    """Mutable multi-resource cluster state.

    Parameters
    ----------
    nodes:
        Total compute nodes ``N``.
    bb_capacity:
        Total shared burst buffer in GB (``B``).  Zero disables the burst
        buffer entirely (every BB request then fails to fit).
    ssd_tiers:
        Optional mapping of local-SSD capacity (GB) → node count.  When
        given, counts must sum to ``nodes``.  ``None`` means no local SSDs
        (a single 0-GB tier).
    bb_reserved_fraction:
        Fraction of ``bb_capacity`` carved out for persistent reservations
        (Cori reserves one third, §4.1).  Reduces schedulable BB capacity.
    """

    def __init__(
        self,
        nodes: int,
        bb_capacity: float,
        *,
        ssd_tiers: Optional[Mapping[float, int]] = None,
        bb_reserved_fraction: float = 0.0,
    ) -> None:
        if nodes <= 0:
            raise ConfigurationError(f"cluster needs a positive node count, got {nodes}")
        if bb_capacity < 0:
            raise ConfigurationError(f"negative burst buffer capacity {bb_capacity}")
        if not 0.0 <= bb_reserved_fraction < 1.0:
            raise ConfigurationError(
                f"bb_reserved_fraction must be in [0, 1), got {bb_reserved_fraction}"
            )
        self.total_nodes = int(nodes)
        self.bb_capacity = bb_capacity * (1.0 - bb_reserved_fraction)
        self._ssd = SSDPool(ssd_tiers if ssd_tiers is not None else {0.0: nodes})
        if self._ssd.total_nodes != self.total_nodes:
            raise ConfigurationError(
                f"SSD tiers cover {self._ssd.total_nodes} nodes, cluster has {nodes}"
            )
        self.nodes_used = 0
        self.bb_used = 0.0
        #: job id → SSD assignment, for symmetric release
        self._assignments: Dict[int, SSDAssignment] = {}
        #: SSD tier → nodes currently offline due to injected failures
        self._offline: Dict[float, int] = {}
        #: burst-buffer GB currently offline due to injected degradation
        self.bb_offline = 0.0

    # --- queries ---------------------------------------------------------------
    @property
    def nodes_offline(self) -> int:
        """Compute nodes currently failed/offline."""
        return sum(self._offline.values())

    @property
    def nodes_online(self) -> int:
        """Nominal node count minus failed nodes (healthy capacity)."""
        return self.total_nodes - self.nodes_offline

    @property
    def bb_online(self) -> float:
        """Schedulable burst-buffer capacity minus degraded capacity (GB)."""
        return self.bb_capacity - self.bb_offline

    @property
    def nodes_free(self) -> int:
        """Currently free compute nodes (excludes failed nodes)."""
        return self.total_nodes - self.nodes_used - self.nodes_offline

    @property
    def bb_free(self) -> float:
        """Currently free burst buffer in GB.

        Never negative: a degradation while running jobs hold more BB than
        the surviving capacity simply pins the free amount at zero until
        enough jobs release or the capacity is restored.
        """
        return max(self.bb_capacity - self.bb_offline - self.bb_used, 0.0)

    @property
    def ssd_pool(self) -> SSDPool:
        """The underlying local-SSD pool (read for planning, don't mutate)."""
        return self._ssd

    @property
    def has_ssd_tiers(self) -> bool:
        """True when the cluster models heterogeneous local SSDs."""
        return self._ssd.capacities != (0.0,)

    def available(self) -> Available:
        """Immutable snapshot of free capacity for selection methods."""
        return Available(
            nodes=self.nodes_free, bb=self.bb_free, ssd_free=self._ssd.free_per_tier()
        )

    def can_fit(self, job: Job) -> bool:
        """Would ``job`` fit right now, considering all three resources?"""
        return self.available().fits(job)

    def node_utilization(self) -> float:
        """Instantaneous fraction of nodes in use."""
        return self.nodes_used / self.total_nodes

    def bb_utilization(self) -> float:
        """Instantaneous fraction of (schedulable) burst buffer in use."""
        if self.bb_capacity == 0:
            return 0.0
        return self.bb_used / self.bb_capacity

    # --- allocation --------------------------------------------------------------
    def allocate(self, job: Job) -> None:
        """Reserve the job's nodes, burst buffer, and local SSDs.

        Atomic: on failure nothing is reserved.  Raises
        :class:`AllocationError` when the job does not fit or is already
        allocated.
        """
        if job.jid in self._assignments:
            raise AllocationError(f"job {job.jid} is already allocated")
        if job.nodes > self.nodes_free:
            raise AllocationError(
                f"job {job.jid} wants {job.nodes} nodes, only {self.nodes_free} free"
            )
        if job.bb > self.bb_free:
            raise AllocationError(
                f"job {job.jid} wants {job.bb}GB burst buffer, only {self.bb_free}GB free"
            )
        assignment = self._ssd.allocate(job.nodes, job.ssd)  # raises if no fit
        self.nodes_used += job.nodes
        self.bb_used += job.bb
        self._assignments[job.jid] = assignment
        job.assigned_ssd = assignment.capacities() if job.ssd > 0 else ()

    def release(self, job: Job) -> None:
        """Return the job's resources; inverse of :meth:`allocate`."""
        assignment = self._assignments.pop(job.jid, None)
        if assignment is None:
            raise AllocationError(f"job {job.jid} is not allocated")
        self._ssd.release(assignment)
        self.nodes_used -= job.nodes
        self.bb_used -= job.bb
        # Repeated float add/subtract of large GB values accumulates error
        # proportional to capacity; tolerate that, reject real bugs.
        tolerance = 1e-6 * (1.0 + self.bb_capacity)
        if self.nodes_used < 0 or self.bb_used < -tolerance:
            raise AllocationError(
                f"release of job {job.jid} drove usage negative "
                f"(nodes={self.nodes_used}, bb={self.bb_used})"
            )
        self.bb_used = max(self.bb_used, 0.0)

    # --- fault injection -------------------------------------------------------
    def fail_nodes(self, count: int, tier: float) -> int:
        """Take up to ``count`` currently *free* nodes of ``tier`` offline.

        Returns the number of nodes actually failed.  Busy nodes are never
        seized here — the engine kills victim jobs first (releasing their
        nodes) and calls again, so :class:`AllocationError` invariants and
        per-job accounting stay intact.
        """
        drained = self._ssd.drain(count, tier)
        if drained:
            key = float(tier)
            self._offline[key] = self._offline.get(key, 0) + drained
        return drained

    def restore_nodes(self, count: int, tier: float) -> None:
        """Bring previously failed nodes of ``tier`` back online."""
        key = float(tier)
        offline = self._offline.get(key, 0)
        if count > offline:
            raise ResilienceError(
                f"restoring {count} nodes of tier {tier:g}GB, only {offline} offline"
            )
        self._ssd.restore(count, tier)
        self._offline[key] = offline - count

    def degrade_bb(self, amount: float) -> float:
        """Take up to ``amount`` GB of burst buffer offline; returns the
        amount actually degraded (clamped at the schedulable capacity)."""
        if amount < 0:
            raise ResilienceError(f"cannot degrade a negative BB amount ({amount})")
        actual = min(amount, self.bb_capacity - self.bb_offline)
        self.bb_offline += actual
        return actual

    def restore_bb(self, amount: float) -> None:
        """Bring previously degraded burst-buffer capacity back online."""
        if amount < 0:
            raise ResilienceError(f"cannot restore a negative BB amount ({amount})")
        if amount > self.bb_offline + 1e-9:
            raise ResilienceError(
                f"restoring {amount}GB BB, only {self.bb_offline}GB offline"
            )
        self.bb_offline = max(self.bb_offline - amount, 0.0)

    def allocated_waste(self, job: Job) -> float:
        """SSD over-provisioning (GB) of a currently allocated job."""
        assignment = self._assignments.get(job.jid)
        if assignment is None:
            raise AllocationError(f"job {job.jid} is not allocated")
        return assignment.waste

    def nodes_by_tier(self, job: Job) -> Dict[float, int]:
        """Per-SSD-tier node counts held by a currently allocated job."""
        assignment = self._assignments.get(job.jid)
        if assignment is None:
            raise AllocationError(f"job {job.jid} is not allocated")
        return dict(assignment.per_tier)

    def running_jobs(self) -> list[int]:
        """Ids of jobs currently holding resources."""
        return list(self._assignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes {self.nodes_used}/{self.total_nodes}, "
            f"bb {self.bb_used:.0f}/{self.bb_capacity:.0f}GB)"
        )
