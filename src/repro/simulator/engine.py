"""Trace-driven scheduling simulation engine.

The engine replays a job trace against a :class:`~repro.simulator.cluster.Cluster`
under one (base policy, window, selection method) configuration:

1. job **submissions** and **completions** are the exogenous events;
2. after each batch of simultaneous events a **scheduling pass** runs:
   the base policy orders the queue, the window policy extracts the first
   ``w`` eligible jobs, starvation-forced jobs are allocated first, the
   selection method picks jobs from the remaining window, and EASY
   backfilling then fills fragments without delaying the highest-priority
   unstarted job;
3. every occupancy change is recorded for the time-integrated usage
   metrics (§4.2).

When a starvation-forced job does not fit, the §3.1 "must be selected to
run" guarantee is realised by making it the backfill reservation head:
nothing may start that would delay it, so it runs at the earliest instant
its resources free up.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from ..backfill import EasyBackfill, PlannedRelease
from ..errors import SchedulingError, TraceError
from ..policies.base import PriorityPolicy
from ..telemetry import NULL_TRACER, MetricsRegistry, get_tracer
from ..telemetry.tracer import NULL_SPAN

if TYPE_CHECKING:  # pulled lazily at runtime — repro.methods imports the
    # core solvers, which import this simulator package: a module-level
    # import here would close an import cycle.
    from ..methods.base import Selector
    from ..resilience.faults import BBDegrade, FaultInjector, NodeFailure
    from ..resilience.retry import RetryPolicy
from ..windows import WindowPolicy
from .cluster import Cluster
from .events import Event, EventQueue, EventType
from .job import Job, JobState
from .jobtable import JobTable
from .recorder import UsageRecorder

#: EventType → counter name, precomputed so the hot loop does no formatting.
_EVENT_COUNTERS = {et: f"engine.events.{et.name.lower()}" for et in EventType}

#: Queue depth below which a time-dependent (uncacheable) ordering uses the
#: reference tuple sort even on the fast engine — the lexsort path's array
#: setup only amortizes past this measured crossover.
_VECTOR_MIN_QUEUE = 48


@dataclass
class EngineStats:
    """Run-level scheduling statistics.

    ``selected_jobs``, ``forced_jobs``, and ``backfilled_jobs`` partition
    the started jobs by *how* they started; a job started through the
    starvation bound counts only as forced, never also as selected.

    ``selector_time`` and ``selector_calls`` are *derived views*: the
    single timing source is the engine's telemetry registry (the
    ``engine.selector_seconds`` histogram), from which these fields are
    populated when the run finishes.
    """

    invocations: int = 0            #: scheduling passes that reached selection
    selector_time: float = 0.0      #: wall seconds spent inside the selector
    selector_calls: int = 0         #: number of selector invocations
    selected_jobs: int = 0          #: jobs started via window selection
    forced_jobs: int = 0            #: jobs started via the starvation bound
    backfilled_jobs: int = 0        #: jobs started via EASY backfilling
    skipped_passes: int = 0         #: passes skipped by the no-capacity early-out
    # --- resilience (all zero unless a FaultInjector / watchdog is attached) ---
    fallback_calls: int = 0         #: selections answered by a watchdog fallback
    node_failures: int = 0          #: node-failure incidents processed
    nodes_failed: int = 0           #: node-downs summed over incidents
    bb_degrades: int = 0            #: burst-buffer degradation incidents
    job_faults: int = 0             #: spontaneous job-abort events that hit a job
    killed_jobs: int = 0            #: job executions killed by faults
    requeued_jobs: int = 0          #: kills that led to a requeue
    abandoned_jobs: int = 0         #: jobs that reached JobState.ABANDONED
    lost_node_seconds: float = 0.0  #: node-seconds of execution thrown away

    @property
    def mean_selector_time(self) -> float:
        """Average wall time of one selection decision (seconds).

        Averages over *all* ``selector_calls``, including the
        ``fallback_calls`` a :class:`~repro.resilience.SolverWatchdog`
        answered cheaply — under heavy degradation this mean therefore
        drops below the inner solver's own cost.
        """
        if self.selector_calls == 0:
            return 0.0
        return self.selector_time / self.selector_calls

    @property
    def fallback_rate(self) -> float:
        """Fraction of selector calls that degraded to the fallback."""
        if self.selector_calls == 0:
            return 0.0
        return self.fallback_calls / self.selector_calls


@dataclass
class SimulationResult:
    """Everything a run produced, ready for metric evaluation."""

    jobs: List[Job]
    recorder: UsageRecorder
    stats: EngineStats
    makespan: float
    total_nodes: int
    bb_capacity: float
    ssd_capacity: float


class SchedulingEngine:
    """Discrete-event batch-scheduling simulator.

    Parameters
    ----------
    cluster:
        The resource model (fresh per run; the engine mutates it).
    policy:
        Base scheduler priority policy (FCFS, WFP).
    selector:
        Multi-resource selection method; the engine binds system capacities
        into it before running.
    window:
        Window policy (size + starvation bound).
    backfill:
        EASY backfill planner, or ``None`` to disable backfilling.
    backfill_scope:
        ``"window"`` (default) restricts backfill candidates to the jobs
        the scheduler examined this invocation — a window-based scheduler
        looks at ``w`` jobs per pass, so only those may skip ahead, which
        is the §4.3 setting ("all the methods use EASY backfilling" with
        "the same window size for all methods").  ``"queue"`` is classic
        whole-queue EASY, kept for ablation: it largely erases the
        head-of-line-blocking penalty the naive method suffers.
    faults:
        Optional :class:`~repro.resilience.FaultInjector` driving seeded
        node/burst-buffer/job failures through the run.  ``None`` (the
        default) keeps the simulator byte-identical to the fault-free
        engine.
    retry:
        Requeue policy for fault-killed jobs; defaults to
        ``RetryPolicy()`` when ``faults`` is given, ignored otherwise.
    metrics:
        Telemetry registry the run records into (events processed, jobs
        by start route, queue depth over sim-time, selector latency).  A
        fresh one is created when omitted; exposed as ``self.metrics``.
        Spans are additionally emitted to the process's active tracer
        (:func:`repro.telemetry.get_tracer`) — the zero-overhead NULL
        tracer unless a run is explicitly traced.
    fast:
        Enable the array-backed fast path (default).  The fast engine
        builds a :class:`~repro.simulator.jobtable.JobTable` over the
        trace, orders the queue with one ``np.lexsort`` instead of a
        Python tuple sort (caching the ordering for time-independent
        policies such as FCFS until queue membership changes), keeps the
        backfiller's planned-release list incrementally instead of
        rebuilding it every pass, and gates window feasibility from the
        table's columns.  Every shortcut is *byte-identical* to the
        reference path — same job outcomes, same fingerprints — which
        the differential tests assert across all §4 methods.  ``False``
        runs the reference path (the CLI exposes ``--no-fast-engine``).
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: PriorityPolicy,
        selector: Selector,
        window: Optional[WindowPolicy] = None,
        backfill: Optional[EasyBackfill] = EasyBackfill(),
        backfill_scope: str = "window",
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        fast: bool = True,
    ) -> None:
        if backfill_scope not in ("window", "queue"):
            raise SchedulingError(
                f"backfill_scope must be 'window' or 'queue', got {backfill_scope!r}"
            )
        self.backfill_scope = backfill_scope
        from ..methods.base import SystemCapacity  # lazy: avoids import cycle

        self.cluster = cluster
        self.policy = policy
        self.selector = selector
        # Plan-based selectors need the free-capacity snapshot extended
        # with the running jobs' planned releases (see Available.releases).
        self._needs_releases = bool(getattr(selector, "needs_releases", False))
        self.window = window or WindowPolicy()
        self.backfill = backfill
        ssd_total = sum(
            cap * count for cap, count in cluster.ssd_pool.total_per_tier().items()
        )
        self._ssd_capacity = ssd_total
        selector.bind(
            SystemCapacity(
                nodes=cluster.total_nodes, bb=cluster.bb_capacity, ssd_total=ssd_total
            )
        )
        self.faults = faults if faults is not None and faults.scenario.enabled else None
        if self.faults is not None:
            from ..resilience.retry import RetryPolicy as _RetryPolicy

            self.retry = retry if retry is not None else _RetryPolicy()
            self.faults.bind(
                ssd_tiers=cluster.ssd_pool.total_per_tier(),
                bb_capacity=cluster.bb_capacity,
            )
        else:
            self.retry = retry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = NULL_TRACER  # rebound from the active tracer in run()
        self.fast = bool(fast)
        # Cached instrument objects: the hot loop bumps Counter.value
        # directly instead of going through the registry's name lookup on
        # every event.  Refs are shared with self.metrics, so snapshots and
        # pickling (one memo) see the same objects.
        m = self.metrics
        self._c_event_by_type = {
            et: m.counter(name) for et, name in _EVENT_COUNTERS.items()
        }
        self._c_events = m.counter("engine.events")
        self._c_started = m.counter("engine.jobs_started")
        self._c_passes = m.counter("engine.passes")
        self._c_passes_skipped = m.counter("engine.passes_skipped")
        self._c_forced = m.counter("engine.jobs_forced")
        self._c_selected = m.counter("engine.jobs_selected")
        self._c_backfilled = m.counter("engine.jobs_backfilled")
        self._c_order_vectorized = m.counter("engine.order.vectorized")
        self._c_order_cache_hits = m.counter("engine.order.cache_hits")
        self._c_order_fallback = m.counter("engine.order.fallback")
        self._g_queue_depth = m.gauge("engine.queue_depth")
        self._h_selector = m.histogram("engine.selector_seconds")
        # --- run state -------------------------------------------------------
        self._events = EventQueue()
        self._jobs: Optional[List[Job]] = None
        self._queue: List[Job] = []
        self._running: Dict[int, Job] = {}
        self._completed: Set[int] = set()
        self._abandoned: Set[int] = set()
        self._recorder = UsageRecorder()
        self._stats = EngineStats()
        self._ssd_used = 0.0
        self._ssd_waste = 0.0
        self._now = 0.0
        self._terminal = 0
        #: job id → EventQueue token of its pending JOB_END (for fault kills)
        self._end_tokens: Dict[int, int] = {}
        # --- fast-path state -------------------------------------------------
        #: column view of the trace (fast engine only; None on the reference path)
        self._table: Optional[JobTable] = None
        #: bumped whenever queue *membership* changes; keys the order cache
        self._queue_rev = 0
        #: cached priority ordering for time-independent policies
        self._order_cache: Optional[List[Job]] = None
        self._order_rev = -1
        #: jid → PlannedRelease, maintained in lock-step with ``_running``
        self._release_map: Dict[int, PlannedRelease] = {}
        #: True when window.eligible() is provably the identity for this run
        self._eligible_passthrough = False
        #: True when the policy overrides priority_array (pure vectorized scores)
        self._order_vectorized = (
            type(self.policy).priority_array is not PriorityPolicy.priority_array
        )

    # --- pickling (checkpoint/resume) ---------------------------------------------
    # A mid-run engine is the unit :mod:`repro.checkpoint` persists: every
    # piece of run state above is plain picklable data (jobs, events,
    # recorder, metrics, RNG-bearing selector/injector).  The one exception
    # is the active tracer — it holds thread-local nesting state and a lock
    # — so it is dropped on save and rebound from the process's active
    # tracer when the restored engine continues.
    # The priority-order cache is likewise dropped: it is a pure function
    # of (_queue, _queue_rev) and the first pass after a resume rebuilds
    # it bit-identically, so pickling it only bloats every periodic save.
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["_tracer"] = None
        state["_order_cache"] = None
        state["_order_rev"] = -1
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._tracer = NULL_TRACER

    # --- run-state introspection (checkpoint manifests, progress displays) --------
    @property
    def now(self) -> float:
        """Current simulated time (seconds since trace epoch)."""
        return self._now

    @property
    def jobs_total(self) -> int:
        """Number of jobs in the trace being simulated (0 before run())."""
        return len(self._jobs) if self._jobs is not None else 0

    @property
    def jobs_terminal(self) -> int:
        """Jobs that reached a terminal state (completed or abandoned)."""
        return self._terminal

    @property
    def events_pending(self) -> int:
        """Live events still queued."""
        return len(self._events)

    # --- public API ---------------------------------------------------------------
    def run(self, jobs: Sequence[Job], *, checkpointer=None) -> SimulationResult:
        """Simulate the full trace; returns when every job has completed.

        ``checkpointer`` (a :class:`repro.checkpoint.Checkpointer`) is
        polled once per event-batch boundary — the only instants at which
        engine state is internally consistent — and may persist a snapshot
        or stop the run by raising
        :class:`~repro.errors.SimulationInterrupted`.
        """
        jobs = list(jobs)
        ids = {j.jid for j in jobs}
        if len(ids) != len(jobs):
            raise TraceError("duplicate job ids in trace")
        for job in jobs:
            missing = job.deps - ids
            if missing:
                raise TraceError(f"job {job.jid} depends on unknown jobs {missing}")
            if not self.cluster.available().fits(job) and not self._could_ever_fit(job):
                raise TraceError(
                    f"job {job.jid} can never fit on this cluster "
                    f"({job.nodes} nodes, {job.bb}GB BB, {job.ssd}GB/node SSD)"
                )
            self._events.push(Event(job.submit_time, EventType.JOB_SUBMIT, job))
        self._jobs = jobs
        if self.fast:
            self._table = JobTable(jobs)
            # Dep-free trace + stock eligibility filter → the filter is the
            # identity, so each pass can skip rebuilding the eligible list.
            self._eligible_passthrough = not any(
                job.deps for job in jobs
            ) and type(self.window).eligible is WindowPolicy.eligible
        if self.faults is not None:
            self._recorder.observe_capacity(
                0.0, self.cluster.nodes_online, self.cluster.bb_online
            )
            self._push_fault(EventType.NODE_DOWN, self.faults.next_node_failure(0.0))
            self._push_fault(EventType.BB_DEGRADE, self.faults.next_bb_degrade(0.0))
            fail_at = self.faults.next_job_fail(0.0)
            if fail_at is not None:
                self._events.push(Event(fail_at, EventType.JOB_FAIL))
        return self._run_loop(checkpointer)

    def continue_run(self, *, checkpointer=None) -> SimulationResult:
        """Resume a restored mid-run engine until the trace completes.

        Only valid on an engine that was priming/running when it was
        snapshotted (i.e. one loaded by
        :func:`repro.checkpoint.load_checkpoint`); the event loop picks up
        exactly where the snapshot froze it.
        """
        if self._jobs is None:
            raise SchedulingError("continue_run() needs a primed engine; call run()")
        return self._run_loop(checkpointer)

    def _run_loop(self, checkpointer=None) -> SimulationResult:
        # With faults the event stream regenerates itself indefinitely, so
        # the loop also stops once every job is terminal (completed or
        # abandoned); without faults both conditions empty simultaneously.
        jobs = self._jobs
        assert jobs is not None
        self._tracer = get_tracer()
        metrics = self.metrics
        events = self._events
        n_jobs = len(jobs)
        c_events = self._c_events
        by_type = self._c_event_by_type
        with self._tracer.span(
            "event_loop", jobs=n_jobs, method=self.selector.name
        ) as loop_span:
            while events and self._terminal < n_jobs:
                t = events.peek_time()
                assert t is not None
                self._now = t
                changed = False
                if self.fast:
                    # Batch-pop: pop_at re-checks the heap top each
                    # iteration, so events pushed *for t* while processing
                    # the batch are delivered in exactly the reference
                    # peek/pop order below.
                    while True:
                        event = events.pop_at(t)
                        if event is None:
                            break
                        c_events.value += 1
                        by_type[event.etype].value += 1
                        changed |= self._process(event)
                else:
                    while events and events.peek_time() == t:
                        event = events.pop()
                        metrics.inc("engine.events")
                        metrics.inc(_EVENT_COUNTERS[event.etype])
                        changed |= self._process(event)
                if changed:
                    self._schedule_pass(t)
                if checkpointer is not None:
                    # Batch boundary: every event at t is applied and the
                    # scheduling pass has run — a consistent snapshot point.
                    checkpointer.after_batch(self)
            loop_span.set(makespan=self._now, events=c_events.value)
        self._stats.fallback_calls = getattr(self.selector, "fallback_calls", 0)
        metrics.counter("engine.solver_fallbacks").inc(self._stats.fallback_calls)
        # GA evaluation-cache counters (None for greedy methods / cache off).
        cache_stats = getattr(self.selector, "eval_cache_stats", None)
        if cache_stats:
            for key, value in cache_stats.items():
                metrics.inc(f"ga.eval_cache.{key}", value)
        # Optimality-gap telemetry (empty unless a yardstick-equipped
        # selector measured its passes against the exact optimum).
        gaps = getattr(self.selector, "optimality_gaps", None)
        if gaps:
            gap_hist = metrics.histogram("ga.optimality_gap")
            for gap in gaps:
                gap_hist.observe(gap)
        skipped = getattr(self.selector, "yardstick_skipped", 0)
        if skipped:
            metrics.inc("ga.yardstick.skipped", skipped)
        # Derived views: EngineStats timing fields come from the telemetry
        # histogram, the run's single timing source.
        selector_hist = metrics.histograms.get("engine.selector_seconds")
        if selector_hist is not None:
            self._stats.selector_time = selector_hist.total
            self._stats.selector_calls = selector_hist.count
        return SimulationResult(
            jobs=jobs,
            recorder=self._recorder,
            stats=self._stats,
            makespan=self._now,
            total_nodes=self.cluster.total_nodes,
            bb_capacity=self.cluster.bb_capacity,
            ssd_capacity=self._ssd_capacity,
        )

    # --- internals ------------------------------------------------------------------
    def _could_ever_fit(self, job: Job) -> bool:
        """Would the job fit on an *empty* cluster?"""
        if job.nodes > self.cluster.total_nodes or job.bb > self.cluster.bb_capacity:
            return False
        qualifying = sum(
            n
            for cap, n in self.cluster.ssd_pool.total_per_tier().items()
            if cap >= job.ssd
        )
        return qualifying >= job.nodes

    def _process(self, event: Event) -> bool:
        """Apply one event; returns True when scheduling state changed."""
        if event.etype is EventType.JOB_END:
            job: Job = event.payload
            self._ssd_waste -= self.cluster.allocated_waste(job)
            self.cluster.release(job)
            job.mark_completed(event.time)
            del self._running[job.jid]
            self._release_map.pop(job.jid, None)
            self._end_tokens.pop(job.jid, None)
            self._completed.add(job.jid)
            self._terminal += 1
            self._ssd_used -= job.ssd * job.nodes
            self._sync_state(job)
            self._observe(event.time)
            return True
        if event.etype is EventType.JOB_SUBMIT:
            job = event.payload
            if job.deps & self._abandoned:
                # An upstream dependency was abandoned before this job even
                # arrived: it can never become eligible, so it is abandoned
                # on the spot rather than queued forever.
                self._abandon(job, event.time)
                return False
            job.mark_queued()
            self._queue.append(job)
            self._queue_rev += 1
            self._sync_state(job)
            self._observe_queue(event.time)
            return True
        if event.etype is EventType.JOB_REQUEUE:
            job = event.payload
            job.mark_requeued()
            self._queue.append(job)
            self._queue_rev += 1
            self._sync_state(job)
            self._observe_queue(event.time)
            return True
        if event.etype is EventType.NODE_DOWN:
            assert self.faults is not None
            self._apply_node_failure(event.payload, event.time)
            self._push_fault(
                EventType.NODE_DOWN, self.faults.next_node_failure(event.time)
            )
            self._observe_capacity(event.time)
            return True
        if event.etype is EventType.NODE_UP:
            count, tier = event.payload
            self.cluster.restore_nodes(count, tier)
            self._observe_capacity(event.time)
            return True
        if event.etype is EventType.BB_DEGRADE:
            assert self.faults is not None
            fault: BBDegrade = event.payload
            actual = self.cluster.degrade_bb(fault.amount)
            self._stats.bb_degrades += 1
            if actual > 0:
                self._events.push(
                    Event(event.time + fault.repair, EventType.BB_RESTORE, actual)
                )
            self._push_fault(
                EventType.BB_DEGRADE, self.faults.next_bb_degrade(event.time)
            )
            self._observe_capacity(event.time)
            # Losing capacity opens no scheduling opportunity — no pass.
            return False
        if event.etype is EventType.BB_RESTORE:
            self.cluster.restore_bb(event.payload)
            self._observe_capacity(event.time)
            return True
        if event.etype is EventType.JOB_FAIL:
            assert self.faults is not None
            changed = False
            if self._running:
                victim = self.faults.pick_victim(sorted(self._running))
                self._kill(self._running[victim], event.time)
                self._stats.job_faults += 1
                self._observe(event.time)
                changed = True
            fail_at = self.faults.next_job_fail(event.time)
            if fail_at is not None:
                self._events.push(Event(fail_at, EventType.JOB_FAIL))
            return changed
        return False

    def _start(self, job: Job, now: float) -> None:
        """Allocate and launch one job."""
        self.cluster.allocate(job)
        job.mark_started(now)
        self._running[job.jid] = job
        self._queue.remove(job)
        self._queue_rev += 1
        self._c_started.value += 1
        self._ssd_used += job.ssd * job.nodes
        self._ssd_waste += self.cluster.allocated_waste(job)
        self._end_tokens[job.jid] = self._events.push(
            Event(now + job.runtime, EventType.JOB_END, job)
        )
        # The job's planned release is fixed at start (walltime estimate and
        # tier assignment never change while it runs), so it is recorded once
        # here instead of being rebuilt from _running every backfill pass.
        # Insertions/deletions mirror _running exactly, so iteration order —
        # and therefore the backfill plan — matches the reference rebuild.
        self._release_map[job.jid] = PlannedRelease(
            est_end=now + job.walltime,
            bb=job.bb,
            nodes_by_tier=self.cluster.nodes_by_tier(job),
        )
        self._sync_state(job)

    def _sync_state(self, job: Job) -> None:
        """Mirror a lifecycle transition into the job table's state column."""
        table = self._table
        if table is not None:
            table.set_state(table.row_of[job.jid], job.state)

    # --- fault handling ---------------------------------------------------------
    def _push_fault(self, etype: EventType, incident) -> None:
        """Queue the next incident of one fault kind (regenerative stream)."""
        if incident is not None:
            self._events.push(Event(incident.time, etype, incident))

    def _observe_capacity(self, now: float) -> None:
        self._recorder.observe_capacity(
            now, self.cluster.nodes_online, self.cluster.bb_online
        )

    def _apply_node_failure(self, fault: NodeFailure, now: float) -> None:
        """Take nodes offline, killing victim jobs when free ones run out.

        Free nodes of the struck tier are drained first; if the incident
        needs more, running jobs holding that tier die youngest-first
        (minimising lost work) until the count is reached or the tier is
        exhausted.  The paired NODE_UP restores exactly what went down, so
        capacity accounting is symmetric.
        """
        self._stats.node_failures += 1
        remaining = fault.count - self.cluster.fail_nodes(fault.count, fault.tier)
        while remaining > 0:
            victim = self._pick_tier_victim(fault.tier)
            if victim is None:
                break
            self._kill(victim, now)
            remaining -= self.cluster.fail_nodes(remaining, fault.tier)
        down = fault.count - remaining
        self._stats.nodes_failed += down
        if down > 0:
            self._events.push(
                Event(now + fault.repair, EventType.NODE_UP, (down, fault.tier))
            )
        self._observe(now)

    def _pick_tier_victim(self, tier: float) -> Optional[Job]:
        """Youngest running job holding at least one node of ``tier``."""
        holders = [
            j
            for j in self._running.values()
            if self.cluster.nodes_by_tier(j).get(tier, 0) > 0
        ]
        if not holders:
            return None
        return max(holders, key=lambda j: (j.start_time, j.jid))

    def _kill(self, job: Job, now: float) -> None:
        """Kill one running job and route it through the retry policy."""
        self._stats.killed_jobs += 1
        self.metrics.inc("engine.jobs_killed")
        self._ssd_waste -= self.cluster.allocated_waste(job)
        self.cluster.release(job)
        del self._running[job.jid]
        self._release_map.pop(job.jid, None)
        self._ssd_used -= job.ssd * job.nodes
        token = self._end_tokens.pop(job.jid, None)
        if token is not None:
            self._events.cancel(token)
        before = job.lost_node_seconds
        job.mark_killed(now)
        self._sync_state(job)
        self._stats.lost_node_seconds += job.lost_node_seconds - before
        assert self.retry is not None
        if self.retry.should_retry(job.attempts):
            delay = self.retry.requeue_delay(job.attempts)
            self._events.push(Event(now + delay, EventType.JOB_REQUEUE, job))
            self._stats.requeued_jobs += 1
            self.metrics.inc("engine.jobs_requeued")
        else:
            self._abandon(job, now)

    def _abandon(self, job: Job, now: float) -> None:
        """Mark ``job`` abandoned and cascade to jobs depending on it.

        Dependents already in the queue are abandoned transitively; ones
        not yet submitted are caught at their JOB_SUBMIT event via
        ``self._abandoned``.
        """
        stack = [job]
        while stack:
            j = stack.pop()
            if j.state is JobState.ABANDONED:
                continue
            if j in self._queue:
                self._queue.remove(j)
                self._queue_rev += 1
                self._observe_queue(now)
            j.mark_abandoned(now)
            self._sync_state(j)
            self._abandoned.add(j.jid)
            self._terminal += 1
            self._stats.abandoned_jobs += 1
            self.metrics.inc("engine.jobs_abandoned")
            stack.extend(q for q in self._queue if j.jid in q.deps)

    def _observe(self, now: float) -> None:
        self._recorder.observe_cluster(
            now,
            self.cluster.nodes_used,
            self.cluster.bb_used,
            self._ssd_used,
            self._ssd_waste,
        )
        self._observe_queue(now)

    def _observe_queue(self, now: float) -> None:
        """Record queue depth to both the usage recorder and telemetry."""
        depth = len(self._queue)
        self._recorder.observe_queue(now, depth)
        self._g_queue_depth.set(depth, now)

    def _planned_releases(self) -> List[PlannedRelease]:
        if self.fast:
            # Maintained incrementally at _start/_kill/JOB_END in the same
            # insertion order as _running; identical to the rebuild below.
            return list(self._release_map.values())
        releases = []
        for job in self._running.values():
            assert job.start_time is not None
            releases.append(
                PlannedRelease(
                    est_end=job.start_time + job.walltime,
                    bb=job.bb,
                    nodes_by_tier=self.cluster.nodes_by_tier(job),
                )
            )
        return releases

    def _ordered_queue(self, now: float) -> List[Job]:
        """Priority-ordered queue, via the fast path when enabled.

        For time-independent policies (FCFS) the ordering is cached and
        invalidated only when queue *membership* changes (``_queue_rev``
        bumps at the four mutation sites: submit, requeue, start, abandon)
        — the scores of the jobs already in the queue can never change.

        Time-dependent policies (WFP) must rescore every pass, and their
        bit-exact score kernels still pay per-element Python pow, so the
        lexsort path only wins once the array setup amortizes: below
        ``_VECTOR_MIN_QUEUE`` (measured crossover ~48) the reference
        tuple sort is used even on the fast engine.
        """
        if self._table is None or len(self._queue) < 2:
            return self.policy.order(self._queue, now)
        if self.policy.time_independent:
            if self._order_rev == self._queue_rev and self._order_cache is not None:
                self._c_order_cache_hits.value += 1
                return self._order_cache
            ordered = self.policy.order(self._queue, now, table=self._table)
            self._order_cache = ordered
            self._order_rev = self._queue_rev
            self._c_order_vectorized.value += 1
            return ordered
        if len(self._queue) < _VECTOR_MIN_QUEUE:
            return self.policy.order(self._queue, now)
        if self._order_vectorized:
            self._c_order_vectorized.value += 1
        else:
            self._c_order_fallback.value += 1
        return self.policy.order(self._queue, now, table=self._table)

    def _schedule_pass(self, now: float) -> None:
        """One full scheduling invocation (§3 pipeline)."""
        if not self._queue:
            return
        if self.cluster.nodes_free == 0:
            # Nothing can start; skip the (possibly expensive) selection.
            self._stats.skipped_passes += 1
            self._c_passes_skipped.value += 1
            return
        self._c_passes.value += 1
        tracer = self._tracer
        traced = tracer.enabled  # skip span construction on untraced runs
        with (
            tracer.span("schedule_pass", t=now, queue=len(self._queue))
            if traced
            else NULL_SPAN
        ) as pass_span:
            with (
                tracer.span("window_extract") if traced else NULL_SPAN
            ) as win_span:
                # One ordering + dependency-gating pass serves both window
                # extraction and the backfill stage below.
                ordered = self._ordered_queue(now)
                eligible = (
                    ordered
                    if self._eligible_passthrough
                    else self.window.eligible(ordered, self._completed)
                )
                window = self.window.extract_eligible(eligible)
                win_span.set(window=len(window), forced=len(window.forced))
            started: Set[int] = set()
            selected_window_idx: Set[int] = set()
            blocked_forced: Optional[Job] = None

            # 1. Starvation-forced jobs run first, in window order; the first
            #    one that does not fit becomes the protected backfill head.
            for i in window.forced:
                job = window.jobs[i]
                if self.cluster.can_fit(job):
                    self._start(job, now)
                    started.add(job.jid)
                    selected_window_idx.add(i)
                    self._stats.forced_jobs += 1
                    self._c_forced.value += 1
                else:
                    blocked_forced = job
                    break

            # 2. Window selection via the configured method.
            if blocked_forced is None:
                reduced = [j for i, j in enumerate(window.jobs) if i not in selected_window_idx]
                # One capacity snapshot both gates the pass and feeds the
                # selector (nothing allocates in between, so it is exactly
                # the per-job can_fit() this replaces).
                avail = self.cluster.available()
                if self._needs_releases:
                    avail = replace(
                        avail, releases=tuple(self._planned_releases()), now=now
                    )
                if reduced:
                    table = self._table
                    if table is not None:
                        wrows = table.rows_for(reduced)
                        feasible = avail.fits_cols(
                            table.nodes[wrows], table.bb[wrows], table.ssd[wrows]
                        ).any()
                    else:
                        feasible = avail.fits_mask(reduced).any()
                else:
                    feasible = False
                if feasible:
                    with (
                        tracer.span(
                            "select", method=self.selector.name, window=len(reduced)
                        )
                        if traced
                        else NULL_SPAN
                    ) as sel_span:
                        t0 = _time.perf_counter()
                        picks = self.selector.select(reduced, avail)
                        self._h_selector.observe(_time.perf_counter() - t0)
                        sel_span.set(picked=len(picks))
                    type(self.selector).verify_feasible(reduced, avail, picks)
                    index_map = [
                        i for i in range(len(window.jobs)) if i not in selected_window_idx
                    ]
                    for p in sorted(picks):
                        job = reduced[p]
                        self._start(job, now)
                        started.add(job.jid)
                        selected_window_idx.add(index_map[p])
                        self._stats.selected_jobs += 1
                        self._c_selected.value += 1
                self._stats.invocations += 1

            self.window.record_outcome(window, selected_window_idx)

            # 3. EASY backfilling over the remaining eligible jobs.  In the
            #    default "window" scope only the jobs the scheduler examined
            #    this pass may skip ahead; "queue" scope considers everything.
            backfilled = 0
            if self.backfill is not None and self._queue:
                # Jobs started above left the queue; because the policy
                # orders by a per-job sort key, filtering them out of the
                # pass's eligible list equals re-ordering the shrunk queue.
                in_queue = {j.jid for j in self._queue}
                still_eligible = [j for j in eligible if j.jid in in_queue]
                if self.backfill_scope == "window":
                    remaining = still_eligible[
                        : self.window.scope_size(len(still_eligible))
                    ]
                else:
                    remaining = still_eligible
                if blocked_forced is not None and blocked_forced in remaining:
                    remaining.remove(blocked_forced)
                    remaining.insert(0, blocked_forced)
                if remaining:
                    with (
                        tracer.span("backfill_pass", candidates=len(remaining))
                        if traced
                        else NULL_SPAN
                    ) as bf_span:
                        plan = self.backfill.plan(
                            remaining,
                            self.cluster.bb_free,
                            self.cluster.ssd_pool.free_per_tier(),
                            self._planned_releases(),
                            now,
                        )
                        for job in plan.to_start:
                            self._start(job, now)
                            self._stats.backfilled_jobs += 1
                            backfilled += 1
                        bf_span.set(backfilled=backfilled)
            self._c_backfilled.value += backfilled
            pass_span.set(started=len(started) + backfilled)
            self._observe(now)
