"""Trace-driven scheduling simulation engine.

The engine replays a job trace against a :class:`~repro.simulator.cluster.Cluster`
under one (base policy, window, selection method) configuration:

1. job **submissions** and **completions** are the exogenous events;
2. after each batch of simultaneous events a **scheduling pass** runs:
   the base policy orders the queue, the window policy extracts the first
   ``w`` eligible jobs, starvation-forced jobs are allocated first, the
   selection method picks jobs from the remaining window, and EASY
   backfilling then fills fragments without delaying the highest-priority
   unstarted job;
3. every occupancy change is recorded for the time-integrated usage
   metrics (§4.2).

When a starvation-forced job does not fit, the §3.1 "must be selected to
run" guarantee is realised by making it the backfill reservation head:
nothing may start that would delay it, so it runs at the earliest instant
its resources free up.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from ..backfill import EasyBackfill, PlannedRelease
from ..errors import SchedulingError, TraceError
from ..policies.base import PriorityPolicy

if TYPE_CHECKING:  # pulled lazily at runtime — repro.methods imports the
    # core solvers, which import this simulator package: a module-level
    # import here would close an import cycle.
    from ..methods.base import Selector
from ..windows import WindowPolicy
from .cluster import Cluster
from .events import Event, EventQueue, EventType
from .job import Job, JobState
from .recorder import UsageRecorder


@dataclass
class EngineStats:
    """Run-level scheduling statistics."""

    invocations: int = 0            #: scheduling passes that reached selection
    selector_time: float = 0.0      #: wall seconds spent inside the selector
    selector_calls: int = 0         #: number of selector invocations
    selected_jobs: int = 0          #: jobs started via window selection
    forced_jobs: int = 0            #: jobs started via the starvation bound
    backfilled_jobs: int = 0        #: jobs started via EASY backfilling
    skipped_passes: int = 0         #: passes skipped by the no-capacity early-out

    @property
    def mean_selector_time(self) -> float:
        """Average wall time of one selection decision (seconds)."""
        if self.selector_calls == 0:
            return 0.0
        return self.selector_time / self.selector_calls


@dataclass
class SimulationResult:
    """Everything a run produced, ready for metric evaluation."""

    jobs: List[Job]
    recorder: UsageRecorder
    stats: EngineStats
    makespan: float
    total_nodes: int
    bb_capacity: float
    ssd_capacity: float


class SchedulingEngine:
    """Discrete-event batch-scheduling simulator.

    Parameters
    ----------
    cluster:
        The resource model (fresh per run; the engine mutates it).
    policy:
        Base scheduler priority policy (FCFS, WFP).
    selector:
        Multi-resource selection method; the engine binds system capacities
        into it before running.
    window:
        Window policy (size + starvation bound).
    backfill:
        EASY backfill planner, or ``None`` to disable backfilling.
    backfill_scope:
        ``"window"`` (default) restricts backfill candidates to the jobs
        the scheduler examined this invocation — a window-based scheduler
        looks at ``w`` jobs per pass, so only those may skip ahead, which
        is the §4.3 setting ("all the methods use EASY backfilling" with
        "the same window size for all methods").  ``"queue"`` is classic
        whole-queue EASY, kept for ablation: it largely erases the
        head-of-line-blocking penalty the naive method suffers.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: PriorityPolicy,
        selector: Selector,
        window: Optional[WindowPolicy] = None,
        backfill: Optional[EasyBackfill] = EasyBackfill(),
        backfill_scope: str = "window",
    ) -> None:
        if backfill_scope not in ("window", "queue"):
            raise SchedulingError(
                f"backfill_scope must be 'window' or 'queue', got {backfill_scope!r}"
            )
        self.backfill_scope = backfill_scope
        from ..methods.base import SystemCapacity  # lazy: avoids import cycle

        self.cluster = cluster
        self.policy = policy
        self.selector = selector
        self.window = window or WindowPolicy()
        self.backfill = backfill
        ssd_total = sum(
            cap * count for cap, count in cluster.ssd_pool.total_per_tier().items()
        )
        self._ssd_capacity = ssd_total
        selector.bind(
            SystemCapacity(
                nodes=cluster.total_nodes, bb=cluster.bb_capacity, ssd_total=ssd_total
            )
        )
        # --- run state -------------------------------------------------------
        self._events = EventQueue()
        self._queue: List[Job] = []
        self._running: Dict[int, Job] = {}
        self._completed: Set[int] = set()
        self._recorder = UsageRecorder()
        self._stats = EngineStats()
        self._ssd_used = 0.0
        self._ssd_waste = 0.0
        self._now = 0.0

    # --- public API ---------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the full trace; returns when every job has completed."""
        jobs = list(jobs)
        ids = {j.jid for j in jobs}
        if len(ids) != len(jobs):
            raise TraceError("duplicate job ids in trace")
        for job in jobs:
            missing = job.deps - ids
            if missing:
                raise TraceError(f"job {job.jid} depends on unknown jobs {missing}")
            if not self.cluster.available().fits(job) and not self._could_ever_fit(job):
                raise TraceError(
                    f"job {job.jid} can never fit on this cluster "
                    f"({job.nodes} nodes, {job.bb}GB BB, {job.ssd}GB/node SSD)"
                )
            self._events.push(Event(job.submit_time, EventType.JOB_SUBMIT, job))
        while self._events:
            t = self._events.peek_time()
            assert t is not None
            self._now = t
            changed = False
            while self._events and self._events.peek_time() == t:
                changed |= self._process(self._events.pop())
            if changed:
                self._schedule_pass(t)
        return SimulationResult(
            jobs=jobs,
            recorder=self._recorder,
            stats=self._stats,
            makespan=self._now,
            total_nodes=self.cluster.total_nodes,
            bb_capacity=self.cluster.bb_capacity,
            ssd_capacity=self._ssd_capacity,
        )

    # --- internals ------------------------------------------------------------------
    def _could_ever_fit(self, job: Job) -> bool:
        """Would the job fit on an *empty* cluster?"""
        if job.nodes > self.cluster.total_nodes or job.bb > self.cluster.bb_capacity:
            return False
        qualifying = sum(
            n
            for cap, n in self.cluster.ssd_pool.total_per_tier().items()
            if cap >= job.ssd
        )
        return qualifying >= job.nodes

    def _process(self, event: Event) -> bool:
        """Apply one event; returns True when scheduling state changed."""
        if event.etype is EventType.JOB_END:
            job: Job = event.payload
            self._ssd_waste -= self.cluster.allocated_waste(job)
            self.cluster.release(job)
            job.mark_completed(event.time)
            del self._running[job.jid]
            self._completed.add(job.jid)
            self._ssd_used -= job.ssd * job.nodes
            self._observe(event.time)
            return True
        if event.etype is EventType.JOB_SUBMIT:
            job = event.payload
            job.mark_queued()
            self._queue.append(job)
            self._recorder.observe_queue(event.time, len(self._queue))
            return True
        return False

    def _start(self, job: Job, now: float) -> None:
        """Allocate and launch one job."""
        self.cluster.allocate(job)
        job.mark_started(now)
        self._running[job.jid] = job
        self._queue.remove(job)
        self._ssd_used += job.ssd * job.nodes
        self._ssd_waste += self.cluster.allocated_waste(job)
        self._events.push(Event(now + job.runtime, EventType.JOB_END, job))

    def _observe(self, now: float) -> None:
        self._recorder.observe_cluster(
            now,
            self.cluster.nodes_used,
            self.cluster.bb_used,
            self._ssd_used,
            self._ssd_waste,
        )
        self._recorder.observe_queue(now, len(self._queue))

    def _planned_releases(self) -> List[PlannedRelease]:
        releases = []
        for job in self._running.values():
            assert job.start_time is not None
            releases.append(
                PlannedRelease(
                    est_end=job.start_time + job.walltime,
                    bb=job.bb,
                    nodes_by_tier=self.cluster.nodes_by_tier(job),
                )
            )
        return releases

    def _schedule_pass(self, now: float) -> None:
        """One full scheduling invocation (§3 pipeline)."""
        if not self._queue:
            return
        if self.cluster.nodes_free == 0:
            # Nothing can start; skip the (possibly expensive) selection.
            self._stats.skipped_passes += 1
            return
        ordered = self.policy.order(self._queue, now)
        window = self.window.extract(ordered, self._completed)
        started: Set[int] = set()
        selected_window_idx: Set[int] = set()
        blocked_forced: Optional[Job] = None

        # 1. Starvation-forced jobs run first, in window order; the first
        #    one that does not fit becomes the protected backfill head.
        for i in window.forced:
            job = window.jobs[i]
            if self.cluster.can_fit(job):
                self._start(job, now)
                started.add(job.jid)
                selected_window_idx.add(i)
                self._stats.forced_jobs += 1
            else:
                blocked_forced = job
                break

        # 2. Window selection via the configured method.
        if blocked_forced is None:
            reduced = [j for i, j in enumerate(window.jobs) if i not in selected_window_idx]
            if reduced and any(self.cluster.can_fit(j) for j in reduced):
                avail = self.cluster.available()
                t0 = _time.perf_counter()
                picks = self.selector.select(reduced, avail)
                self._stats.selector_time += _time.perf_counter() - t0
                self._stats.selector_calls += 1
                type(self.selector).verify_feasible(reduced, avail, picks)
                index_map = [
                    i for i in range(len(window.jobs)) if i not in selected_window_idx
                ]
                for p in sorted(picks):
                    job = reduced[p]
                    self._start(job, now)
                    started.add(job.jid)
                    selected_window_idx.add(index_map[p])
                    self._stats.selected_jobs += 1
            self._stats.invocations += 1

        self.window.record_outcome(window, selected_window_idx)

        # 3. EASY backfilling over the remaining eligible jobs.  In the
        #    default "window" scope only the jobs the scheduler examined
        #    this pass may skip ahead; "queue" scope considers everything.
        if self.backfill is not None and self._queue:
            eligible = self.window.eligible(
                self.policy.order(self._queue, now), self._completed
            )
            if self.backfill_scope == "window":
                remaining = eligible[: self.window.scope_size(len(eligible))]
            else:
                remaining = list(eligible)
            if blocked_forced is not None and blocked_forced in remaining:
                remaining.remove(blocked_forced)
                remaining.insert(0, blocked_forced)
            if remaining:
                plan = self.backfill.plan(
                    remaining,
                    self.cluster.bb_free,
                    self.cluster.ssd_pool.free_per_tier(),
                    self._planned_releases(),
                    now,
                )
                for job in plan.to_start:
                    self._start(job, now)
                    self._stats.backfilled_jobs += 1
        self._observe(now)
