"""Job model: the unit of work a batch scheduler allocates.

A :class:`Job` mirrors the fields the paper's traces carry (§4.1): requested
node count, requested shared burst-buffer capacity, requested per-node local
SSD capacity (§5 case study), submit time, actual runtime, and the
user-supplied walltime estimate that EASY backfilling relies on.

Jobs move through a small lifecycle state machine::

    PENDING --submit--> QUEUED --start--> RUNNING --finish--> COMPLETED
                          ^                  |
                          +---requeue--------+--kill (node fault)
                          |
                          +--give-up--> ABANDONED

State transitions are methods so invariants (e.g. a job cannot start twice,
cannot finish before starting) are enforced in one place.  The fault path
(kill → requeue → abandon) is exercised only when a
:class:`~repro.resilience.FaultInjector` is attached to the engine; fault-free
runs never leave the top row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import SchedulingError, TraceError


class JobState(enum.Enum):
    """Lifecycle states of a job inside the simulator."""

    PENDING = "pending"      #: created, not yet submitted to the queue
    QUEUED = "queued"        #: waiting in the scheduler queue
    RUNNING = "running"      #: allocated and executing
    COMPLETED = "completed"  #: finished and resources released
    ABANDONED = "abandoned"  #: killed by faults too often; retries exhausted


@dataclass
class Job:
    """A batch job with multi-resource demands.

    Parameters
    ----------
    jid:
        Unique job id within a trace.
    submit_time:
        Seconds since trace epoch at which the job enters the queue.
    runtime:
        Actual execution time in seconds (known to the simulator, *not*
        to the scheduler).
    walltime:
        User-requested walltime estimate in seconds; the scheduler's only
        view of job length (used by WFP priority and EASY backfilling).
        Must be ``>= runtime`` is *not* enforced — real traces contain
        underestimates; the simulator kills nothing and simply uses the
        actual runtime for completion.
    nodes:
        Requested number of compute nodes (``n_i`` in §3.2.1).
    bb:
        Requested shared burst buffer in GB (``b_i``).  Zero means the job
        does not use the burst buffer.
    ssd:
        Requested local SSD per node in GB (``s_i``, §5).  Zero means no
        local SSD requirement.
    deps:
        Ids of jobs that must complete before this one may enter the
        scheduling window (§3.1).
    user:
        Opaque user identifier (used only for reporting).
    """

    jid: int
    submit_time: float
    runtime: float
    walltime: float
    nodes: int
    bb: float = 0.0
    ssd: float = 0.0
    deps: FrozenSet[int] = field(default_factory=frozenset)
    user: str = ""

    # --- simulation bookkeeping (filled in by the engine) -------------------
    state: JobState = field(default=JobState.PENDING, compare=False)
    start_time: Optional[float] = field(default=None, compare=False)
    end_time: Optional[float] = field(default=None, compare=False)
    #: Per-node SSD capacities actually assigned (§5); empty when no SSD.
    assigned_ssd: tuple = field(default=(), compare=False)
    #: Number of scheduling invocations spent inside the window unselected
    #: (starvation counter, §3.1).
    window_age: int = field(default=0, compare=False)
    #: Times the job was killed by a fault and taken off the cluster.
    attempts: int = field(default=0, compare=False)
    #: Node-seconds of execution lost to fault kills (work thrown away).
    lost_node_seconds: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise TraceError(f"job {self.jid}: nodes must be positive, got {self.nodes}")
        if self.runtime < 0:
            raise TraceError(f"job {self.jid}: negative runtime {self.runtime}")
        if self.walltime <= 0:
            raise TraceError(f"job {self.jid}: walltime must be positive, got {self.walltime}")
        if self.bb < 0:
            raise TraceError(f"job {self.jid}: negative burst buffer request {self.bb}")
        if self.ssd < 0:
            raise TraceError(f"job {self.jid}: negative SSD request {self.ssd}")
        if self.submit_time < 0:
            raise TraceError(f"job {self.jid}: negative submit time {self.submit_time}")
        if not isinstance(self.deps, frozenset):
            self.deps = frozenset(self.deps)
        if self.jid in self.deps:
            raise TraceError(f"job {self.jid} depends on itself")

    # --- state machine ------------------------------------------------------
    def mark_queued(self) -> None:
        """Transition PENDING → QUEUED at submission."""
        if self.state is not JobState.PENDING:
            raise SchedulingError(f"job {self.jid}: cannot queue from {self.state}")
        self.state = JobState.QUEUED

    def mark_started(self, now: float) -> None:
        """Transition QUEUED → RUNNING and record the start timestamp."""
        if self.state is not JobState.QUEUED:
            raise SchedulingError(f"job {self.jid}: cannot start from {self.state}")
        if now < self.submit_time:
            raise SchedulingError(
                f"job {self.jid}: start {now} precedes submit {self.submit_time}"
            )
        self.state = JobState.RUNNING
        self.start_time = now

    def mark_completed(self, now: float) -> None:
        """Transition RUNNING → COMPLETED and record the end timestamp."""
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.jid}: cannot complete from {self.state}")
        self.state = JobState.COMPLETED
        self.end_time = now

    def mark_killed(self, now: float) -> None:
        """Transition RUNNING → PENDING after a fault kill.

        The partial execution is discarded: ``lost_node_seconds``
        accumulates the thrown-away work, ``attempts`` counts the kill, and
        the start timestamp is cleared so a later successful attempt (or
        none) determines the wait/slowdown metrics.
        """
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.jid}: cannot kill from {self.state}")
        assert self.start_time is not None
        self.lost_node_seconds += self.nodes * (now - self.start_time)
        self.attempts += 1
        self.state = JobState.PENDING
        self.start_time = None
        self.end_time = None
        self.assigned_ssd = ()

    def mark_requeued(self) -> None:
        """Transition PENDING → QUEUED when a killed job re-enters the queue."""
        if self.state is not JobState.PENDING:
            raise SchedulingError(f"job {self.jid}: cannot requeue from {self.state}")
        self.state = JobState.QUEUED
        self.window_age = 0

    def mark_abandoned(self, now: float) -> None:
        """Terminal transition to ABANDONED (retries exhausted or dep lost).

        Allowed from PENDING (just killed, or never submitted) and QUEUED
        (a dependency was abandoned, so the job can never become eligible).
        """
        if self.state not in (JobState.PENDING, JobState.QUEUED):
            raise SchedulingError(f"job {self.jid}: cannot abandon from {self.state}")
        self.state = JobState.ABANDONED
        self.end_time = now

    # --- derived metrics ----------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Queue wait in seconds (start − submit); requires a started job."""
        if self.start_time is None:
            raise SchedulingError(f"job {self.jid} has not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        """Wait plus runtime, i.e. submit → completion."""
        return self.wait_time + self.runtime

    def slowdown(self, *, bound: float = 0.0) -> float:
        """Response time over runtime (§4.2).

        ``bound`` implements *bounded slowdown*: runtimes below ``bound``
        seconds are clamped so trivially short jobs do not blow up the
        average.  ``bound=0`` is the paper's plain slowdown.
        """
        runtime = max(self.runtime, bound)
        if runtime <= 0:
            raise SchedulingError(f"job {self.jid}: slowdown undefined for zero runtime")
        return self.response_time / runtime

    @property
    def node_seconds(self) -> float:
        """Node-seconds consumed by the job's actual execution."""
        return self.nodes * self.runtime

    @property
    def bb_seconds(self) -> float:
        """Burst-buffer GB-seconds consumed by the job."""
        return self.bb * self.runtime

    @property
    def uses_bb(self) -> bool:
        """True if the job requests any shared burst buffer."""
        return self.bb > 0

    @property
    def uses_ssd(self) -> bool:
        """True if the job requests any per-node local SSD."""
        return self.ssd > 0

    def demand_vector(self) -> tuple[float, float, float]:
        """(nodes, bb GB, total SSD GB) — the job's resource footprint."""
        return (float(self.nodes), self.bb, self.ssd * self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(jid={self.jid}, nodes={self.nodes}, bb={self.bb:.0f}GB, "
            f"ssd={self.ssd:.0f}GB/node, rt={self.runtime:.0f}s, "
            f"state={self.state.value})"
        )
