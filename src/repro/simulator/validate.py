"""Post-hoc schedule validation.

A completed :class:`~repro.simulator.engine.SimulationResult` is re-checked
against every scheduling invariant, independently of the engine's own
bookkeeping.  This is the simulator's safety net — any engine, selector, or
backfill bug that slips past allocation-time checks surfaces here — and the
integration/property suites run it after every simulated trace.

Checked invariants:

* every job completed exactly once, with ``submit ≤ start`` and
  ``end = start + runtime``;
* dependencies finished before the dependent job started;
* at every instant, the running set's node, burst-buffer, and per-SSD-tier
  demands fit the machine (reconstructed by a sweep over start/end events,
  not by trusting the recorder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchedulingError
from .job import Job, JobState


@dataclass(frozen=True)
class Violation:
    """A single invariant violation."""

    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] {self.message}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_schedule`."""

    violations: List[Violation] = field(default_factory=list)
    peak_nodes: int = 0
    peak_bb: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise :class:`SchedulingError` summarising all violations."""
        if self.violations:
            detail = "; ".join(str(v) for v in self.violations[:5])
            raise SchedulingError(
                f"schedule invalid ({len(self.violations)} violations): {detail}"
            )


def validate_schedule(
    jobs: Sequence[Job],
    *,
    total_nodes: int,
    bb_capacity: float,
    ssd_tiers: Optional[Mapping[float, int]] = None,
) -> ValidationReport:
    """Re-check every scheduling invariant on a finished job set."""
    report = ValidationReport()
    by_id: Dict[int, Job] = {}

    for job in jobs:
        if job.jid in by_id:
            report.violations.append(Violation(
                "duplicate", f"job {job.jid} appears twice"))
            continue
        by_id[job.jid] = job
        if job.state is not JobState.COMPLETED:
            report.violations.append(Violation(
                "incomplete", f"job {job.jid} ended in state {job.state.value}"))
            continue
        assert job.start_time is not None and job.end_time is not None
        if job.start_time < job.submit_time:
            report.violations.append(Violation(
                "time-travel",
                f"job {job.jid} started at {job.start_time} before "
                f"submission at {job.submit_time}"))
        if abs(job.end_time - (job.start_time + job.runtime)) > 1e-6:
            report.violations.append(Violation(
                "duration",
                f"job {job.jid} ran {job.end_time - job.start_time}s, "
                f"runtime is {job.runtime}s"))

    # Dependency ordering.
    for job in jobs:
        if job.start_time is None:
            continue
        for dep in job.deps:
            parent = by_id.get(dep)
            if parent is None or parent.end_time is None:
                report.violations.append(Violation(
                    "dependency", f"job {job.jid} depends on unfinished {dep}"))
            elif parent.end_time > job.start_time + 1e-6:
                report.violations.append(Violation(
                    "dependency",
                    f"job {job.jid} started at {job.start_time} before "
                    f"dependency {dep} ended at {parent.end_time}"))

    # Instantaneous capacity: sweep start (+demand) and end (−demand)
    # events; ends sort before starts at equal timestamps, matching the
    # engine's release-before-allocate event ordering.
    events: List[Tuple[float, int, Job]] = []
    for job in jobs:
        if job.start_time is None or job.end_time is None:
            continue
        events.append((job.start_time, 1, job))
        events.append((job.end_time, 0, job))
    events.sort(key=lambda e: (e[0], e[1]))

    nodes = 0
    bb = 0.0
    tier_free: Optional[Dict[float, int]] = (
        dict(ssd_tiers) if ssd_tiers is not None else None
    )
    held: Dict[int, Dict[float, int]] = {}
    for time_, kind, job in events:
        if kind == 1:
            nodes += job.nodes
            bb += job.bb
            if nodes > total_nodes:
                report.violations.append(Violation(
                    "capacity",
                    f"{nodes} nodes in use at t={time_} exceed {total_nodes}"))
            if bb > bb_capacity + 1e-6 * (1 + bb_capacity):
                report.violations.append(Violation(
                    "capacity",
                    f"{bb:.0f}GB burst buffer at t={time_} exceeds {bb_capacity:.0f}"))
            report.peak_nodes = max(report.peak_nodes, nodes)
            report.peak_bb = max(report.peak_bb, bb)
            if tier_free is not None:
                taken = _take_tiers(tier_free, job)
                if taken is None:
                    report.violations.append(Violation(
                        "ssd",
                        f"job {job.jid} cannot find {job.nodes} nodes with "
                        f">= {job.ssd}GB SSD at t={time_}"))
                else:
                    held[job.jid] = taken
        else:
            nodes -= job.nodes
            bb -= job.bb
            if tier_free is not None:
                for cap, count in held.pop(job.jid, {}).items():
                    tier_free[cap] += count
    return report


def _take_tiers(tier_free: Dict[float, int], job: Job) -> Optional[Dict[float, int]]:
    """Greedy smallest-qualifying-tier allocation; None when infeasible."""
    qualifying = sum(n for cap, n in tier_free.items() if cap >= job.ssd)
    if qualifying < job.nodes:
        return None
    remaining = job.nodes
    taken: Dict[float, int] = {}
    for cap in sorted(tier_free):
        if cap < job.ssd or remaining == 0:
            continue
        grab = min(tier_free[cap], remaining)
        if grab:
            tier_free[cap] -= grab
            taken[cap] = grab
            remaining -= grab
    return taken
