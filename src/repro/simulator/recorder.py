"""Time-weighted resource-usage recording.

The paper's system-level metrics (§4.2) are *usages*: used node-hours over
elapsed node-hours, and used burst-buffer(GB)-hours over elapsed ones, over
a measurement interval that excludes warm-up and cool-down periods.

:class:`UsageRecorder` integrates step functions exactly: each time the
cluster's occupancy changes, the engine calls :meth:`observe` with the
current timestamp and the *new* occupancy; the recorder accumulates
``level × dt`` for the interval since the previous observation.  The full
step series is retained so metrics can be re-evaluated over any trimmed
sub-interval after the run.

Two implementations of the step series exist:

* :class:`StepSeries` — the production series on amortized-growth numpy
  buffers; ``integral`` is a vectorized ``searchsorted`` + segment dot
  product (numpy's pairwise/blocked summation, drift-resistant compared
  to naive left-to-right accumulation).
* :class:`ReferenceStepSeries` — the list-backed executable spec whose
  ``integral`` walks segments one by one and sums with ``math.fsum``
  (exactly-rounded).  ``tests/test_recorder.py`` pins the production
  series to it on random step functions, including the equal-timestamp
  overwrite semantics.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError

#: Initial capacity of a step-series buffer (doubles as it fills).
_INITIAL_CAPACITY = 64


class StepSeries:
    """A right-continuous step function sampled at change points.

    ``observe(t, v)`` records that the level becomes ``v`` at time ``t``.
    Observations must be time-ordered (equal timestamps allowed; the last
    value at a timestamp wins, which matches processing several events at
    one instant).

    Storage is a pair of numpy buffers grown by doubling, so a month-long
    trace appends in amortized O(1) and the integral runs vectorized over
    the filled prefix with no list→array conversion.
    """

    __slots__ = ("_times", "_values", "_n")

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._values = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._times[0] = start_time
        self._values[0] = initial
        self._n = 1

    def __len__(self) -> int:
        return self._n

    def observe(self, time: float, value: float) -> None:
        """Record the level changing to ``value`` at ``time``."""
        n = self._n
        times = self._times
        last = times[n - 1]
        if time < last:
            raise ConfigurationError(
                f"observations must be time-ordered: {time} < {last}"
            )
        if time == last:
            self._values[n - 1] = value
            return
        if n == times.shape[0]:
            self._times = times = np.concatenate([times, np.empty_like(times)])
            self._values = np.concatenate([self._values, np.empty_like(self._values)])
        times[n] = time
        self._values[n] = value
        self._n = n + 1

    @property
    def last_time(self) -> float:
        return float(self._times[self._n - 1])

    @property
    def last_value(self) -> float:
        return float(self._values[self._n - 1])

    def integral(self, t0: float, t1: float) -> float:
        """∫ level dt over ``[t0, t1]``; the level extends flat beyond data."""
        if t1 < t0:
            raise ConfigurationError(f"empty interval [{t0}, {t1}]")
        n = self._n
        times = self._times[:n]
        values = self._values[:n]
        # First change point at or before t0 (level extends flat both ways).
        i = bisect_right(times, t0) - 1
        if i < 0:
            i = 0
        # Segment boundaries: the change points inside (t0, t1], clamped,
        # with t0 prepended and t1 appended; values[i:] are the levels
        # held on each segment, the last extending flat past the data.
        bounds = np.empty(n - i + 1, dtype=np.float64)
        bounds[0] = t0
        np.clip(times[i + 1:], t0, t1, out=bounds[1:-1])
        bounds[-1] = t1
        return float(np.dot(values[i:], np.diff(bounds)))

    def mean(self, t0: float, t1: float) -> float:
        """Time-average level over ``[t0, t1]`` (0 for a zero-length span)."""
        if t1 <= t0:
            return 0.0
        return self.integral(t0, t1) / (t1 - t0)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) numpy copies of the recorded steps."""
        return self._times[: self._n].copy(), self._values[: self._n].copy()

    # --- pickling: persist the filled prefix, not the spare capacity ---------
    def __getstate__(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.as_arrays()

    def __setstate__(self, state: Tuple[np.ndarray, np.ndarray]) -> None:
        times, values = state
        self._times = np.array(times, dtype=np.float64)
        self._values = np.array(values, dtype=np.float64)
        self._n = len(self._times)


class ReferenceStepSeries:
    """List-backed reference twin of :class:`StepSeries`.

    The executable spec: same API, plain Python lists, and an ``integral``
    that walks segments in order and reduces with ``math.fsum`` — the
    drift-free accumulation the vectorized dot product is measured
    against.  Used by the differential tests; not on any hot path.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._times: List[float] = [start_time]
        self._values: List[float] = [float(initial)]

    def __len__(self) -> int:
        return len(self._times)

    def observe(self, time: float, value: float) -> None:
        """Record the level changing to ``value`` at ``time``."""
        last = self._times[-1]
        if time < last:
            raise ConfigurationError(
                f"observations must be time-ordered: {time} < {last}"
            )
        if time == last:
            self._values[-1] = float(value)
        else:
            self._times.append(float(time))
            self._values.append(float(value))

    @property
    def last_time(self) -> float:
        return self._times[-1]

    @property
    def last_value(self) -> float:
        return self._values[-1]

    def integral(self, t0: float, t1: float) -> float:
        """∫ level dt over ``[t0, t1]``, accumulated with ``math.fsum``."""
        if t1 < t0:
            raise ConfigurationError(f"empty interval [{t0}, {t1}]")
        times = self._times
        values = self._values
        i = max(bisect_right(times, t0) - 1, 0)
        terms: List[float] = []
        t = t0
        while i < len(times):
            seg_end = times[i + 1] if i + 1 < len(times) else t1
            seg_end = min(seg_end, t1)
            if seg_end > t:
                terms.append(values[i] * (seg_end - t))
                t = seg_end
            if t >= t1:
                break
            i += 1
        if t < t1:  # level persists past the last change point
            terms.append(values[-1] * (t1 - t))
        return math.fsum(terms)

    def mean(self, t0: float, t1: float) -> float:
        """Time-average level over ``[t0, t1]`` (0 for a zero-length span)."""
        if t1 <= t0:
            return 0.0
        return self.integral(t0, t1) / (t1 - t0)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) numpy copies of the recorded steps."""
        return np.asarray(self._times), np.asarray(self._values)


class UsageRecorder:
    """Bundles the step series the simulator tracks.

    Series
    ------
    ``nodes``        — compute nodes in use.
    ``bb``           — burst buffer GB in use.
    ``ssd``          — requested local SSD GB in use (``s_i × n_i`` summed).
    ``ssd_waste``    — over-provisioned local SSD GB currently allocated.
    ``queue``        — number of queued jobs (for diagnostics).
    ``nodes_online`` — healthy compute-node capacity (fault injection).
    ``bb_online``    — healthy burst-buffer capacity in GB (fault injection).

    The two capacity series are only fed when an engine runs with a
    :class:`~repro.resilience.FaultInjector`; fault-free runs leave them at
    their initial zero and :attr:`has_capacity_series` False.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.nodes = StepSeries(0.0, start_time)
        self.bb = StepSeries(0.0, start_time)
        self.ssd = StepSeries(0.0, start_time)
        self.ssd_waste = StepSeries(0.0, start_time)
        self.queue = StepSeries(0.0, start_time)
        self.nodes_online = StepSeries(0.0, start_time)
        self.bb_online = StepSeries(0.0, start_time)
        self._capacity_observed = False

    @property
    def has_capacity_series(self) -> bool:
        """True when online-capacity observations were recorded."""
        return self._capacity_observed

    def observe_cluster(
        self,
        time: float,
        nodes_used: int,
        bb_used: float,
        ssd_used: float = 0.0,
        ssd_waste: float = 0.0,
    ) -> None:
        """Record the cluster occupancy after an allocation change."""
        self.nodes.observe(time, nodes_used)
        self.bb.observe(time, bb_used)
        self.ssd.observe(time, ssd_used)
        self.ssd_waste.observe(time, ssd_waste)

    def observe_queue(self, time: float, queued: int) -> None:
        """Record the queue depth after a queue change."""
        self.queue.observe(time, queued)

    def observe_capacity(self, time: float, nodes_online: int, bb_online: float) -> None:
        """Record the healthy capacity after a fault or repair."""
        self.nodes_online.observe(time, nodes_online)
        self.bb_online.observe(time, bb_online)
        self._capacity_observed = True
