"""Time-weighted resource-usage recording.

The paper's system-level metrics (§4.2) are *usages*: used node-hours over
elapsed node-hours, and used burst-buffer(GB)-hours over elapsed ones, over
a measurement interval that excludes warm-up and cool-down periods.

:class:`UsageRecorder` integrates step functions exactly: each time the
cluster's occupancy changes, the engine calls :meth:`observe` with the
current timestamp and the *new* occupancy; the recorder accumulates
``level × dt`` for the interval since the previous observation.  The full
step series is retained so metrics can be re-evaluated over any trimmed
sub-interval after the run.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError


class StepSeries:
    """A right-continuous step function sampled at change points.

    ``observe(t, v)`` records that the level becomes ``v`` at time ``t``.
    Observations must be time-ordered (equal timestamps allowed; the last
    value at a timestamp wins, which matches processing several events at
    one instant).
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._times: List[float] = [start_time]
        self._values: List[float] = [float(initial)]

    def observe(self, time: float, value: float) -> None:
        """Record the level changing to ``value`` at ``time``."""
        last = self._times[-1]
        if time < last:
            raise ConfigurationError(
                f"observations must be time-ordered: {time} < {last}"
            )
        if time == last:
            self._values[-1] = float(value)
        else:
            self._times.append(float(time))
            self._values.append(float(value))

    @property
    def last_time(self) -> float:
        return self._times[-1]

    @property
    def last_value(self) -> float:
        return self._values[-1]

    def integral(self, t0: float, t1: float) -> float:
        """∫ level dt over ``[t0, t1]``; the level extends flat beyond data."""
        if t1 < t0:
            raise ConfigurationError(f"empty interval [{t0}, {t1}]")
        times = self._times
        values = self._values
        # index of the last change point at or before t0
        i = max(bisect_right(times, t0) - 1, 0)
        total = 0.0
        t = t0
        while i < len(times):
            seg_end = times[i + 1] if i + 1 < len(times) else t1
            seg_end = min(seg_end, t1)
            if seg_end > t:
                total += values[i] * (seg_end - t)
                t = seg_end
            if t >= t1:
                break
            i += 1
        if t < t1:  # level persists past the last change point
            total += values[-1] * (t1 - t)
        return total

    def mean(self, t0: float, t1: float) -> float:
        """Time-average level over ``[t0, t1]`` (0 for a zero-length span)."""
        if t1 <= t0:
            return 0.0
        return self.integral(t0, t1) / (t1 - t0)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) numpy copies of the recorded steps."""
        return np.asarray(self._times), np.asarray(self._values)


class UsageRecorder:
    """Bundles the step series the simulator tracks.

    Series
    ------
    ``nodes``        — compute nodes in use.
    ``bb``           — burst buffer GB in use.
    ``ssd``          — requested local SSD GB in use (``s_i × n_i`` summed).
    ``ssd_waste``    — over-provisioned local SSD GB currently allocated.
    ``queue``        — number of queued jobs (for diagnostics).
    ``nodes_online`` — healthy compute-node capacity (fault injection).
    ``bb_online``    — healthy burst-buffer capacity in GB (fault injection).

    The two capacity series are only fed when an engine runs with a
    :class:`~repro.resilience.FaultInjector`; fault-free runs leave them at
    their initial zero and :attr:`has_capacity_series` False.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.nodes = StepSeries(0.0, start_time)
        self.bb = StepSeries(0.0, start_time)
        self.ssd = StepSeries(0.0, start_time)
        self.ssd_waste = StepSeries(0.0, start_time)
        self.queue = StepSeries(0.0, start_time)
        self.nodes_online = StepSeries(0.0, start_time)
        self.bb_online = StepSeries(0.0, start_time)
        self._capacity_observed = False

    @property
    def has_capacity_series(self) -> bool:
        """True when online-capacity observations were recorded."""
        return self._capacity_observed

    def observe_cluster(
        self,
        time: float,
        nodes_used: int,
        bb_used: float,
        ssd_used: float = 0.0,
        ssd_waste: float = 0.0,
    ) -> None:
        """Record the cluster occupancy after an allocation change."""
        self.nodes.observe(time, nodes_used)
        self.bb.observe(time, bb_used)
        self.ssd.observe(time, ssd_used)
        self.ssd_waste.observe(time, ssd_waste)

    def observe_queue(self, time: float, queued: int) -> None:
        """Record the queue depth after a queue change."""
        self.queue.observe(time, queued)

    def observe_capacity(self, time: float, nodes_online: int, bb_online: float) -> None:
        """Record the healthy capacity after a fault or repair."""
        self.nodes_online.observe(time, nodes_online)
        self.bb_online.observe(time, bb_online)
        self._capacity_observed = True
