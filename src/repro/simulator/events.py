"""Discrete-event machinery: typed events and a stable priority queue.

The simulator is event-driven: job submissions and completions are the only
exogenous events; scheduling passes are triggered by them.  The queue is a
binary heap keyed on ``(time, priority, sequence)`` — the sequence number
makes ordering *stable* for simultaneous events, which keeps runs exactly
reproducible regardless of heap internals.

Event priority at equal timestamps matters: completions must be processed
before submissions before scheduling passes, so that a scheduling pass at
time *t* sees every resource freed and every job submitted at *t*.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Iterator, Optional


class EventType(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps.

    The fault-injection kinds (≥ 4, see :mod:`repro.resilience`) deliberately
    sort after the exogenous trace events: at one instant completions free
    resources and submissions join the queue *before* faults reshape
    capacity, so a fault never kills a job that would have finished at the
    same timestamp anyway.
    """

    JOB_END = 0      #: a running job completes; resources are released
    JOB_SUBMIT = 1   #: a job arrives in the queue
    SCHEDULE = 2     #: run a scheduling pass
    TICK = 3         #: periodic metrics/usage sampling hook
    NODE_UP = 4      #: repaired compute nodes rejoin the pool
    BB_RESTORE = 5   #: degraded burst-buffer capacity comes back online
    NODE_DOWN = 6    #: compute nodes fail; running jobs on them are killed
    BB_DEGRADE = 7   #: part of the shared burst buffer goes offline
    JOB_FAIL = 8     #: one running job aborts (software/hardware fault)
    JOB_REQUEUE = 9  #: a killed job re-enters the queue after its backoff


@dataclass(frozen=True, slots=True)
class Event:
    """An immutable simulation event.

    ``payload`` carries the subject (a job for submit/end, ``None`` for
    scheduling passes).  ``slots=True`` drops the per-event ``__dict__``:
    a trace replay allocates one Event per submission, completion, and
    coalesced scheduling pass, so the slimmer layout is measurable.
    """

    time: float
    etype: EventType
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    Stability: two events with the same ``(time, etype)`` pop in insertion
    order.  Cancellation is supported lazily via :meth:`cancel` (entries are
    tombstoned and skipped on pop), which the engine uses to coalesce
    redundant SCHEDULE events.

    The queue is deliberately built from plain picklable data (the token
    counter is an int, not an ``itertools.count``) so a mid-run engine
    snapshot — event queue included — round-trips through ``pickle``
    byte-exactly (see :mod:`repro.checkpoint`).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_token = 0
        self._cancelled: set[int] = set()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> int:
        """Insert ``event``; returns a token usable with :meth:`cancel`."""
        token = self._next_token
        self._next_token += 1
        heapq.heappush(self._heap, (event.time, int(event.etype), token, event))
        self._live += 1
        return token

    def cancel(self, token: int) -> None:
        """Tombstone a previously pushed event; popping will skip it."""
        if token not in self._cancelled:
            self._cancelled.add(token)
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            _, _, token, event = heapq.heappop(self._heap)
            if token in self._cancelled:
                self._cancelled.discard(token)
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def pop_at(self, time: float) -> Optional[Event]:
        """Pop the earliest live event if it is due at exactly ``time``.

        The engine's batch loop calls this instead of ``peek_time`` +
        ``pop`` pairs: one heap access per event instead of two.  Because
        it re-checks the live heap top on every call, events pushed *for
        the same timestamp while the batch is being processed* (e.g. a
        NODE_UP scheduled by a repair handler) are picked up in exactly
        the order the reference peek/pop loop would deliver them.
        """
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            t, _, token, event = heap[0]
            if token in cancelled:
                heapq.heappop(heap)
                cancelled.discard(token)
                continue
            if t != time:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return event
        return None

    def peek(self) -> Optional[Event]:
        """Return the earliest live event without removing it, or None."""
        while self._heap:
            _, _, token, event = self._heap[0]
            if token in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(token)
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None when empty."""
        ev = self.peek()
        return None if ev is None else ev.time

    def drain(self) -> Iterator[Event]:
        """Pop every remaining event in order (useful in tests)."""
        while self:
            yield self.pop()
