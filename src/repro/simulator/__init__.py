"""Discrete-event HPC scheduling simulator and resource models."""

from .cluster import Available, Cluster
from .engine import EngineStats, SchedulingEngine, SimulationResult
from .events import Event, EventQueue, EventType
from .job import Job, JobState
from .metrics import (
    ABNORMAL_RUNTIME,
    Interval,
    MetricsSummary,
    ResilienceSummary,
    average_slowdown,
    average_wait,
    compute_resilience_summary,
    compute_summary,
    trimmed_interval,
    wait_by_bb_request,
    wait_by_job_size,
    wait_by_runtime,
)
from .plan import ExecutionPlan, PlannedStart, ResourceProfile, build_plan
from .recorder import StepSeries, UsageRecorder
from .ssd_pool import SSDAssignment, SSDPool
from .validate import ValidationReport, Violation, validate_schedule

__all__ = [
    "Job",
    "JobState",
    "Event",
    "EventQueue",
    "EventType",
    "Cluster",
    "Available",
    "SSDPool",
    "SSDAssignment",
    "StepSeries",
    "UsageRecorder",
    "ResourceProfile",
    "ExecutionPlan",
    "PlannedStart",
    "build_plan",
    "SchedulingEngine",
    "SimulationResult",
    "EngineStats",
    "Interval",
    "MetricsSummary",
    "ResilienceSummary",
    "compute_summary",
    "compute_resilience_summary",
    "trimmed_interval",
    "average_wait",
    "average_slowdown",
    "wait_by_job_size",
    "wait_by_bb_request",
    "wait_by_runtime",
    "ABNORMAL_RUNTIME",
    "validate_schedule",
    "ValidationReport",
    "Violation",
]
