"""Scheduling evaluation metrics (§4.2).

Four well-established metrics, two system-level and two user-level:

* **node usage** — used node-hours / elapsed node-hours;
* **burst buffer usage** — used BB(GB)-hours / elapsed BB(GB)-hours;
* **job wait time** — submit → start interval;
* **job slowdown** — (wait + runtime) / runtime, with abnormal jobs
  (near-zero runtimes that end abruptly) filtered out of the average.

The §5 case study adds **local SSD utilization** and **wasted local SSD**.

Metrics are evaluated over a *measurement interval* that excludes warm-up
and cool-down phases (the paper drops the first and last half month); a job
contributes to the user-level averages iff it was submitted inside the
interval.  Breakdown helpers regroup wait times by job size, BB request,
and runtime — the groupings behind Figures 9–11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .job import Job, JobState
from .recorder import UsageRecorder

if TYPE_CHECKING:  # annotation only; the engine imports this package's peers
    from .engine import EngineStats

#: Jobs with actual runtime below this many seconds are considered abnormal
#: (crashed at startup) and excluded from slowdown averages, following §4.2.
ABNORMAL_RUNTIME = 60.0


@dataclass(frozen=True)
class Interval:
    """A half-open measurement interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(f"interval end {self.end} < start {self.start}")

    @property
    def span(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def trimmed_interval(
    t_first: float, t_last: float, *, warmup_fraction: float = 0.1, cooldown_fraction: float = 0.1
) -> Interval:
    """Measurement interval dropping leading/trailing fractions of the run.

    The paper drops the first and last half month of multi-month traces;
    for arbitrary-length synthetic traces we drop fractions instead.
    """
    if not 0 <= warmup_fraction < 1 or not 0 <= cooldown_fraction < 1:
        raise ConfigurationError("trim fractions must be in [0, 1)")
    if warmup_fraction + cooldown_fraction >= 1:
        raise ConfigurationError("trim fractions leave an empty interval")
    span = t_last - t_first
    return Interval(t_first + warmup_fraction * span, t_last - cooldown_fraction * span)


@dataclass
class MetricsSummary:
    """Aggregate scheduling metrics over a measurement interval.

    Usage metrics are fractions in [0, 1]; wait times are seconds.
    ``ssd_usage``/``ssd_waste`` are zero for runs without local SSD tiers.
    """

    node_usage: float
    bb_usage: float
    avg_wait: float
    avg_slowdown: float
    ssd_usage: float = 0.0
    ssd_waste: float = 0.0
    n_jobs: int = 0
    interval: Optional[Interval] = None

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for reports and CSV output)."""
        return {
            "node_usage": self.node_usage,
            "bb_usage": self.bb_usage,
            "avg_wait": self.avg_wait,
            "avg_slowdown": self.avg_slowdown,
            "ssd_usage": self.ssd_usage,
            "ssd_waste": self.ssd_waste,
            "n_jobs": float(self.n_jobs),
        }


def _measured_jobs(jobs: Sequence[Job], interval: Interval) -> List[Job]:
    """Completed-or-running jobs submitted inside the measurement interval."""
    return [
        j
        for j in jobs
        if j.start_time is not None and interval.contains(j.submit_time)
    ]


def _job_arrays(jobs: Sequence[Job]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(submit, start, runtime) float64 columns; start is NaN if never started."""
    n = len(jobs)
    submit = np.fromiter((j.submit_time for j in jobs), np.float64, count=n)
    start = np.fromiter(
        (np.nan if j.start_time is None else j.start_time for j in jobs),
        np.float64,
        count=n,
    )
    runtime = np.fromiter((j.runtime for j in jobs), np.float64, count=n)
    return submit, start, runtime


def _measured_mask(
    submit: np.ndarray, start: np.ndarray, interval: Interval
) -> np.ndarray:
    """Boolean column equivalent of :func:`_measured_jobs`."""
    return ~np.isnan(start) & (submit >= interval.start) & (submit < interval.end)


def _mean_wait(submit: np.ndarray, start: np.ndarray, mask: np.ndarray) -> float:
    waits = start[mask] - submit[mask]
    # np.mean over the gathered column equals np.mean over the per-job
    # wait_time list: same float64 values in the same order, same pairwise
    # summation.
    return float(np.mean(waits)) if waits.size else 0.0


def _mean_slowdown(
    jobs: Sequence[Job],
    submit: np.ndarray,
    start: np.ndarray,
    runtime: np.ndarray,
    mask: np.ndarray,
    abnormal_runtime: float,
) -> float:
    sel = mask & (runtime >= abnormal_runtime)
    if not sel.any():
        return 0.0
    r = runtime[sel]
    if (r <= 0).any():
        # Zero runtimes reach slowdown only with abnormal_runtime <= 0; the
        # scalar path raises a per-job error there, so defer to it.
        values = [
            j.slowdown()
            for j in _measured_jobs_from_mask(jobs, mask)
            if j.runtime >= abnormal_runtime
        ]
        return float(np.mean(values)) if values else 0.0
    values = (start[sel] - submit[sel] + r) / r
    return float(np.mean(values))


def _measured_jobs_from_mask(jobs: Sequence[Job], mask: np.ndarray) -> List[Job]:
    return [j for j, m in zip(jobs, mask) if m]


def average_wait(jobs: Sequence[Job], interval: Interval) -> float:
    """Mean queue wait (seconds) of jobs submitted in ``interval``."""
    submit, start, _ = _job_arrays(jobs)
    return _mean_wait(submit, start, _measured_mask(submit, start, interval))


def average_slowdown(
    jobs: Sequence[Job],
    interval: Interval,
    *,
    abnormal_runtime: float = ABNORMAL_RUNTIME,
) -> float:
    """Mean slowdown, excluding abnormal (near-instantly-ending) jobs."""
    submit, start, runtime = _job_arrays(jobs)
    mask = _measured_mask(submit, start, interval)
    return _mean_slowdown(jobs, submit, start, runtime, mask, abnormal_runtime)


def compute_summary(
    jobs: Sequence[Job],
    recorder: UsageRecorder,
    interval: Interval,
    *,
    total_nodes: int,
    bb_capacity: float,
    ssd_capacity: float = 0.0,
    abnormal_runtime: float = ABNORMAL_RUNTIME,
) -> MetricsSummary:
    """Evaluate all §4.2 (and §5) metrics over ``interval``."""
    if total_nodes <= 0:
        raise ConfigurationError("total_nodes must be positive")
    node_usage = recorder.nodes.mean(interval.start, interval.end) / total_nodes
    bb_usage = (
        recorder.bb.mean(interval.start, interval.end) / bb_capacity
        if bb_capacity > 0
        else 0.0
    )
    ssd_usage = (
        recorder.ssd.mean(interval.start, interval.end) / ssd_capacity
        if ssd_capacity > 0
        else 0.0
    )
    ssd_waste = (
        recorder.ssd_waste.mean(interval.start, interval.end) / ssd_capacity
        if ssd_capacity > 0
        else 0.0
    )
    # One column gather serves the wait average, the slowdown average, and
    # the measured-job count.
    submit, start, runtime = _job_arrays(jobs)
    mask = _measured_mask(submit, start, interval)
    return MetricsSummary(
        node_usage=node_usage,
        bb_usage=bb_usage,
        avg_wait=_mean_wait(submit, start, mask),
        avg_slowdown=_mean_slowdown(
            jobs, submit, start, runtime, mask, abnormal_runtime
        ),
        ssd_usage=ssd_usage,
        ssd_waste=ssd_waste,
        n_jobs=int(mask.sum()),
        interval=interval,
    )


# --- resilience metrics --------------------------------------------------------


@dataclass
class ResilienceSummary:
    """Fault-run metrics complementing :class:`MetricsSummary`.

    ``node_usage_degraded`` renormalises node usage by the time-integrated
    *online* capacity instead of the nominal node count — the honest
    utilization figure when failures shrink the machine.  Without capacity
    observations (fault-free run) it equals the nominal usage.
    """

    lost_node_hours: float          #: execution thrown away by fault kills
    killed_jobs: int                #: job executions killed by faults
    requeued_jobs: int              #: kills routed back into the queue
    abandoned_jobs: int             #: jobs that ended ABANDONED
    completed_jobs: int             #: jobs that still completed
    fallback_calls: int             #: watchdog-degraded selections
    fallback_rate: float            #: fallback_calls / selector calls
    node_failures: int              #: node-failure incidents
    bb_degrades: int                #: burst-buffer incidents
    mean_nodes_online: float        #: time-averaged healthy node fraction
    node_usage_degraded: float      #: usage over *online* node-hours

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for reports and CSV output)."""
        return {
            "lost_node_hours": self.lost_node_hours,
            "killed_jobs": float(self.killed_jobs),
            "requeued_jobs": float(self.requeued_jobs),
            "abandoned_jobs": float(self.abandoned_jobs),
            "completed_jobs": float(self.completed_jobs),
            "fallback_calls": float(self.fallback_calls),
            "fallback_rate": self.fallback_rate,
            "node_failures": float(self.node_failures),
            "bb_degrades": float(self.bb_degrades),
            "mean_nodes_online": self.mean_nodes_online,
            "node_usage_degraded": self.node_usage_degraded,
        }


def compute_resilience_summary(
    jobs: Sequence[Job],
    recorder: UsageRecorder,
    stats: "EngineStats",
    interval: Interval,
    *,
    total_nodes: int,
) -> ResilienceSummary:
    """Evaluate the resilience metrics of one (possibly faulty) run."""
    if total_nodes <= 0:
        raise ConfigurationError("total_nodes must be positive")
    used = recorder.nodes.integral(interval.start, interval.end)
    if recorder.has_capacity_series:
        online = recorder.nodes_online.integral(interval.start, interval.end)
        mean_online = recorder.nodes_online.mean(interval.start, interval.end)
    else:
        online = total_nodes * interval.span
        mean_online = float(total_nodes)
    return ResilienceSummary(
        lost_node_hours=stats.lost_node_seconds / 3600.0,
        killed_jobs=stats.killed_jobs,
        requeued_jobs=stats.requeued_jobs,
        abandoned_jobs=stats.abandoned_jobs,
        completed_jobs=sum(1 for j in jobs if j.state is JobState.COMPLETED),
        fallback_calls=stats.fallback_calls,
        fallback_rate=stats.fallback_rate,
        node_failures=stats.node_failures,
        bb_degrades=stats.bb_degrades,
        mean_nodes_online=mean_online / total_nodes,
        node_usage_degraded=used / online if online > 0 else 0.0,
    )


# --- breakdowns (Figures 9-11) -------------------------------------------------

#: Job-size bins used in Figure 9 (node-count ranges on Theta).
THETA_SIZE_BINS: Tuple[Tuple[float, float], ...] = (
    (1, 8),
    (9, 64),
    (65, 256),
    (257, 1023),
    (1024, 4392),
)

#: Burst-buffer-request bins used in Figure 10 (GB).
BB_REQUEST_BINS_TB: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),            # no burst buffer request
    (1e-9, 50.0),          # (0, 50] TB
    (50.0, 100.0),
    (100.0, 200.0),
    (200.0, float("inf")),
)

#: Runtime bins used in Figure 11 (hours).
RUNTIME_BINS_H: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.5),
    (0.5, 2.0),
    (2.0, 6.0),
    (6.0, 12.0),
    (12.0, float("inf")),
)


def _bin_label(lo: float, hi: float, unit: str) -> str:
    if lo == hi == 0.0:
        return f"0{unit}"
    if hi == float("inf"):
        return f">{lo:g}{unit}"
    return f"{lo:g}-{hi:g}{unit}"


def breakdown_wait(
    jobs: Sequence[Job],
    interval: Interval,
    key: Callable[[Job], float],
    bins: Sequence[Tuple[float, float]],
    unit: str = "",
) -> Dict[str, float]:
    """Average wait time per bin of ``key(job)``.

    A job lands in the first bin ``(lo, hi)`` with ``lo <= key <= hi``
    (first bin is inclusive on both ends; the zero bin ``(0, 0)`` catches
    exact zeros).  Jobs matching no bin are dropped.
    """
    labels = [_bin_label(lo, hi, unit) for lo, hi in bins]
    if len(set(labels)) != len(labels):
        # Colliding labels merge their bins in the scalar spec; keep it.
        return _breakdown_wait_scalar(jobs, interval, key, bins, unit)
    measured = _measured_jobs(jobs, interval)
    n = len(measured)
    if n == 0:
        return {label: 0.0 for label in labels}
    values = np.fromiter((key(j) for j in measured), np.float64, count=n)
    waits = np.fromiter((j.wait_time for j in measured), np.float64, count=n)
    unassigned = np.ones(n, dtype=bool)
    out: Dict[str, float] = {}
    for (lo, hi), label in zip(bins, labels):
        # First-bin-wins: only still-unassigned jobs can land here, which
        # matches the scalar loop's `break` after the first matching bin.
        sel = unassigned & (lo <= values) & (values <= hi)
        unassigned &= ~sel
        out[label] = float(np.mean(waits[sel])) if sel.any() else 0.0
    return out


def _breakdown_wait_scalar(
    jobs: Sequence[Job],
    interval: Interval,
    key: Callable[[Job], float],
    bins: Sequence[Tuple[float, float]],
    unit: str,
) -> Dict[str, float]:
    """Reference per-job binning loop (executable spec for the above)."""
    groups: Dict[str, List[float]] = {
        _bin_label(lo, hi, unit): [] for lo, hi in bins
    }
    for job in _measured_jobs(jobs, interval):
        value = key(job)
        for lo, hi in bins:
            if lo <= value <= hi:
                groups[_bin_label(lo, hi, unit)].append(job.wait_time)
                break
    return {
        label: (float(np.mean(waits)) if waits else 0.0)
        for label, waits in groups.items()
    }


def wait_by_job_size(
    jobs: Sequence[Job],
    interval: Interval,
    bins: Sequence[Tuple[float, float]] = THETA_SIZE_BINS,
) -> Dict[str, float]:
    """Figure 9: average wait time grouped by requested node count."""
    return breakdown_wait(jobs, interval, lambda j: j.nodes, bins, unit=" nodes")


def wait_by_bb_request(
    jobs: Sequence[Job],
    interval: Interval,
    bins: Sequence[Tuple[float, float]] = BB_REQUEST_BINS_TB,
) -> Dict[str, float]:
    """Figure 10: average wait time grouped by BB request (TB)."""
    return breakdown_wait(jobs, interval, lambda j: j.bb / 1024.0, bins, unit="TB")


def wait_by_runtime(
    jobs: Sequence[Job],
    interval: Interval,
    bins: Sequence[Tuple[float, float]] = RUNTIME_BINS_H,
) -> Dict[str, float]:
    """Figure 11: average wait time grouped by actual runtime (hours)."""
    return breakdown_wait(jobs, interval, lambda j: j.runtime / 3600.0, bins, unit="h")
