"""Heterogeneous local-SSD node pool (§5 case study).

Theta-style systems attach a local SSD to every compute node, and capacities
differ across nodes (the paper assumes a 50/50 split of 128 GB and 256 GB
SSDs).  A job requesting ``s`` GB of local SSD per node can only run on
nodes whose SSD capacity is at least ``s``; assigning a larger-than-needed
SSD wastes the difference (objective ``f4`` in §5).

:class:`SSDPool` tracks free node counts per capacity *tier* and implements
the paper's assignment preference: jobs are packed onto the smallest tier
that satisfies their request first, spilling upward only when the small tier
is exhausted, which minimises waste greedily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import AllocationError, ConfigurationError, ResilienceError


@dataclass(frozen=True)
class SSDAssignment:
    """Result of allocating nodes for one job.

    ``per_tier`` maps SSD tier capacity (GB) → number of nodes taken from
    that tier.  ``waste`` is the total over-provisioned SSD in GB, i.e.
    ``sum((tier - request) * count)``.
    """

    per_tier: Tuple[Tuple[float, int], ...]
    waste: float

    @property
    def node_count(self) -> int:
        return sum(c for _, c in self.per_tier)

    def capacities(self) -> tuple:
        """Flat tuple of the per-node assigned capacities (for Job records)."""
        out: list[float] = []
        for cap, count in self.per_tier:
            out.extend([cap] * count)
        return tuple(out)


class SSDPool:
    """Free-node accounting across SSD capacity tiers.

    Parameters
    ----------
    tiers:
        Mapping of SSD capacity in GB → number of nodes with that capacity.
        A homogeneous system with no local SSD is ``{0.0: total_nodes}``.
    """

    def __init__(self, tiers: Mapping[float, int]) -> None:
        if not tiers:
            raise ConfigurationError("SSDPool needs at least one tier")
        clean: Dict[float, int] = {}
        for cap, count in tiers.items():
            if cap < 0:
                raise ConfigurationError(f"negative SSD tier capacity {cap}")
            if count < 0:
                raise ConfigurationError(f"negative node count {count} for tier {cap}")
            clean[float(cap)] = clean.get(float(cap), 0) + int(count)
        #: tier capacities sorted ascending — allocation order
        self.capacities: Tuple[float, ...] = tuple(sorted(clean))
        self._total: Dict[float, int] = {c: clean[c] for c in self.capacities}
        self._free: Dict[float, int] = dict(self._total)

    # --- queries -------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Total number of nodes across all tiers."""
        return sum(self._total.values())

    @property
    def free_nodes(self) -> int:
        """Total number of currently free nodes."""
        return sum(self._free.values())

    def free_per_tier(self) -> Dict[float, int]:
        """Copy of the free-node count for each tier."""
        return dict(self._free)

    def total_per_tier(self) -> Dict[float, int]:
        """Copy of the total node count for each tier."""
        return dict(self._total)

    def free_at_least(self, capacity: float) -> int:
        """Number of free nodes whose SSD capacity is ≥ ``capacity``."""
        return sum(n for cap, n in self._free.items() if cap >= capacity)

    def can_fit(self, nodes: int, ssd_per_node: float) -> bool:
        """Can ``nodes`` nodes each offering ≥ ``ssd_per_node`` GB be found?"""
        return self.free_at_least(ssd_per_node) >= nodes

    # --- allocation -----------------------------------------------------------
    def allocate(self, nodes: int, ssd_per_node: float) -> SSDAssignment:
        """Take ``nodes`` free nodes with SSD ≥ ``ssd_per_node``.

        Smaller qualifying tiers are consumed first (waste-minimising
        preference from §5).  Raises :class:`AllocationError` when the
        request cannot be satisfied; the pool is left unchanged on failure.
        """
        if nodes <= 0:
            raise AllocationError(f"must allocate a positive node count, got {nodes}")
        if not self.can_fit(nodes, ssd_per_node):
            raise AllocationError(
                f"cannot allocate {nodes} nodes with >= {ssd_per_node}GB SSD "
                f"(free qualifying: {self.free_at_least(ssd_per_node)})"
            )
        remaining = nodes
        taken: list[tuple[float, int]] = []
        waste = 0.0
        for cap in self.capacities:
            if cap < ssd_per_node or remaining == 0:
                continue
            grab = min(self._free[cap], remaining)
            if grab:
                self._free[cap] -= grab
                taken.append((cap, grab))
                waste += (cap - ssd_per_node) * grab
                remaining -= grab
        assert remaining == 0, "can_fit check guaranteed availability"
        return SSDAssignment(per_tier=tuple(taken), waste=waste)

    def release(self, assignment: SSDAssignment) -> None:
        """Return the nodes of a previous :meth:`allocate` to the pool."""
        for cap, count in assignment.per_tier:
            if cap not in self._free:
                raise AllocationError(f"unknown SSD tier {cap} in release")
            if self._free[cap] + count > self._total[cap]:
                raise AllocationError(
                    f"tier {cap}: releasing {count} would exceed total "
                    f"({self._free[cap]} free of {self._total[cap]})"
                )
            self._free[cap] += count

    # --- fault support ---------------------------------------------------------
    def drain(self, count: int, capacity: float) -> int:
        """Take up to ``count`` *free* nodes of one tier offline.

        Both the tier's total and free counts shrink, so per-tier
        accounting (``free ≤ total``) stays consistent while jobs keep
        holding their already-allocated nodes.  Returns the number of nodes
        actually drained (possibly fewer than requested when the tier has
        busy nodes; the caller kills victims and drains again).
        """
        if count < 0:
            raise ResilienceError(f"cannot drain a negative node count ({count})")
        cap = float(capacity)
        if cap not in self._free:
            raise ResilienceError(f"unknown SSD tier {capacity} in drain")
        grab = min(self._free[cap], count)
        self._free[cap] -= grab
        self._total[cap] -= grab
        return grab

    def restore(self, count: int, capacity: float) -> None:
        """Return previously drained nodes of one tier to the pool.

        The caller (:class:`~repro.simulator.cluster.Cluster`) tracks how
        many nodes are offline per tier and must never restore more than it
        drained.
        """
        if count < 0:
            raise ResilienceError(f"cannot restore a negative node count ({count})")
        cap = float(capacity)
        if cap not in self._free:
            raise ResilienceError(f"unknown SSD tier {capacity} in restore")
        self._free[cap] += count
        self._total[cap] += count

    # --- planning (no mutation) -----------------------------------------------
    def plan_waste(self, nodes: int, ssd_per_node: float) -> float:
        """Waste the greedy assignment *would* incur, without allocating.

        Used by the MOO objective ``f4`` to evaluate candidate selections.
        Raises :class:`AllocationError` if the request does not fit.
        """
        if not self.can_fit(nodes, ssd_per_node):
            raise AllocationError(f"{nodes} nodes @ >= {ssd_per_node}GB do not fit")
        remaining = nodes
        waste = 0.0
        for cap in self.capacities:
            if cap < ssd_per_node or remaining == 0:
                continue
            grab = min(self._free[cap], remaining)
            waste += (cap - ssd_per_node) * grab
            remaining -= grab
        return waste

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{cap:g}GB:{self._free[cap]}/{self._total[cap]}" for cap in self.capacities
        )
        return f"SSDPool({parts})"
