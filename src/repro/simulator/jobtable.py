"""Struct-of-arrays job table: the engine's vectorized view of a trace.

The simulator's per-pass hot loops (priority ordering, capacity masks) and
the post-run metric evaluation all reduce to elementwise arithmetic over a
handful of per-job scalars.  Looping over :class:`~repro.simulator.job.Job`
objects pays a Python attribute lookup per field per job per pass;
:class:`JobTable` holds the same fields once, as numpy columns, so a
scheduling pass touches them with array slicing instead.

The table is a *view with one dynamic column*: every column except
``state`` mirrors an immutable ``Job`` field, so nothing ever needs
re-syncing; ``state`` is a compact int8 code the engine updates at the few
lifecycle transitions it drives (see :data:`STATE_CODES`).  ``Job`` objects
remain the source of truth — the table accelerates, it never decides.

Row order is trace order; :attr:`row_of` maps ``jid`` → row for the
engine's queue, whose membership changes while rows never move.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import TraceError
from .job import Job, JobState

#: JobState → int8 code stored in :attr:`JobTable.state`.  Codes follow the
#: lifecycle order so range checks ("terminal" = code >= COMPLETED) work.
STATE_CODES: Dict[JobState, int] = {
    JobState.PENDING: 0,
    JobState.QUEUED: 1,
    JobState.RUNNING: 2,
    JobState.COMPLETED: 3,
    JobState.ABANDONED: 4,
}


#: The immutable per-job columns that define a trace (everything except
#: the dynamic ``state`` mirror) — the publication unit for zero-copy
#: trace sharing (:mod:`repro.service.shm`), in a fixed order so the
#: packed byte layout is deterministic.
TRACE_COLUMNS = ("jid", "submit_time", "runtime", "walltime", "nodes",
                 "bb", "ssd")


def jobs_from_columns(
    columns: Dict[str, np.ndarray],
    deps: Dict[int, Sequence[int]] | None = None,
    users: Dict[int, str] | None = None,
) -> List[Job]:
    """Rebuild a trace's job list from :data:`TRACE_COLUMNS` arrays.

    The inverse of :meth:`JobTable.column_arrays`: columns (typically
    attached zero-copy from a shared-memory segment) become fresh
    :class:`Job` objects in PENDING state.  ``deps``/``users`` carry the
    sparse non-numeric fields for the few jobs that have them.
    """
    deps = deps or {}
    users = users or {}
    n = len(columns["jid"])
    jid, submit = columns["jid"], columns["submit_time"]
    runtime, walltime = columns["runtime"], columns["walltime"]
    nodes, bb, ssd = columns["nodes"], columns["bb"], columns["ssd"]
    return [
        Job(
            jid=int(jid[i]),
            submit_time=float(submit[i]),
            runtime=float(runtime[i]),
            walltime=float(walltime[i]),
            nodes=int(nodes[i]),
            bb=float(bb[i]),
            ssd=float(ssd[i]),
            deps=frozenset(deps.get(int(jid[i]), ())),
            user=users.get(int(jid[i]), ""),
        )
        for i in range(n)
    ]


class JobTable:
    """Numpy columns over a fixed job list.

    Columns
    -------
    ``jid``          int64   — unique job id (trace invariant).
    ``submit_time``  float64 — queue-entry time (seconds since epoch).
    ``runtime``      float64 — actual execution time.
    ``walltime``     float64 — user walltime estimate (WFP, backfilling).
    ``nodes``        int64   — requested node count.
    ``bb``           float64 — requested shared burst buffer (GB).
    ``ssd``          float64 — requested per-node local SSD (GB).
    ``state``        int8    — lifecycle code (see :data:`STATE_CODES`).
    """

    __slots__ = (
        "jobs", "jid", "submit_time", "runtime", "walltime",
        "nodes", "bb", "ssd", "state", "row_of",
    )

    def __init__(self, jobs: Sequence[Job]) -> None:
        jobs = list(jobs)
        n = len(jobs)
        self.jobs: List[Job] = jobs
        self.jid = np.empty(n, dtype=np.int64)
        self.submit_time = np.empty(n, dtype=np.float64)
        self.runtime = np.empty(n, dtype=np.float64)
        self.walltime = np.empty(n, dtype=np.float64)
        self.nodes = np.empty(n, dtype=np.int64)
        self.bb = np.empty(n, dtype=np.float64)
        self.ssd = np.empty(n, dtype=np.float64)
        self.state = np.empty(n, dtype=np.int8)
        row_of: Dict[int, int] = {}
        for row, job in enumerate(jobs):
            self.jid[row] = job.jid
            self.submit_time[row] = job.submit_time
            self.runtime[row] = job.runtime
            self.walltime[row] = job.walltime
            self.nodes[row] = job.nodes
            self.bb[row] = job.bb
            self.ssd[row] = job.ssd
            self.state[row] = STATE_CODES[job.state]
            row_of[job.jid] = row
        if len(row_of) != n:
            raise TraceError("duplicate job ids in trace")
        self.row_of = row_of

    def __len__(self) -> int:
        return len(self.jobs)

    def column_arrays(self) -> Dict[str, np.ndarray]:
        """The immutable trace columns, keyed per :data:`TRACE_COLUMNS`.

        The returned arrays are the table's own (not copies): callers
        publishing them into shared memory copy exactly once, into the
        segment itself.
        """
        return {name: getattr(self, name) for name in TRACE_COLUMNS}

    def rows_for(self, jobs: Sequence[Job]) -> np.ndarray:
        """Row indices of ``jobs``, in the given order."""
        row_of = self.row_of
        return np.fromiter(
            (row_of[j.jid] for j in jobs), dtype=np.intp, count=len(jobs)
        )

    def set_state(self, row: int, state: JobState) -> None:
        """Record a lifecycle transition in the ``state`` column."""
        self.state[row] = STATE_CODES[state]

    def start_times(self) -> np.ndarray:
        """Dynamic gather of ``start_time`` (NaN for never-started jobs).

        ``start_time`` flips between None and a float across kills and
        requeues, so it is gathered on demand rather than mirrored.
        """
        return np.fromiter(
            (np.nan if j.start_time is None else j.start_time for j in self.jobs),
            dtype=np.float64,
            count=len(self.jobs),
        )

    # --- pickling: the jobs ARE the table ------------------------------------
    # Every column (including the dynamic ``state`` mirror) and ``row_of``
    # is a pure function of the job list, and the jobs themselves are
    # already in the pickle via the engine's ``_jobs`` (shared through the
    # memo).  Serialising only the list keeps the eight numpy columns and
    # the jid→row dict out of every periodic checkpoint, and the rebuild
    # in ``__setstate__`` is bit-identical by construction.
    # (Wrapped in a 1-tuple: a bare empty list is falsy, and pickle skips
    # ``__setstate__`` entirely for falsy state.)
    def __getstate__(self) -> tuple:
        return (self.jobs,)

    def __setstate__(self, state: tuple) -> None:
        self.__init__(state[0])
