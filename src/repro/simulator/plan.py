"""Forward execution planning: simulated start times for window jobs.

The greedy selection methods decide "who runs *now*"; the plan-based
scheduler instead builds a forward **execution plan** — a simulated start
time for every window job against the cluster's projected free capacity —
and starts exactly the jobs whose planned start is the current instant.

The projection is a :class:`ResourceProfile`: free burst buffer and free
nodes per SSD tier as piecewise-constant step functions of time, seeded
from the free capacity *now* plus the running jobs' planned releases
(:class:`~repro.backfill.easy.PlannedRelease`, the same walltime-estimate
model EASY backfilling reserves against).  :func:`build_plan` inserts the
window jobs in priority order at the earliest instant that can host each
one for its whole walltime — so a reservation never delays any
higher-priority job's reservation, the conservative-backfilling insertion
rule applied to *selection* instead of backfill.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .job import Job

#: Far-future sentinel for the profile's final segment.
_INF = float("inf")

#: A release whose estimate already passed is assumed imminent — shifted
#: this far past ``now`` — rather than in the past (mirrors EASY).
_OVERRUN_EPSILON = 1e-6

#: Slack below which a planned start counts as "now".  Strictly tighter
#: than the overrun shift, so a job planned against an overdue release's
#: capacity is never mistaken for an immediate start.
_START_EPSILON = 1e-9


class ResourceProfile:
    """Piecewise-constant free capacity over time.

    Segments are parallel lists ``(start_time, bb_free, {tier: free})``;
    the last segment extends to infinity.  All mutation keeps the lists in
    ascending time order.  This is the planning structure behind both the
    conservative backfiller and the plan-based selector.
    """

    def __init__(self, bb: float, tiers: Mapping[float, int], now: float) -> None:
        self._times: List[float] = [now]
        self._bb: List[float] = [bb]
        self._tiers: List[Dict[float, int]] = [
            {float(c): int(n) for c, n in tiers.items()}
        ]

    # --- segment bookkeeping ----------------------------------------------------
    def _split(self, t: float) -> int:
        """Ensure a segment boundary at ``t``; return its segment index."""
        i = bisect_right(self._times, t) - 1
        if self._times[i] == t:
            return i
        self._times.insert(i + 1, t)
        self._bb.insert(i + 1, self._bb[i])
        self._tiers.insert(i + 1, dict(self._tiers[i]))
        return i + 1

    def add_release(self, release) -> None:
        """Capacity a running job returns at its estimated end.

        ``release`` is :class:`~repro.backfill.easy.PlannedRelease`-shaped:
        ``est_end``, ``bb``, ``nodes_by_tier``.  Estimates already in the
        past (the job overran its walltime) are treated as imminent.
        """
        i = self._split(max(release.est_end, self._times[0] + _OVERRUN_EPSILON))
        for j in range(i, len(self._times)):
            self._bb[j] += release.bb
            tiers = self._tiers[j]
            for cap, n in release.nodes_by_tier.items():
                tiers[cap] = tiers.get(cap, 0) + n

    # --- queries ----------------------------------------------------------------
    @property
    def boundaries(self) -> Tuple[float, ...]:
        """Every segment start time, ascending (first entry is ``now``)."""
        return tuple(self._times)

    def free_at(self, t: float) -> Tuple[float, Dict[float, int]]:
        """``(bb_free, {tier: free nodes})`` in the segment containing ``t``."""
        i = max(bisect_right(self._times, t) - 1, 0)
        return self._bb[i], dict(self._tiers[i])

    def _fits_segment(self, i: int, job: Job) -> bool:
        if self._bb[i] < job.bb - 1e-9:
            return False
        qualifying = sum(n for cap, n in self._tiers[i].items() if cap >= job.ssd)
        return qualifying >= job.nodes

    def fits_interval(self, job: Job, t0: float, t1: float) -> bool:
        """Does the job fit in every segment overlapping ``[t0, t1)``?"""
        i = max(bisect_right(self._times, t0) - 1, 0)
        while i < len(self._times):
            seg_start = self._times[i]
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else _INF
            if seg_start >= t1:
                break
            if seg_end > t0 and not self._fits_segment(i, job):
                return False
            i += 1
        return True

    def earliest_start(self, job: Job, now: float) -> Optional[float]:
        """Earliest ``t >= now`` hosting the job for its full walltime.

        Only segment boundaries are candidates (capacity is constant in
        between, so an interior start never beats the boundary before it).
        ``None`` when no boundary works — the job outlasts every hole,
        e.g. it exceeds total capacity.
        """
        duration = max(job.walltime, _START_EPSILON)
        candidates = [t for t in self._times if t >= now]
        if not candidates or candidates[0] > now:
            candidates.insert(0, now)
        for t in candidates:
            if self.fits_interval(job, t, t + duration):
                return t
        return None

    # --- mutation ---------------------------------------------------------------
    def occupy(self, job: Job, t0: float) -> None:
        """Subtract the job's demand over ``[t0, t0 + walltime)``.

        Node demand is drawn smallest-qualifying-tier-first per segment —
        the same preference the cluster's allocator and the feasibility
        verifier apply, so a plan's "now" slice is exactly the allocation
        the engine will perform.
        """
        t1 = t0 + max(job.walltime, _START_EPSILON)
        i0 = self._split(t0)
        self._split(t1)
        j = i0
        while j < len(self._times) and self._times[j] < t1:
            self._bb[j] -= job.bb
            remaining = job.nodes
            tiers = self._tiers[j]
            for cap in sorted(tiers):
                if cap < job.ssd or remaining == 0:
                    continue
                grab = min(tiers[cap], remaining)
                tiers[cap] -= grab
                remaining -= grab
            j += 1


@dataclass(frozen=True)
class PlannedStart:
    """One window job's reservation in the execution plan."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        """Planned release instant (start + walltime estimate)."""
        return self.start + self.job.walltime


@dataclass(frozen=True)
class ExecutionPlan:
    """A forward plan over one scheduling window.

    ``entries`` holds one reservation per plannable window job, in window
    (priority) order; ``unplannable`` collects jobs no profile hole can
    ever host (they exceed projected total capacity).
    """

    now: float
    entries: Tuple[PlannedStart, ...]
    unplannable: Tuple[Job, ...] = ()

    def immediate(self) -> List[Job]:
        """Jobs planned to start at the current instant, in plan order."""
        return [e.job for e in self.entries if e.start <= self.now + _START_EPSILON]

    @property
    def horizon(self) -> float:
        """Latest planned release (``now`` for an empty plan)."""
        return max((e.end for e in self.entries), default=self.now)

    def start_of(self, jid: int) -> Optional[float]:
        """Planned start time of job ``jid``, or None when unplanned."""
        for e in self.entries:
            if e.job.jid == jid:
                return e.start
        return None


def build_plan(
    jobs: Sequence[Job],
    free_bb: float,
    free_tiers: Mapping[float, int],
    releases: Sequence,
    now: float,
) -> ExecutionPlan:
    """Plan simulated start times for ``jobs`` in priority order.

    Parameters mirror :meth:`repro.backfill.easy.EasyBackfill.plan`:
    current free burst buffer and per-tier free node counts, plus the
    running jobs' :class:`~repro.backfill.easy.PlannedRelease`-shaped
    releases.  Each job is reserved at the earliest instant the profile
    can host it for its entire walltime; the reservation then shapes the
    profile every later (lower-priority) job plans against, so no
    reservation ever delays one made before it.
    """
    profile = ResourceProfile(free_bb, free_tiers, now)
    for release in releases:
        profile.add_release(release)
    entries: List[PlannedStart] = []
    unplannable: List[Job] = []
    for job in jobs:
        t = profile.earliest_start(job, now)
        if t is None:
            unplannable.append(job)
            continue
        profile.occupy(job, t)
        entries.append(PlannedStart(job=job, start=t))
    return ExecutionPlan(
        now=now, entries=tuple(entries), unplannable=tuple(unplannable)
    )
