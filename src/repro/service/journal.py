"""Durable request lifecycle journal for the simulation service.

Every request the daemon accepts is journaled through its whole life —
``request`` (accepted) → ``running`` (dispatched, possibly several times)
→ exactly one terminal record (``done``/``failed``/``quarantined``) —
on the same crash-safe JSONL substrate as the grid results ledger
(:class:`~repro.checkpoint.journal.JsonlJournal`): atomic line appends,
fsync per record, tail-tolerant replay.

That single file is the service's entire persistent state.  A daemon
that is SIGKILL'd mid-flight restarts, calls :meth:`RequestJournal.load`,
and gets back (a) every finished result, (b) every request that was
accepted but has no terminal record — exactly the work to resume.  The
load is also an audit: a request id appearing twice, or carrying two
terminal records, violates exactly-once and raises
:class:`~repro.errors.CheckpointError` rather than silently picking one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError
from ..checkpoint.journal import JsonlJournal, decode_payload, encode_payload

#: Journal format version, bumped on incompatible record changes.
JOURNAL_VERSION = 1

#: Record kinds, in lifecycle order.
KIND_REQUEST = "service-request"
KIND_RUNNING = "service-running"
KIND_DONE = "service-done"
KIND_FAILED = "service-failed"
KIND_QUARANTINED = "service-quarantined"
KIND_CANCELLED = "service-cancelled"

ALL_KINDS = (KIND_REQUEST, KIND_RUNNING, KIND_DONE, KIND_FAILED,
             KIND_QUARANTINED, KIND_CANCELLED)

#: A request with one of these is finished; it is never re-run.
TERMINAL_KINDS = frozenset({KIND_DONE, KIND_FAILED, KIND_QUARANTINED,
                            KIND_CANCELLED})


@dataclass
class JournalView:
    """Parsed journal state: what happened, what is still owed."""

    #: accepted requests by id, in acceptance order (dicts keep insertion
    #: order, which is the admission order the daemon journaled).
    requests: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: terminal record by id (``done``/``failed``/``quarantined``).
    terminal: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: dispatch attempts observed per id.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: highest request sequence number seen (daemon resumes ids after it).
    seq_max: int = 0
    #: 1 when replay dropped a SIGKILL-damaged final line.
    dropped_tail: int = 0

    def pending(self) -> List[Dict[str, Any]]:
        """Accepted requests with no terminal record, in admission order."""
        return [rec for rid, rec in self.requests.items()
                if rid not in self.terminal]

    def state(self, request_id: str) -> Optional[str]:
        """Lifecycle state of ``request_id``: queued/running/terminal kind."""
        if request_id in self.terminal:
            return self.terminal[request_id]["kind"].replace("service-", "")
        if request_id in self.requests:
            return "running" if self.attempts.get(request_id) else "queued"
        return None

    def result(self, request_id: str) -> Any:
        """Decode the stored result of a ``done`` request (verifying SHA)."""
        record = self.terminal.get(request_id)
        if record is None or record["kind"] != KIND_DONE:
            raise CheckpointError(
                f"request {request_id!r} has no completed result in the journal")
        return decode_payload(record)


class RequestJournal:
    """Append-only lifecycle journal over :class:`JsonlJournal`."""

    def __init__(self, path) -> None:
        self._journal = JsonlJournal(path)

    @property
    def path(self):
        return self._journal.path

    def exists(self) -> bool:
        return self._journal.exists()

    def repair(self) -> int:
        """Truncate a torn final record so future appends stay replayable.

        Returns the bytes removed.  The daemon calls this during
        recovery whenever :meth:`load` reported a dropped tail: replay
        merely *skips* the damage, but appending after it would leave
        corruption mid-file, which every later load would (correctly)
        refuse as non-crash damage.
        """
        return self._journal.repair_tail(self._parse)

    # --- writing -----------------------------------------------------------------
    def _append(self, kind: str, request_id: str, **fields: Any) -> None:
        record = {"kind": kind, "version": JOURNAL_VERSION, "id": request_id,
                  "t": time.time()}
        record.update(fields)
        self._journal.append(record)

    def append_request(self, request_id: str, seq: int,
                       params: Dict[str, Any]) -> None:
        """Journal admission; ``params`` must be replayable verbatim."""
        self._append(KIND_REQUEST, request_id, seq=int(seq), params=params)

    def append_running(self, request_id: str, attempt: int,
                       degrade: int = 0,
                       overrides: Optional[Dict[str, Any]] = None) -> None:
        """Journal one dispatch to the pool (re-dispatches repeat this)."""
        self._append(KIND_RUNNING, request_id, attempt=int(attempt),
                     degrade=int(degrade), overrides=overrides or {})

    def append_done(self, request_id: str, result: Any,
                    summary: Dict[str, Any], elapsed: float) -> None:
        """Journal the terminal success record with its verified payload."""
        fields: Dict[str, Any] = {"summary": summary,
                                  "elapsed": float(elapsed)}
        fields.update(encode_payload(result))
        self._append(KIND_DONE, request_id, **fields)

    def append_failed(self, request_id: str, error: str, code: int,
                      attempts: int) -> None:
        self._append(KIND_FAILED, request_id, error=str(error),
                     code=int(code), attempts=int(attempts))

    def append_quarantined(self, request_id: str, error: str,
                           crashes: int) -> None:
        self._append(KIND_QUARANTINED, request_id, error=str(error),
                     crashes=int(crashes))

    def append_cancelled(self, request_id: str, reason: str) -> None:
        """Journal a withdrawal (client cancel or shard reconciliation).

        Cancellation is terminal: a cancelled request is never re-run,
        which is what lets a recovered shard drop work that was failed
        over to a peer while it was down.
        """
        self._append(KIND_CANCELLED, request_id, error=str(reason), code=409)

    # --- reading -----------------------------------------------------------------
    @staticmethod
    def _parse(record: Dict[str, Any]) -> Dict[str, Any]:
        kind = record.get("kind")
        if kind not in ALL_KINDS:
            raise CheckpointError(f"unknown journal record kind {kind!r}")
        if record.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"journal version {record.get('version')!r} unsupported "
                f"(expected {JOURNAL_VERSION})")
        if not isinstance(record.get("id"), str) or not record["id"]:
            raise CheckpointError(f"{kind} record without a request id")
        if kind == KIND_REQUEST and not isinstance(record.get("params"), dict):
            raise CheckpointError(
                f"request record {record['id']!r} has no params object")
        return record

    def load(self, verify_payloads: bool = False) -> JournalView:
        """Replay the journal into a :class:`JournalView`, auditing it.

        Raises :class:`~repro.errors.CheckpointError` on interior damage,
        on a duplicated request id, on lifecycle records for an id never
        accepted, and on a second terminal record for an id — the
        exactly-once property the chaos harness pins.  With
        ``verify_payloads`` every ``done`` payload is also decoded, which
        checks its SHA-256 (``tools/validate_checkpoint.py`` mode).
        """
        view = JournalView()
        for lineno, record in self._journal.replay(self._parse):
            rid = record["id"]
            kind = record["kind"]
            if kind == KIND_REQUEST:
                if rid in view.requests:
                    raise CheckpointError(
                        f"{self.path}: line {lineno}: request {rid!r} "
                        "accepted twice")
                view.requests[rid] = record
                view.seq_max = max(view.seq_max, int(record.get("seq", 0)))
                continue
            if rid not in view.requests:
                raise CheckpointError(
                    f"{self.path}: line {lineno}: {kind} record for "
                    f"{rid!r}, which was never accepted")
            if kind == KIND_RUNNING:
                view.attempts[rid] = max(
                    view.attempts.get(rid, 0), int(record.get("attempt", 1)))
                continue
            if rid in view.terminal:
                raise CheckpointError(
                    f"{self.path}: line {lineno}: second terminal record "
                    f"({kind}) for {rid!r} — exactly-once violated by "
                    f"{view.terminal[rid]['kind']}")
            if kind == KIND_DONE and verify_payloads:
                decode_payload(record)
            view.terminal[rid] = record
        view.dropped_tail = self._journal.dropped_tail
        return view
