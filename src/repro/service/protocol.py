"""JSON-lines wire protocol for the simulation service.

One message per line, UTF-8, newline-terminated.  Requests carry an
``op`` plus op-specific fields; responses carry ``ok`` (bool) plus either
result fields or ``code``/``error`` mirroring
:class:`~repro.errors.ServiceError`'s HTTP-style codes.  The framing is
deliberately trivial — any language (or ``socat``) can speak it — and
every message is a self-contained JSON object, so a connection dropped
mid-conversation never leaves ambiguous state on either side.

Validation lives here so the daemon and the offline tools
(``tools/validate_checkpoint.py --kind journal``) reject malformed
requests identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..errors import ServiceError
from ..experiments.config import SCALES
from ..experiments.workloads import ALL_WORKLOADS
from ..methods import available_methods

#: Bumped on incompatible wire changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Ceiling on one encoded line; a client exceeding it is malformed.
MAX_LINE_BYTES = 1 << 20

#: Operations the daemon understands.
OPS = frozenset({"ping", "submit", "status", "wait", "cancel", "stats",
                 "shutdown"})

#: Ceiling on one HTTP request head (request line + headers).
MAX_HTTP_HEAD_BYTES = 8192

#: Upper bound on a client-supplied idempotency key.
MAX_KEY_LENGTH = 128

#: Chaos directive keys a submit may carry (honoured only when the daemon
#: runs with ``allow_chaos``; silently ignored otherwise).
CHAOS_KEYS = frozenset({"crash_attempts", "hang_attempts", "hang_seconds"})


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (newline included)."""
    data = json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ServiceError(
            f"message of {len(data)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "line limit", code=400)
    return data


def decode_message(line: bytes | str) -> Dict[str, Any]:
    """Parse one wire line into a message dict (400 on malformed input)."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ServiceError("message exceeds the line limit", code=400)
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed JSON message: {exc}", code=400) from exc
    if not isinstance(message, dict):
        raise ServiceError("message must be a JSON object", code=400)
    return message


def ok_response(**fields: Any) -> Dict[str, Any]:
    """A success response with ``ok: true`` plus result fields."""
    response = {"ok": True}
    response.update(fields)
    return response


def error_response(error: ServiceError | str, *, code: Optional[int] = None) -> Dict[str, Any]:
    """A failure response mirroring :class:`ServiceError`."""
    if isinstance(error, ServiceError):
        return {"ok": False, "code": error.code, "error": str(error)}
    return {"ok": False, "code": int(code or 500), "error": str(error)}


def _require(value: Any, name: str, kind: type, *, positive: bool = False) -> Any:
    if isinstance(value, bool) or not isinstance(value, kind):
        raise ServiceError(
            f"field {name!r} must be {kind.__name__}, got {type(value).__name__}",
            code=400)
    if positive and value <= 0:
        raise ServiceError(f"field {name!r} must be positive, got {value}", code=400)
    return value


def validate_chaos(chaos: Any) -> Dict[str, Any]:
    """Validate a submit's chaos directive (fault-injection knobs)."""
    if not isinstance(chaos, dict):
        raise ServiceError("field 'chaos' must be an object", code=400)
    unknown = set(chaos) - CHAOS_KEYS
    if unknown:
        raise ServiceError(
            f"unknown chaos keys {sorted(unknown)}; known: {sorted(CHAOS_KEYS)}",
            code=400)
    out: Dict[str, Any] = {}
    for key in ("crash_attempts", "hang_attempts"):
        if key in chaos:
            value = chaos[key]
            if not isinstance(value, int) or isinstance(value, bool) or value < -1:
                raise ServiceError(
                    f"chaos.{key} must be an int >= -1 (-1 = every attempt)",
                    code=400)
            out[key] = value
    if "hang_seconds" in chaos:
        out["hang_seconds"] = float(
            _require(chaos["hang_seconds"], "chaos.hang_seconds", (int, float)))
    return out


def validate_submit(params: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize and validate a submit's simulation parameters.

    Returns a new dict containing only recognized fields, with hints
    defaulted — this is exactly what gets journaled, so the journal's
    ``params`` records are replayable as-is after a daemon restart.
    """
    if not isinstance(params, dict):
        raise ServiceError("field 'params' must be an object", code=400)
    workload = _require(params.get("workload"), "workload", str)
    if workload not in ALL_WORKLOADS:
        raise ServiceError(
            f"unknown workload {workload!r}; known: {list(ALL_WORKLOADS)}",
            code=400)
    method = _require(params.get("method"), "method", str)
    methods = available_methods()
    if method not in methods:
        raise ServiceError(
            f"unknown method {method!r}; known: {methods}", code=400)
    out: Dict[str, Any] = {"workload": workload, "method": method}
    if params.get("scale") is not None:
        scale = _require(params["scale"], "scale", str)
        if scale not in SCALES:
            raise ServiceError(
                f"unknown scale {scale!r}; known: {sorted(SCALES)}", code=400)
        out["scale"] = scale
    if params.get("seed") is not None:
        out["seed"] = _require(params["seed"], "seed", int)
    if params.get("generations") is not None:
        out["generations"] = _require(
            params["generations"], "generations", int, positive=True)
    if params.get("watchdog_budget") is not None:
        out["watchdog_budget"] = float(_require(
            params["watchdog_budget"], "watchdog_budget", (int, float),
            positive=True))
    # Admission-control hints: how "big" this request is to the priority
    # policy.  They shape queue order only, never the simulation itself.
    out["nodes_hint"] = _require(
        params.get("nodes_hint", 1), "nodes_hint", int, positive=True)
    out["walltime_hint"] = float(_require(
        params.get("walltime_hint", 3600.0), "walltime_hint", (int, float),
        positive=True))
    if params.get("chaos") is not None:
        out["chaos"] = validate_chaos(params["chaos"])
    if params.get("idempotency_key") is not None:
        key = _require(params["idempotency_key"], "idempotency_key", str)
        if not key or len(key) > MAX_KEY_LENGTH:
            raise ServiceError(
                f"idempotency_key must be 1..{MAX_KEY_LENGTH} chars", code=400)
        out["idempotency_key"] = key
    return out


# --- HTTP/1.1 adapter ----------------------------------------------------------
# The TCP listener also speaks just enough HTTP/1.1 that ``curl`` (or any
# HTTP client) can drive the service: the daemon sniffs the first line of
# a connection, and when it is an HTTP request line the JSON-lines message
# is carried as the request body (``POST /``) or derived from the path
# (``GET /ping``, ``GET /stats``, ``GET /status/<id>``).  Parsing is pure
# and lives here; the async framing stays in the daemon.

#: HTTP methods whose request line identifies a connection as HTTP.
HTTP_METHODS = (b"GET ", b"POST ", b"PUT ", b"HEAD ", b"DELETE ", b"OPTIONS ")

#: HTTP status text for the ServiceError codes the daemon emits.
HTTP_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 408: "Request Timeout",
    409: "Conflict", 429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
}


def looks_like_http(first_line: bytes) -> bool:
    """True when a connection's first line is an HTTP request line."""
    return first_line.startswith(HTTP_METHODS)


def http_request_to_message(method: str, target: str,
                            body: bytes) -> Dict[str, Any]:
    """Map one parsed HTTP request onto a protocol message (400 on abuse)."""
    if method == "POST":
        if not body:
            raise ServiceError("POST requires a JSON message body", code=400)
        return decode_message(body)
    if method != "GET":
        raise ServiceError(f"unsupported HTTP method {method}", code=400)
    path, _, query = target.partition("?")
    if path in {"/", "/ping"}:
        return {"op": "ping"}
    if path == "/stats":
        return {"op": "stats"}
    if path.startswith("/status/"):
        return {"op": "status", "id": path[len("/status/"):]}
    raise ServiceError(
        f"unknown HTTP path {path!r}; use POST / with a JSON body, or "
        "GET /ping | /stats | /status/<id>", code=404)


def encode_http_response(response: Dict[str, Any]) -> bytes:
    """Serialize a protocol response as one HTTP/1.1 response."""
    status = 200 if response.get("ok") else int(response.get("code", 500))
    text = HTTP_STATUS_TEXT.get(status, "Error")
    body = json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
    head = (f"HTTP/1.1 {status} {text}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check a decoded message is a well-formed request (400 otherwise)."""
    op = message.get("op")
    if op not in OPS:
        raise ServiceError(
            f"unknown op {op!r}; known: {sorted(OPS)}", code=400)
    if op == "submit":
        message = dict(message)
        message["params"] = validate_submit(message.get("params") or {})
    if op == "status" and message.get("key") is not None:
        # Status by idempotency key: how a router rediscovers a request
        # it is no longer sure it submitted (ambiguous send + failover).
        key = _require(message["key"], "key", str)
        if not key or len(key) > MAX_KEY_LENGTH:
            raise ServiceError(
                f"key must be 1..{MAX_KEY_LENGTH} chars", code=400)
    elif op in {"status", "wait", "cancel"}:
        _require(message.get("id"), "id", str)
    if op == "wait" and message.get("timeout") is not None:
        _require(message["timeout"], "timeout", (int, float), positive=True)
    if op == "shutdown":
        mode = message.get("mode", "graceful")
        if mode not in {"graceful", "now"}:
            raise ServiceError(
                f"shutdown mode must be 'graceful' or 'now', got {mode!r}",
                code=400)
    return message
