"""Checksummed zero-copy trace sharing over POSIX shared memory.

Every worker the service dispatches to needs the request's trace — and
regenerating a trace per worker process repeats the most expensive part
of a request's cold path (synthetic generation plus Darshan enhancement).
This module publishes a trace's immutable :data:`~repro.simulator.jobtable.TRACE_COLUMNS`
**once**, into one ``multiprocessing.shared_memory`` segment, so every
worker on the host attaches the same physical pages and reads the columns
zero-copy (``np.frombuffer`` over the segment buffer — no serialization,
no per-worker copy of the data region).

Because shared memory outlives processes, every attach must assume the
segment may be damaged (a crashed writer, a stray ``write(2)``, chaos).
The layout is therefore self-verifying::

    [8 bytes]  magic  b"REPROSHM"
    [8 bytes]  header length H (big-endian)
    [H bytes]  JSON header: version, trace name, machine spec, column
               dtypes/offsets/lengths, sparse deps/users, and the
               SHA-256 of the data region
    [D bytes]  data region: the packed trace columns

:func:`attach_trace` re-hashes the data region and compares against the
header before handing out a single value; any mismatch (or undecodable
header) raises :class:`~repro.errors.ShmCorruptionError`, which callers
treat as "segment absent" — regenerate the trace, republish, count the
event in telemetry (``service.shm_corrupt``).

Lifecycle: the daemon owns its segments.  Names are deterministic
(:func:`segment_name` hashes the daemon's socket path), so a restarted
daemon finds its previous segments, verifies them, and either reuses or
unlinks-and-republishes — a SIGKILL therefore cannot leak a segment past
the next boot.  Clean shutdowns (including the signal paths, which funnel
through ``ServiceDaemon.serve``'s ``finally``) unlink eagerly.
"""

from __future__ import annotations

import hashlib
import json
import os
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ShmCorruptionError
from ..simulator.jobtable import TRACE_COLUMNS, JobTable, jobs_from_columns
from ..workloads.spec import MachineSpec
from ..workloads.trace import Trace

#: First bytes of every trace segment.
MAGIC = b"REPROSHM"

#: Bumped on incompatible layout changes (checked on attach).
SEGMENT_VERSION = 1

#: Prefix of every segment name this module creates (leak audits key on it).
NAME_PREFIX = "repro-trace-"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach segment ``name`` without resource-tracker registration.

    On Python < 3.13 ``SharedMemory.__init__`` registers *every* init —
    attaches included — with the per-process resource tracker, which then
    "cleans up" (unlinks!) the publisher's segment when any attaching
    process exits, and prints spurious leak warnings.  Post-init
    ``unregister`` calls race across processes sharing one tracker, so
    instead registration is suppressed for the duration of the attach.
    The publisher's own create-time registration stays in place: it is
    the backstop that unlinks segments if the whole process tree dies
    without running :meth:`TracePublisher.close`.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]
    except ImportError:  # pragma: no cover - tracker absent on this platform
        return shared_memory.SharedMemory(name=name, create=False)


def segment_name(socket_path: str, workload: str, scale: str) -> str:
    """Deterministic segment name for one daemon's (workload, scale) trace.

    Hashing the socket path keeps two daemons on one host from fighting
    over a name while letting a restarted daemon find its own segments.
    """
    digest = hashlib.sha256(
        f"{socket_path}:{workload}:{scale}".encode()).hexdigest()[:16]
    return f"{NAME_PREFIX}{digest}"


def _machine_fields(machine: MachineSpec) -> Dict[str, Any]:
    return {
        "name": machine.name,
        "nodes": machine.nodes,
        "bb_capacity": machine.bb_capacity,
        "base_policy": machine.base_policy,
        "bb_reserved_fraction": machine.bb_reserved_fraction,
        "ssd_tiers": ([list(t) for t in machine.ssd_tiers]
                      if machine.ssd_tiers is not None else None),
    }


def _machine_from_fields(fields: Dict[str, Any]) -> MachineSpec:
    tiers = fields.get("ssd_tiers")
    return MachineSpec(
        name=fields["name"],
        nodes=int(fields["nodes"]),
        bb_capacity=float(fields["bb_capacity"]),
        base_policy=fields.get("base_policy", "fcfs"),
        bb_reserved_fraction=float(fields.get("bb_reserved_fraction", 0.0)),
        ssd_tiers=(tuple((float(cap), int(n)) for cap, n in tiers)
                   if tiers is not None else None),
    )


def publish_trace(trace: Trace, name: str) -> str:
    """Publish ``trace``'s columns into segment ``name``; returns the name.

    An existing segment under ``name`` is unlinked first (the caller has
    already decided it is stale or corrupt).  The single data copy
    happens here, from the trace's columns into the shared pages.
    """
    unlink_segment(name)
    columns = JobTable(trace.fresh_jobs()).column_arrays()
    blobs = {col: np.ascontiguousarray(arr).tobytes()
             for col, arr in columns.items()}
    layout: List[Dict[str, Any]] = []
    offset = 0
    for col in TRACE_COLUMNS:
        blob = blobs[col]
        layout.append({"name": col, "dtype": str(columns[col].dtype),
                       "offset": offset, "nbytes": len(blob)})
        offset += len(blob)
    data = b"".join(blobs[col] for col in TRACE_COLUMNS)
    deps = {int(j.jid): sorted(j.deps) for j in trace.jobs if j.deps}
    users = {int(j.jid): j.user for j in trace.jobs if j.user}
    header = json.dumps({
        "version": SEGMENT_VERSION,
        "trace": trace.name,
        "machine": _machine_fields(trace.machine),
        "n_jobs": len(trace),
        "columns": layout,
        "deps": deps,
        "users": users,
        "data_sha256": hashlib.sha256(data).hexdigest(),
        "data_length": len(data),
    }, sort_keys=True).encode("utf-8")
    total = len(MAGIC) + 8 + len(header) + len(data)
    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    try:
        buf = shm.buf
        pos = 0
        for chunk in (MAGIC, len(header).to_bytes(8, "big"), header, data):
            buf[pos:pos + len(chunk)] = chunk
            pos += len(chunk)
    finally:
        shm.close()
    return name


def verify_segment(name: str) -> Dict[str, Any]:
    """Attach, integrity-check, and return the parsed header of ``name``.

    Raises :class:`FileNotFoundError` when the segment does not exist and
    :class:`~repro.errors.ShmCorruptionError` on any damage.
    """
    shm = _attach_untracked(name)
    try:
        return _verify(shm, name)
    finally:
        shm.close()


def _verify(shm: shared_memory.SharedMemory, name: str) -> Dict[str, Any]:
    buf = bytes(shm.buf[:len(MAGIC) + 8])
    if buf[:len(MAGIC)] != MAGIC:
        raise ShmCorruptionError(f"segment {name}: bad magic")
    header_len = int.from_bytes(buf[len(MAGIC):], "big")
    start = len(MAGIC) + 8
    if header_len <= 0 or start + header_len > shm.size:
        raise ShmCorruptionError(
            f"segment {name}: header length {header_len} out of range")
    try:
        header = json.loads(bytes(shm.buf[start:start + header_len]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ShmCorruptionError(
            f"segment {name}: undecodable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("version") != SEGMENT_VERSION:
        raise ShmCorruptionError(
            f"segment {name}: unsupported header/version")
    data_start = start + header_len
    data_length = int(header.get("data_length", -1))
    if data_length < 0 or data_start + data_length > shm.size:
        raise ShmCorruptionError(
            f"segment {name}: data length {data_length} out of range")
    digest = hashlib.sha256(
        shm.buf[data_start:data_start + data_length]).hexdigest()
    if digest != header.get("data_sha256"):
        raise ShmCorruptionError(
            f"segment {name}: data SHA-256 mismatch (got {digest[:12]}…, "
            f"header says {str(header.get('data_sha256'))[:12]}…)")
    header["_data_start"] = data_start
    return header


def attach_trace(name: str) -> Trace:
    """Rebuild the published trace from segment ``name`` (verified).

    The column arrays are read zero-copy from the shared pages; the
    returned :class:`Trace` holds fresh :class:`Job` objects built from
    them (jobs carry mutable scheduling state, so they cannot be
    shared).  Raises :class:`FileNotFoundError` when the segment is
    absent and :class:`~repro.errors.ShmCorruptionError` when it fails
    verification — callers fall back to regeneration on either.
    """
    shm = _attach_untracked(name)
    try:
        header = _verify(shm, name)
        data_start = header["_data_start"]
        columns: Dict[str, np.ndarray] = {}
        for spec in header["columns"]:
            dtype = np.dtype(spec["dtype"])
            count = spec["nbytes"] // dtype.itemsize
            columns[spec["name"]] = np.frombuffer(
                shm.buf, dtype=dtype, count=count,
                offset=data_start + spec["offset"])
        missing = set(TRACE_COLUMNS) - set(columns)
        if missing:
            raise ShmCorruptionError(
                f"segment {name}: missing columns {sorted(missing)}")
        deps = {int(k): v for k, v in (header.get("deps") or {}).items()}
        users = {int(k): v for k, v in (header.get("users") or {}).items()}
        jobs = jobs_from_columns(columns, deps=deps, users=users)
        del columns  # release the buffer views before closing the segment
        return Trace(
            name=header["trace"],
            machine=_machine_from_fields(header["machine"]),
            jobs=tuple(jobs),
        )
    finally:
        shm.close()


def unlink_segment(name: str) -> bool:
    """Unlink segment ``name`` if it exists; True when something was cut."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass
    finally:
        shm.close()
    return True


class TracePublisher:
    """Daemon-side registry of published segments with guaranteed unlink.

    One per daemon.  :meth:`ensure` is idempotent per (workload, scale):
    the first call generates and publishes; later calls return the cached
    name.  An existing on-disk segment from a previous life is verified —
    reused when intact, unlinked/republished (and counted) when corrupt.
    :meth:`close` unlinks everything this publisher owns; the daemon
    calls it on every exit path, including signal-driven ones.

    A sidecar *manifest* (``<socket>.shm``) lists every name this
    publisher has ever published, rewritten atomically on each publish.
    A SIGKILL leaves segments and manifest behind; the next life loads
    the manifest as *orphans* and :meth:`close` unlinks any orphan the
    new life never re-served — so no segment outlives the next clean
    shutdown, even for traces the restarted daemon never touched.
    """

    def __init__(self, socket_path: str, metrics=None) -> None:
        self.socket_path = socket_path
        self.metrics = metrics
        self._names: Dict[tuple, str] = {}
        self.manifest_path = Path(socket_path + ".shm")
        self._orphans: set = set()
        try:
            leftovers = json.loads(self.manifest_path.read_text())
            if isinstance(leftovers, list):
                self._orphans = {n for n in leftovers
                                 if isinstance(n, str)
                                 and n.startswith(NAME_PREFIX)}
        except (OSError, ValueError):
            pass

    def _write_manifest(self) -> None:
        names = sorted(set(self._names.values()) | self._orphans)
        tmp = str(self.manifest_path) + ".tmp"
        Path(tmp).write_text(json.dumps(names))
        os.replace(tmp, self.manifest_path)

    def ensure(self, workload: str, scale: str) -> str:
        """Publish (or adopt) the segment for one trace; returns its name."""
        key = (workload, scale)
        cached = self._names.get(key)
        if cached is not None:
            return cached
        from ..experiments.config import get_scale
        from ..experiments.workloads import get_workload

        name = segment_name(self.socket_path, workload, scale)
        adopted = False
        try:
            verify_segment(name)
            adopted = True  # previous life's segment, still intact
        except FileNotFoundError:
            pass
        except ShmCorruptionError:
            if self.metrics is not None:
                self.metrics.inc("service.shm_corrupt")
            unlink_segment(name)
        if not adopted:
            trace = get_workload(workload, get_scale(scale))
            publish_trace(trace, name)
            if self.metrics is not None:
                self.metrics.inc("service.shm_published")
        self._names[key] = name
        self._orphans.discard(name)
        self._write_manifest()
        return name

    def names(self) -> List[str]:
        return sorted(self._names.values())

    def close(self) -> None:
        """Unlink every owned segment, orphans included (idempotent)."""
        for name in set(self._names.values()) | self._orphans:
            unlink_segment(name)
        self._names.clear()
        self._orphans.clear()
        try:
            self.manifest_path.unlink()
        except OSError:
            pass


def attach_or_none(name: Optional[str]) -> Optional[Trace]:
    """Worker-side attach that degrades to None on any failure.

    The worker falls back to regenerating the trace — corruption or a
    missing segment must never fail a request, only cost the fallback.
    """
    if not name:
        return None
    try:
        return attach_trace(name)
    except (FileNotFoundError, ShmCorruptionError, ValueError, OSError):
        return None
