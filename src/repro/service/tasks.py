"""Worker-side execution of service requests.

These functions run inside the pool's worker processes.  The module is
deliberately tiny and import-safe: it is pickled by name into workers,
so it must not drag the daemon's asyncio machinery along.

Two responsibilities live here:

* **heartbeat claims** — the pool passes its heartbeat queue through the
  executor's initializer; the very first thing a request does on a
  worker is put a ``(request_id, pid, monotonic_time)`` claim on it.
  That claim is what arms the supervisor's per-request deadline: a
  claimed request that neither finishes nor fails within its deadline
  has a wedged worker, and the supervisor SIGKILLs that exact pid.
* **deterministic chaos** — a request may carry a chaos directive
  (``crash_attempts``/``hang_attempts``/``hang_seconds``).  It is only
  honoured when the daemon was started with ``allow_chaos`` (the flag is
  baked into the worker dispatch, not read from the environment), and it
  keys off the *attempt number*, so "crash the worker on attempt 1, then
  succeed" replays identically every run — the property the chaos
  harness's exactly-once assertions rest on.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Optional

from ..experiments.config import get_scale
from ..experiments.grid import cell_seed
from ..experiments.runner import RunResult, run_one
from ..experiments.workloads import get_workload

#: Heartbeat queue installed by the pool's initializer (worker side).
_HEARTBEAT = None

#: Worker-local cache of attached shared-memory traces (name → Trace).
_SHM_TRACES: Dict[str, Any] = {}

#: Worker-local fallback count: shm attaches that failed and were
#: regenerated.  Corruption is *counted* daemon-side (the publisher
#: verifies segments and bumps ``service.shm_corrupt``); this counter
#: exists so tests can observe the worker's degrade path directly.
_SHM_FALLBACKS = 0


def pool_initializer(heartbeat) -> None:
    """Executor initializer: stash the claim queue for this worker.

    Also undoes the daemon's signal plumbing.  Fork-context workers
    inherit asyncio's ``add_signal_handler`` state — a Python-level
    handler *and* the wakeup fd, which is the parent loop's own
    socketpair.  Left in place, a SIGTERM delivered to a worker (e.g.
    the pool terminating a survivor during a rebuild) would be written
    into the shared wakeup fd and dispatched as a shutdown request *in
    the daemon*, while the worker itself shrugged it off.  Workers must
    therefore drop the wakeup fd and restore default dispositions
    before doing anything else.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass
    global _HEARTBEAT
    _HEARTBEAT = heartbeat


def _claim(request_id: str) -> None:
    """Tell the supervisor this pid now owns ``request_id``."""
    if _HEARTBEAT is not None:
        _HEARTBEAT.put((request_id, os.getpid(), time.monotonic()))


def apply_chaos(chaos: Optional[Dict[str, Any]], attempt: int) -> None:
    """Inject the directive's fault for this attempt (deterministic).

    ``crash_attempts=K`` SIGKILLs the worker on attempts 1..K (−1 means
    every attempt — a poison request the pool must quarantine);
    ``hang_attempts=K`` sleeps ``hang_seconds`` on attempts 1..K, which
    the supervisor's deadline treats as a wedged worker.
    """
    if not chaos:
        return
    crash_k = chaos.get("crash_attempts", 0)
    if crash_k == -1 or attempt <= crash_k:
        # A real crash, not an exception: the worker dies mid-task the
        # way an OOM kill or segfault would, breaking the whole pool.
        os.kill(os.getpid(), signal.SIGKILL)
    hang_k = chaos.get("hang_attempts", 0)
    if hang_k == -1 or attempt <= hang_k:
        time.sleep(float(chaos.get("hang_seconds", 3600.0)))


def _resolve_trace(workload: str, scale, shm_name: Optional[str]):
    """The request's trace: shared-memory attach first, regeneration second.

    A verified attach is cached per worker process (the daemon reuses one
    segment name per (workload, scale)).  Any attach failure — segment
    gone, checksum mismatch — silently degrades to the pre-shm path:
    regenerate via :func:`get_workload` and count the fallback, so a
    corrupt segment costs performance, never correctness.
    """
    global _SHM_FALLBACKS
    if shm_name:
        cached = _SHM_TRACES.get(shm_name)
        if cached is not None:
            return cached
        from .shm import attach_or_none

        trace = attach_or_none(shm_name)
        if trace is not None:
            _SHM_TRACES[shm_name] = trace
            return trace
        _SHM_FALLBACKS += 1
    return get_workload(workload, scale)


def execute_request(
    request_id: str,
    params: Dict[str, Any],
    attempt: int,
    allow_chaos: bool = False,
) -> RunResult:
    """Run one simulation request to completion on this worker."""
    _claim(request_id)
    if allow_chaos:
        apply_chaos(params.get("chaos"), attempt)
    scale = get_scale(params.get("scale"))
    workload = params["workload"]
    method = params["method"]
    trace = _resolve_trace(workload, scale, params.get("shm_trace"))
    seed = params.get("seed")
    if seed is None:
        seed = cell_seed(workload, method)
    return run_one(
        trace,
        method,
        scale,
        seed=seed,
        generations=params.get("generations"),
        watchdog_budget=params.get("watchdog_budget"),
        collect_telemetry=bool(params.get("telemetry", False)),
    )


def result_summary(result: RunResult) -> Dict[str, Any]:
    """The small JSON-safe digest of a result the daemon journals inline.

    The full :class:`RunResult` rides in the journal record's verified
    payload; this digest is what ``status``/``wait`` responses carry.
    """
    summary = {k: float(v) for k, v in result.summary.as_dict().items()}
    return {
        "workload": result.workload,
        "method": result.method,
        "makespan": float(result.makespan),
        "selector_calls": int(result.selector_calls),
        "metrics": summary,
    }
