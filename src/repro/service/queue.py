"""Admission control: a bounded queue ordered by the repo's own policies.

The service eats its own dog food: queued requests are wrapped in
:class:`~repro.simulator.job.Job` proxies and ordered by the same
:class:`~repro.policies.PriorityPolicy` objects the simulated schedulers
use — FCFS for strict arrival order, WFP to favour "large" requests
(``nodes_hint`` × normalised wait³) exactly as Theta's base scheduler
favours capability jobs.  The proxy maps request hints onto job fields:
``nodes_hint`` → ``nodes``, ``walltime_hint`` → ``walltime``, admission
instant → ``submit_time`` (seconds since the queue's epoch, so FCFS ties
break on the daemon's own admission sequence).

Past ``high_water`` queued requests the queue *sheds*: `offer` raises a
429-style :class:`~repro.errors.ServiceError` and the client is told to
back off — bounded memory beats unbounded latency.  Below that, rising
occupancy maps onto a degradation ladder (:meth:`AdmissionQueue.degrade_level`)
the daemon uses to trade result quality for throughput: smaller GA
budgets and tighter solver watchdogs as pressure builds.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..policies import FCFS, WFP, PriorityPolicy
from ..simulator.job import Job

#: Queue-occupancy fractions at which degradation levels engage.
DEGRADE_THRESHOLDS = (0.5, 0.85)


def make_policy(name: str) -> PriorityPolicy:
    """Resolve an admission policy by its base-scheduler name."""
    if name == "fcfs":
        return FCFS()
    if name == "wfp":
        return WFP()
    raise ServiceError(
        f"unknown admission policy {name!r}; known: ['fcfs', 'wfp']", code=400)


@dataclass
class _Entry:
    request_id: str
    params: Dict[str, Any]
    job: Job  #: priority proxy fed to the policy


class AdmissionQueue:
    """Bounded, policy-ordered request queue with load shedding."""

    def __init__(
        self,
        policy: PriorityPolicy,
        high_water: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if high_water < 1:
            raise ServiceError(
                f"high_water must be >= 1, got {high_water}", code=400)
        self.policy = policy
        self.high_water = int(high_water)
        self._clock = clock
        self._epoch = clock()
        self._serial = itertools.count(1)
        self._entries: List[_Entry] = []
        #: requests shed so far (mirrors the ``service.shed`` counter).
        self.shed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    def pressure(self) -> float:
        """Queue occupancy in [0, ∞): depth over the high-water mark."""
        return len(self._entries) / self.high_water

    def degrade_level(self) -> int:
        """0 = full fidelity, 1 = reduced GA budget, 2 = survival mode."""
        pressure = self.pressure()
        level = 0
        for threshold in DEGRADE_THRESHOLDS:
            if pressure >= threshold:
                level += 1
        return level

    def offer(self, request_id: str, params: Dict[str, Any],
              *, exempt: bool = False) -> None:
        """Admit a request, or shed it with a 429 when at high water.

        ``exempt`` bypasses the bound — used for journal-recovered
        requests, which were already admitted in a previous life and
        must not be lost to a full queue on restart.
        """
        if not exempt and len(self._entries) >= self.high_water:
            self.shed += 1
            raise ServiceError(
                f"queue full ({self.high_water} requests queued); "
                "retry with backoff", code=429)
        job = Job(
            jid=next(self._serial),
            submit_time=max(self._clock() - self._epoch, 0.0),
            runtime=0.0,
            walltime=float(params.get("walltime_hint", 3600.0)),
            nodes=int(params.get("nodes_hint", 1)),
        )
        self._entries.append(_Entry(request_id, params, job))

    def take(self) -> Tuple[str, Dict[str, Any]]:
        """Pop the highest-priority request per the admission policy."""
        if not self._entries:
            raise ServiceError("queue is empty", code=404)
        now = self._clock() - self._epoch
        ordered = self.policy.order([e.job for e in self._entries], now)
        by_jid = {e.job.jid: i for i, e in enumerate(self._entries)}
        entry = self._entries.pop(by_jid[ordered[0].jid])
        return entry.request_id, entry.params

    def drain(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Remove and return everything still queued (shutdown path)."""
        drained = [(e.request_id, e.params) for e in self._entries]
        self._entries.clear()
        return drained

    def queued_ids(self) -> List[str]:
        return [e.request_id for e in self._entries]

    def peek_order(self) -> List[str]:
        """Current dispatch order without mutating the queue (stats op)."""
        now = self._clock() - self._epoch
        ordered = self.policy.order([e.job for e in self._entries], now)
        by_jid = {e.job.jid: e.request_id for e in self._entries}
        return [by_jid[j.jid] for j in ordered]

    def remove(self, request_id: str) -> Optional[Dict[str, Any]]:
        """Withdraw a queued request by id (None when not queued)."""
        for i, entry in enumerate(self._entries):
            if entry.request_id == request_id:
                return self._entries.pop(i).params
        return None
