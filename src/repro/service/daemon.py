"""The simulation service daemon: socket server + dispatcher + recovery.

:class:`ServiceDaemon` ties the pieces together around an asyncio event
loop listening on a Unix socket:

* connections speak the JSON-lines protocol (:mod:`.protocol`); every
  request is validated, admitted through the :class:`.AdmissionQueue`
  (shedding with 429 past high water), journaled, and dispatched to the
  :class:`.ServicePool` when a worker slot frees up;
* the **degradation ladder** engages at dispatch time: queue pressure
  ≥ 50% halves the GA generation budget and arms a solver watchdog,
  ≥ 85% quarters it and tightens the watchdog — the service keeps
  answering under load, trading fidelity the way §3.2.2's window-size
  knob trades solve quality for tractability.  Degradations are recorded
  in the journal's ``running`` records and the response's ``degrade``
  field, never silently;
* **recovery**: on startup with an existing journal the daemon replays
  it (:meth:`.RequestJournal.load` — which also audits exactly-once),
  serves finished results from the journal, and re-enqueues every
  accepted-but-unfinished request, exempt from admission control.  A
  SIGKILL'd daemon therefore resumes its backlog with no client action,
  and a result computed before the kill is never recomputed.

The daemon is deliberately single-loop: all state mutation happens on
the event loop thread, except the pool's ``on_dispatch`` journal append
(crash-safe by the journal's atomic line writes).
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import PoisonRequestError, ServiceError
from ..telemetry import MetricsRegistry
from . import protocol
from .journal import RequestJournal
from .pool import PoolConfig, ServicePool
from .queue import AdmissionQueue, make_policy
from .tasks import result_summary

#: (generations divisor, watchdog seconds) per degradation level.
DEGRADE_LADDER = {1: (2, 5.0), 2: (4, 1.0)}


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a daemon."""

    socket_path: str
    journal_path: Optional[str] = None
    workers: int = 2
    high_water: int = 16
    policy: str = "fcfs"
    deadline: Optional[float] = None
    retries: int = 2
    quarantine_after: int = 2
    allow_chaos: bool = False
    degrade: bool = True
    poll_interval: float = 0.02


class ServiceDaemon:
    """One long-lived simulation service instance."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.journal = (RequestJournal(config.journal_path)
                        if config.journal_path else None)
        self.queue = AdmissionQueue(
            make_policy(config.policy), high_water=config.high_water)
        self.pool = ServicePool(
            PoolConfig(
                workers=config.workers,
                deadline=config.deadline,
                retries=config.retries,
                quarantine_after=config.quarantine_after,
                allow_chaos=config.allow_chaos,
                poll_interval=config.poll_interval,
            ),
            metrics=self.metrics,
            on_dispatch=self._on_dispatch,
        )
        #: request id → {"state", "params", and terminal details}.
        self._status: Dict[str, Dict[str, Any]] = {}
        self._terminal_events: Dict[str, asyncio.Event] = {}
        self._seq = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._kick: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()
        self.recovered = 0

    # --- lifecycle ---------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: serve old results, re-enqueue unfinished work."""
        if self.journal is None or not self.journal.exists():
            return
        view = self.journal.load()
        self._seq = view.seq_max
        for rid, record in view.requests.items():
            terminal = view.terminal.get(rid)
            if terminal is None:
                self._status[rid] = {"state": "queued",
                                     "params": record["params"],
                                     "recovered": True}
                self.queue.offer(rid, record["params"], exempt=True)
                self.recovered += 1
                self.metrics.inc("service.recovered")
                continue
            kind = terminal["kind"].replace("service-", "")
            entry: Dict[str, Any] = {"state": kind,
                                     "params": record["params"]}
            if kind == "done":
                entry["summary"] = terminal.get("summary")
                entry["elapsed"] = terminal.get("elapsed")
            else:
                entry["error"] = terminal.get("error")
                entry["code"] = terminal.get("code", 500)
            self._status[rid] = entry
        if view.dropped_tail:
            # Replay skipped a torn final record; cut it off before we
            # append again, or the damage would end up mid-file where
            # later loads must treat it as real corruption.
            self.journal.repair()
            self.metrics.inc("service.journal_tail_dropped")

    async def serve(self, ready: Optional[asyncio.Event] = None) -> None:
        """Run the daemon until a shutdown request (or cancellation)."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._kick = asyncio.Event()
        self._recover()
        self.pool.start()
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)  # stale socket from a kill
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.config.socket_path)
        dispatcher = loop.create_task(self._dispatch_loop())
        if ready is not None:
            ready.set()
        try:
            await self._stopped.wait()
        finally:
            dispatcher.cancel()
            server.close()
            await server.wait_closed()
            self.pool.shutdown(wait=False)
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)

    # --- dispatch ----------------------------------------------------------------
    def _on_dispatch(self, request_id: str, attempt: int) -> None:
        """Pool callback (supervisor thread): journal each dispatch."""
        status = self._status.get(request_id, {})
        if self.journal is not None:
            self.journal.append_running(
                request_id, attempt, degrade=status.get("degrade", 0),
                overrides=status.get("overrides"))

    def _degrade(self, params: Dict[str, Any]) -> tuple:
        """Apply the pressure ladder; returns (params, level, overrides)."""
        level = self.queue.degrade_level() if self.config.degrade else 0
        if level == 0:
            return params, 0, {}
        divisor, watchdog = DEGRADE_LADDER[min(level, 2)]
        overrides: Dict[str, Any] = {}
        effective = dict(params)
        from ..experiments.config import get_scale  # local: cheap, cycle-free
        base = params.get("generations") or get_scale(params.get("scale")).generations
        capped = max(1, base // divisor)
        if capped < base:
            effective["generations"] = overrides["generations"] = capped
        if params.get("watchdog_budget") is None:
            effective["watchdog_budget"] = overrides["watchdog_budget"] = watchdog
        return effective, level, overrides

    async def _dispatch_loop(self) -> None:
        assert self._kick is not None
        while True:
            while self.queue and self.pool.active() < self.config.workers:
                rid, params = self.queue.take()
                effective, level, overrides = self._degrade(params)
                status = self._status[rid]
                status.update(state="running", degrade=level,
                              overrides=overrides or None)
                if level:
                    self.metrics.inc("service.degraded")
                future = self.pool.submit(rid, effective)
                wrapped = asyncio.wrap_future(future)
                asyncio.get_running_loop().create_task(
                    self._finish(rid, wrapped))
            self.metrics.set_gauge("service.queue_depth", self.queue.depth)
            self._kick.clear()
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass

    async def _finish(self, rid: str, wrapped: "asyncio.Future") -> None:
        """Await one request's outcome; journal its terminal record."""
        status = self._status[rid]
        started = time.monotonic()
        try:
            result = await wrapped
        except PoisonRequestError as exc:
            status.update(state="quarantined", error=str(exc), code=exc.code,
                          crashes=exc.crashes)
            if self.journal is not None:
                self.journal.append_quarantined(rid, str(exc), exc.crashes)
        except ServiceError as exc:
            attempts = getattr(exc, "attempts", 0)
            status.update(state="failed", error=str(exc), code=exc.code,
                          attempts=attempts)
            if self.journal is not None:
                self.journal.append_failed(rid, str(exc), exc.code, attempts)
        except Exception as exc:  # pragma: no cover - pool always wraps
            status.update(state="failed", error=str(exc), code=500)
            if self.journal is not None:
                self.journal.append_failed(rid, str(exc), 500, 0)
        else:
            summary = result_summary(result)
            elapsed = time.monotonic() - started
            status.update(state="done", summary=summary, elapsed=elapsed)
            if self.journal is not None:
                self.journal.append_done(rid, result, summary, elapsed)
        event = self._terminal_events.pop(rid, None)
        if event is not None:
            event.set()
        assert self._kick is not None
        self._kick.set()
        if self._draining and not self._outstanding():
            assert self._stopped is not None
            self._stopped.set()

    def _outstanding(self) -> bool:
        return bool(self.queue) or self.pool.active() > 0

    # --- protocol handlers -------------------------------------------------------
    def _public_status(self, rid: str) -> Dict[str, Any]:
        status = self._status[rid]
        public = {k: v for k, v in status.items()
                  if k not in {"params", "overrides"} and v is not None}
        public["id"] = rid
        return public

    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise ServiceError("service is shutting down", code=503)
        params = message["params"]
        self._seq += 1
        rid = f"r{self._seq:06d}"
        try:
            self.queue.offer(rid, params)
        except ServiceError:
            self._seq -= 1
            self.metrics.inc("service.shed")
            raise
        self.metrics.inc("service.accepted")
        if self.journal is not None:
            self.journal.append_request(rid, self._seq, params)
        self._status[rid] = {"state": "queued", "params": params}
        assert self._kick is not None
        self._kick.set()
        return protocol.ok_response(
            id=rid, state="queued", depth=self.queue.depth,
            degrade=self.queue.degrade_level())

    async def _handle_wait(self, message: Dict[str, Any]) -> Dict[str, Any]:
        rid = message["id"]
        if rid not in self._status:
            raise ServiceError(f"unknown request id {rid!r}", code=404)
        timeout = message.get("timeout")
        if self._status[rid]["state"] in {"done", "failed", "quarantined"}:
            return protocol.ok_response(**self._public_status(rid))
        event = self._terminal_events.setdefault(rid, asyncio.Event())
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"request {rid} not finished within {timeout}s", code=408)
        return protocol.ok_response(**self._public_status(rid))

    def _handle_stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for status in self._status.values():
            states[status["state"]] = states.get(status["state"], 0) + 1
        return protocol.ok_response(
            uptime=time.monotonic() - self._started_at,
            queue_depth=self.queue.depth,
            queue_order=self.queue.peek_order(),
            inflight=self.pool.active(),
            pressure=self.queue.pressure(),
            degrade=self.queue.degrade_level(),
            policy=self.queue.policy.name,
            recovered=self.recovered,
            states=states,
            metrics=self.metrics.snapshot(),
        )

    def request_shutdown(self, mode: str = "graceful") -> None:
        """Begin shutdown: stop admitting; ``now`` abandons the backlog.

        Safe to call from a signal handler on the event-loop thread.
        Graceful mode finishes everything queued and in flight first
        (the last :meth:`_finish` sets the stop event).
        """
        self._draining = True
        if self._stopped is not None and (
                mode == "now" or not self._outstanding()):
            self._stopped.set()

    async def _handle_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        mode = message.get("mode", "graceful")
        draining = self._outstanding() and mode != "now"
        self.request_shutdown(mode)
        return protocol.ok_response(
            state="draining" if draining else "stopping")

    async def _handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        message = protocol.validate_request(message)
        op = message["op"]
        if op == "ping":
            return protocol.ok_response(
                pong=True, version=protocol.PROTOCOL_VERSION,
                pid=os.getpid())
        if op == "submit":
            return self._handle_submit(message)
        if op == "status":
            rid = message["id"]
            if rid not in self._status:
                raise ServiceError(f"unknown request id {rid!r}", code=404)
            return protocol.ok_response(**self._public_status(rid))
        if op == "wait":
            return await self._handle_wait(message)
        if op == "stats":
            return self._handle_stats()
        return await self._handle_shutdown(message)  # op == "shutdown"

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode_message(line)
                    response = await self._handle_message(message)
                except ServiceError as exc:
                    response = protocol.error_response(exc)
                except Exception as exc:  # defensive: never drop the line
                    response = protocol.error_response(str(exc), code=500)
                writer.write(protocol.encode_message(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:  # incl. CancelledError at shutdown
                pass
