"""The simulation service daemon: socket server + dispatcher + recovery.

:class:`ServiceDaemon` ties the pieces together around an asyncio event
loop listening on a Unix socket and, optionally, a TCP port:

* connections speak the JSON-lines protocol (:mod:`.protocol`); every
  request is validated, admitted through the :class:`.AdmissionQueue`
  (shedding with 429 past high water), journaled, and dispatched to the
  :class:`.ServicePool` when a worker slot frees up.  The TCP listener
  additionally sniffs HTTP request lines and answers one-shot HTTP/1.1
  exchanges, so ``curl`` can drive the service;
* **connection hardening**: at most ``max_connections`` concurrent
  connections (excess sheds with 503 before reading a byte), per-read
  and per-write deadlines of ``io_deadline`` seconds (a slow-loris
  client is disconnected, never blocks the loop), a hard per-line byte
  ceiling (overlong frames answer 400 and close — framing cannot be
  resynchronized), and torn final frames (EOF with no newline) are
  still parsed and answered;
* **idempotent resubmission**: a submit carrying an ``idempotency_key``
  the daemon has seen returns the original request's status (flagged
  ``deduped``) instead of running twice.  The key→id map is rebuilt
  from the journal on recovery, so dedup survives a SIGKILL — this is
  the primitive the shard router builds exactly-once on;
* the **degradation ladder** engages at dispatch time: queue pressure
  ≥ 50% halves the GA generation budget and arms a solver watchdog,
  ≥ 85% quarters it and tightens the watchdog — the service keeps
  answering under load, trading fidelity the way §3.2.2's window-size
  knob trades solve quality for tractability.  Degradations are recorded
  in the journal's ``running`` records and the response's ``degrade``
  field, never silently;
* **recovery**: on startup with an existing journal the daemon replays
  it (:meth:`.RequestJournal.load` — which also audits exactly-once),
  serves finished results from the journal, and re-enqueues every
  accepted-but-unfinished request, exempt from admission control.  A
  SIGKILL'd daemon therefore resumes its backlog with no client action,
  and a result computed before the kill is never recomputed;
* **shared-memory traces** (``shm_traces``): before dispatching, the
  daemon publishes the request's trace columns into a checksummed
  ``multiprocessing.shared_memory`` segment (:mod:`.shm`) and passes the
  segment name to workers, which attach zero-copy instead of
  regenerating.  Segments are unlinked on every exit path — the signal
  handlers funnel through :meth:`serve`'s ``finally``.

The daemon is deliberately single-loop: all state mutation happens on
the event loop thread, except the pool's ``on_dispatch`` journal append
(crash-safe by the journal's atomic line writes).
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import PoisonRequestError, ServiceError
from ..telemetry import MetricsRegistry
from . import protocol
from .journal import RequestJournal
from .pool import PoolConfig, ServicePool
from .queue import AdmissionQueue, make_policy
from .shm import TracePublisher
from .tasks import result_summary

#: (generations divisor, watchdog seconds) per degradation level.
DEGRADE_LADDER = {1: (2, 5.0), 2: (4, 1.0)}

#: Request states that will never change again.
TERMINAL_STATES = frozenset({"done", "failed", "quarantined", "cancelled"})


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a daemon."""

    socket_path: str
    journal_path: Optional[str] = None
    workers: int = 2
    high_water: int = 16
    policy: str = "fcfs"
    deadline: Optional[float] = None
    retries: int = 2
    quarantine_after: int = 2
    allow_chaos: bool = False
    degrade: bool = True
    poll_interval: float = 0.02
    #: also listen on TCP ``host:port`` ("127.0.0.1:0" picks a free port).
    tcp: Optional[str] = None
    #: concurrent-connection ceiling across both listeners.
    max_connections: int = 128
    #: per-read/per-write deadline (seconds) on every connection.
    io_deadline: float = 30.0
    #: shard identity "i/N" echoed by ping/stats (set by ``serve --shard``).
    shard: Optional[str] = None
    #: publish traces to shared memory and hand workers the segment name.
    shm_traces: bool = False


class ServiceDaemon:
    """One long-lived simulation service instance."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.journal = (RequestJournal(config.journal_path)
                        if config.journal_path else None)
        self.queue = AdmissionQueue(
            make_policy(config.policy), high_water=config.high_water)
        self.pool = ServicePool(
            PoolConfig(
                workers=config.workers,
                deadline=config.deadline,
                retries=config.retries,
                quarantine_after=config.quarantine_after,
                allow_chaos=config.allow_chaos,
                poll_interval=config.poll_interval,
            ),
            metrics=self.metrics,
            on_dispatch=self._on_dispatch,
        )
        self.publisher = (TracePublisher(config.socket_path, self.metrics)
                          if config.shm_traces else None)
        #: request id → {"state", "params", and terminal details}.
        self._status: Dict[str, Dict[str, Any]] = {}
        #: idempotency key → request id (journal-backed, rebuilt on boot).
        self._keys: Dict[str, str] = {}
        #: (workload, scale) → future resolving to a segment name.
        self._segments: Dict[tuple, "asyncio.Future"] = {}
        self._terminal_events: Dict[str, asyncio.Event] = {}
        self._seq = 0
        self._connections = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._kick: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()
        self.recovered = 0
        #: actual (host, port) of the TCP listener once bound.
        self.tcp_address: Optional[tuple] = None

    # --- lifecycle ---------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: serve old results, re-enqueue unfinished work."""
        if self.journal is None or not self.journal.exists():
            return
        view = self.journal.load()
        self._seq = view.seq_max
        for rid, record in view.requests.items():
            key = (record["params"] or {}).get("idempotency_key")
            if key:
                self._keys[key] = rid
            terminal = view.terminal.get(rid)
            if terminal is None:
                self._status[rid] = {"state": "queued",
                                     "params": record["params"],
                                     "recovered": True}
                self.queue.offer(rid, record["params"], exempt=True)
                self.recovered += 1
                self.metrics.inc("service.recovered")
                continue
            kind = terminal["kind"].replace("service-", "")
            entry: Dict[str, Any] = {"state": kind,
                                     "params": record["params"]}
            if kind == "done":
                entry["summary"] = terminal.get("summary")
                entry["elapsed"] = terminal.get("elapsed")
            else:
                entry["error"] = terminal.get("error")
                entry["code"] = terminal.get("code", 500)
            self._status[rid] = entry
        if view.dropped_tail:
            # Replay skipped a torn final record; cut it off before we
            # append again, or the damage would end up mid-file where
            # later loads must treat it as real corruption.
            self.journal.repair()
            self.metrics.inc("service.journal_tail_dropped")

    @staticmethod
    def _parse_tcp(spec: str) -> tuple:
        host, _, port = spec.rpartition(":")
        host = host.strip("[]") or "127.0.0.1"
        try:
            return host, int(port)
        except ValueError:
            raise ServiceError(
                f"invalid tcp listen address {spec!r}; want host:port",
                code=400) from None

    async def serve(self, ready: Optional[asyncio.Event] = None) -> None:
        """Run the daemon until a shutdown request (or cancellation)."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._kick = asyncio.Event()
        self._recover()
        self.pool.start()
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)  # stale socket from a kill
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.config.socket_path,
            limit=protocol.MAX_LINE_BYTES)
        tcp_server = None
        if self.config.tcp:
            host, port = self._parse_tcp(self.config.tcp)
            tcp_server = await asyncio.start_server(
                self._handle_connection, host=host, port=port,
                limit=protocol.MAX_LINE_BYTES)
            self.tcp_address = tcp_server.sockets[0].getsockname()[:2]
        dispatcher = loop.create_task(self._dispatch_loop())
        if ready is not None:
            ready.set()
        try:
            await self._stopped.wait()
        finally:
            dispatcher.cancel()
            server.close()
            await server.wait_closed()
            if tcp_server is not None:
                tcp_server.close()
                await tcp_server.wait_closed()
            self.pool.shutdown(wait=False)
            if self.publisher is not None:
                # Guaranteed unlink: SIGTERM/SIGINT funnel through
                # request_shutdown → _stopped → this finally block.
                self.publisher.close()
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)

    # --- dispatch ----------------------------------------------------------------
    def _on_dispatch(self, request_id: str, attempt: int) -> None:
        """Pool callback (supervisor thread): journal each dispatch."""
        status = self._status.get(request_id, {})
        if self.journal is not None:
            self.journal.append_running(
                request_id, attempt, degrade=status.get("degrade", 0),
                overrides=status.get("overrides"))

    def _degrade(self, params: Dict[str, Any]) -> tuple:
        """Apply the pressure ladder; returns (params, level, overrides)."""
        level = self.queue.degrade_level() if self.config.degrade else 0
        if level == 0:
            return params, 0, {}
        divisor, watchdog = DEGRADE_LADDER[min(level, 2)]
        overrides: Dict[str, Any] = {}
        effective = dict(params)
        from ..experiments.config import get_scale  # local: cheap, cycle-free
        base = params.get("generations") or get_scale(params.get("scale")).generations
        capped = max(1, base // divisor)
        if capped < base:
            effective["generations"] = overrides["generations"] = capped
        if params.get("watchdog_budget") is None:
            effective["watchdog_budget"] = overrides["watchdog_budget"] = watchdog
        return effective, level, overrides

    async def _ensure_segment(self, params: Dict[str, Any]) -> Optional[str]:
        """Publish (once) and name the shm segment for a request's trace.

        Publishing generates the trace, which is exactly the cold path
        shm exists to amortize — so it runs in an executor thread, cached
        per (workload, scale) as a future that concurrent dispatches of
        the same trace all await.  Failure is non-fatal: the request
        dispatches without a segment and workers regenerate.
        """
        assert self.publisher is not None
        key = (params["workload"], params.get("scale"))
        future = self._segments.get(key)
        if future is None:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                None, self.publisher.ensure, key[0], key[1])
            self._segments[key] = future
        try:
            return await future
        except Exception:
            self._segments.pop(key, None)
            self.metrics.inc("service.shm_publish_failed")
            return None

    async def _dispatch_loop(self) -> None:
        assert self._kick is not None
        while True:
            while self.queue and self.pool.active() < self.config.workers:
                rid, params = self.queue.take()
                effective, level, overrides = self._degrade(params)
                if self.publisher is not None:
                    name = await self._ensure_segment(effective)
                    if name is not None:
                        effective = dict(effective)
                        effective["shm_trace"] = name
                status = self._status[rid]
                status.update(state="running", degrade=level,
                              overrides=overrides or None)
                if level:
                    self.metrics.inc("service.degraded")
                future = self.pool.submit(rid, effective)
                wrapped = asyncio.wrap_future(future)
                asyncio.get_running_loop().create_task(
                    self._finish(rid, wrapped))
            self.metrics.set_gauge("service.queue_depth", self.queue.depth)
            self._kick.clear()
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass

    async def _finish(self, rid: str, wrapped: "asyncio.Future") -> None:
        """Await one request's outcome; journal its terminal record."""
        status = self._status[rid]
        started = time.monotonic()
        try:
            result = await wrapped
        except PoisonRequestError as exc:
            status.update(state="quarantined", error=str(exc), code=exc.code,
                          crashes=exc.crashes)
            if self.journal is not None:
                self.journal.append_quarantined(rid, str(exc), exc.crashes)
        except ServiceError as exc:
            if exc.code == 409:
                # The pool honoured a cancel(): terminal, charges nothing.
                status.update(state="cancelled", error=str(exc), code=409)
                if self.journal is not None:
                    self.journal.append_cancelled(rid, str(exc))
            else:
                attempts = getattr(exc, "attempts", 0)
                status.update(state="failed", error=str(exc), code=exc.code,
                              attempts=attempts)
                if self.journal is not None:
                    self.journal.append_failed(rid, str(exc), exc.code, attempts)
        except Exception as exc:  # pragma: no cover - pool always wraps
            status.update(state="failed", error=str(exc), code=500)
            if self.journal is not None:
                self.journal.append_failed(rid, str(exc), 500, 0)
        else:
            summary = result_summary(result)
            elapsed = time.monotonic() - started
            status.update(state="done", summary=summary, elapsed=elapsed)
            if self.journal is not None:
                self.journal.append_done(rid, result, summary, elapsed)
        event = self._terminal_events.pop(rid, None)
        if event is not None:
            event.set()
        assert self._kick is not None
        self._kick.set()
        if self._draining and not self._outstanding():
            assert self._stopped is not None
            self._stopped.set()

    def _outstanding(self) -> bool:
        return bool(self.queue) or self.pool.active() > 0

    # --- protocol handlers -------------------------------------------------------
    def _public_status(self, rid: str) -> Dict[str, Any]:
        status = self._status[rid]
        public = {k: v for k, v in status.items()
                  if k not in {"params", "overrides"} and v is not None}
        public["id"] = rid
        return public

    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise ServiceError("service is shutting down", code=503)
        params = message["params"]
        key = params.get("idempotency_key")
        if key is not None:
            existing = self._keys.get(key)
            if existing is not None:
                # Exactly-once under resend: the retry (or a failed-over
                # router) gets the original request, never a second run.
                self.metrics.inc("service.deduped")
                response = protocol.ok_response(**self._public_status(existing))
                response["deduped"] = True
                return response
        self._seq += 1
        rid = f"r{self._seq:06d}"
        try:
            self.queue.offer(rid, params)
        except ServiceError:
            self._seq -= 1
            self.metrics.inc("service.shed")
            raise
        self.metrics.inc("service.accepted")
        if self.journal is not None:
            self.journal.append_request(rid, self._seq, params)
        self._status[rid] = {"state": "queued", "params": params}
        if key is not None:
            self._keys[key] = rid
        assert self._kick is not None
        self._kick.set()
        return protocol.ok_response(
            id=rid, state="queued", depth=self.queue.depth,
            degrade=self.queue.degrade_level())

    async def _handle_wait(self, message: Dict[str, Any]) -> Dict[str, Any]:
        rid = message["id"]
        if rid not in self._status:
            raise ServiceError(f"unknown request id {rid!r}", code=404)
        timeout = message.get("timeout")
        if self._status[rid]["state"] in TERMINAL_STATES:
            return protocol.ok_response(**self._public_status(rid))
        event = self._terminal_events.setdefault(rid, asyncio.Event())
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"request {rid} not finished within {timeout}s", code=408)
        return protocol.ok_response(**self._public_status(rid))

    def _handle_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Withdraw a request: terminal for queued, best-effort in flight.

        Cancelling an already-terminal request is a no-op returning its
        status — so shard reconciliation can blindly cancel work that was
        failed over to a peer, without re-checking state first.
        """
        rid = message["id"]
        status = self._status.get(rid)
        if status is None:
            raise ServiceError(f"unknown request id {rid!r}", code=404)
        reason = message.get("reason") or "cancelled by client"
        if status["state"] in TERMINAL_STATES:
            return protocol.ok_response(**self._public_status(rid))
        if status["state"] == "queued" and self.queue.remove(rid) is not None:
            status.update(state="cancelled", error=str(reason), code=409)
            self.metrics.inc("service.cancelled")
            if self.journal is not None:
                self.journal.append_cancelled(rid, str(reason))
            event = self._terminal_events.pop(rid, None)
            if event is not None:
                event.set()
            return protocol.ok_response(**self._public_status(rid))
        # In flight (or racing dispatch): ask the pool; _finish journals
        # the terminal record if the cancel wins the race.
        self.pool.cancel(rid)
        return protocol.ok_response(id=rid, state="cancelling")

    def _handle_status_by_key(self, message: Dict[str, Any]) -> Dict[str, Any]:
        rid = self._keys.get(message["key"])
        if rid is None:
            raise ServiceError(
                f"no request with idempotency key {message['key']!r}",
                code=404)
        response = protocol.ok_response(**self._public_status(rid))
        response["key"] = message["key"]
        return response

    def _identity(self) -> Dict[str, Any]:
        identity: Dict[str, Any] = {}
        if self.config.shard is not None:
            identity["shard"] = self.config.shard
        if self.tcp_address is not None:
            identity["tcp"] = list(self.tcp_address)
        return identity

    def _handle_stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for status in self._status.values():
            states[status["state"]] = states.get(status["state"], 0) + 1
        return protocol.ok_response(
            uptime=time.monotonic() - self._started_at,
            queue_depth=self.queue.depth,
            queue_order=self.queue.peek_order(),
            inflight=self.pool.active(),
            pressure=self.queue.pressure(),
            degrade=self.queue.degrade_level(),
            policy=self.queue.policy.name,
            recovered=self.recovered,
            connections=self._connections,
            shm_segments=(self.publisher.names()
                          if self.publisher is not None else []),
            states=states,
            metrics=self.metrics.snapshot(),
            **self._identity(),
        )

    def request_shutdown(self, mode: str = "graceful") -> None:
        """Begin shutdown: stop admitting; ``now`` abandons the backlog.

        Safe to call from a signal handler on the event-loop thread.
        Graceful mode finishes everything queued and in flight first
        (the last :meth:`_finish` sets the stop event).
        """
        self._draining = True
        if self._stopped is not None and (
                mode == "now" or not self._outstanding()):
            self._stopped.set()

    async def _handle_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        mode = message.get("mode", "graceful")
        draining = self._outstanding() and mode != "now"
        self.request_shutdown(mode)
        return protocol.ok_response(
            state="draining" if draining else "stopping")

    async def _handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        message = protocol.validate_request(message)
        op = message["op"]
        if op == "ping":
            return protocol.ok_response(
                pong=True, version=protocol.PROTOCOL_VERSION,
                pid=os.getpid(), **self._identity())
        if op == "submit":
            return self._handle_submit(message)
        if op == "status":
            if message.get("key") is not None:
                return self._handle_status_by_key(message)
            rid = message["id"]
            if rid not in self._status:
                raise ServiceError(f"unknown request id {rid!r}", code=404)
            return protocol.ok_response(**self._public_status(rid))
        if op == "wait":
            return await self._handle_wait(message)
        if op == "cancel":
            return self._handle_cancel(message)
        if op == "stats":
            return self._handle_stats()
        return await self._handle_shutdown(message)  # op == "shutdown"

    # --- connection handling -----------------------------------------------------
    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One deadline-bounded line read (the slow-loris guard)."""
        return await asyncio.wait_for(
            reader.readline(), timeout=self.config.io_deadline)

    async def _respond(self, writer: asyncio.StreamWriter,
                       payload: bytes) -> bool:
        """Deadline-bounded write; False when the client stalled or reset."""
        writer.write(payload)
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.config.io_deadline)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            return False
        return True

    async def _handle_http(self, first_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.1 exchange (the listener sniffed a method)."""
        try:
            head_bytes = len(first_line)
            headers: Dict[str, str] = {}
            while True:
                line = await self._read_line(reader)
                head_bytes += len(line)
                if head_bytes > protocol.MAX_HTTP_HEAD_BYTES:
                    raise ServiceError("HTTP request head too large", code=400)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            parts = first_line.decode("latin-1").split()
            if len(parts) < 2:
                raise ServiceError("malformed HTTP request line", code=400)
            method, target = parts[0], parts[1]
            length = int(headers.get("content-length") or 0)
            if length > protocol.MAX_LINE_BYTES:
                raise ServiceError("HTTP body exceeds the line limit", code=400)
            body = b""
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.config.io_deadline)
            message = protocol.http_request_to_message(method, target, body)
            response = await self._handle_message(message)
        except ServiceError as exc:
            response = protocol.error_response(exc)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionResetError, ValueError):
            return  # torn or stalled mid-request: nothing to answer
        except Exception as exc:  # defensive: never drop the exchange
            response = protocol.error_response(str(exc), code=500)
        await self._respond(writer, protocol.encode_http_response(response))

    async def _serve_lines(self, first_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """JSON-lines request loop (Unix socket, or TCP without HTTP)."""
        line: Optional[bytes] = first_line
        while True:
            if line is None:
                try:
                    line = await self._read_line(reader)
                except (asyncio.TimeoutError, ConnectionResetError,
                        asyncio.IncompleteReadError):
                    break  # stalled (slow-loris) or reset: disconnect
                except ValueError:
                    # Line past the StreamReader limit: answer 400 and
                    # close — framing cannot be recovered past this.
                    await self._respond(writer, protocol.encode_message(
                        protocol.error_response(
                            "message exceeds the line limit", code=400)))
                    break
            if not line:
                break
            # A torn final frame (EOF with no newline) still parses:
            # the bytes are all there, only the terminator is missing.
            try:
                message = protocol.decode_message(line)
                response = await self._handle_message(message)
            except ServiceError as exc:
                response = protocol.error_response(exc)
            except Exception as exc:  # defensive: never drop the line
                response = protocol.error_response(str(exc), code=500)
            if not await self._respond(writer, protocol.encode_message(response)):
                break
            line = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._connections >= self.config.max_connections:
            # Shed before reading a byte; one honest 503, then close.
            self.metrics.inc("service.connections_shed")
            try:
                writer.write(protocol.encode_message(protocol.error_response(
                    "connection limit reached", code=503)))
                await asyncio.wait_for(writer.drain(), timeout=1.0)
            except Exception:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                pass
            return
        self._connections += 1
        self.metrics.inc("service.connections")
        try:
            try:
                first = await self._read_line(reader)
            except ValueError:
                # First line already past the StreamReader limit: the 400
                # must come from here — _serve_lines never sees this line.
                await self._respond(writer, protocol.encode_message(
                    protocol.error_response(
                        "message exceeds the line limit", code=400)))
                first = b""
            except (asyncio.TimeoutError, ConnectionResetError,
                    asyncio.IncompleteReadError):
                first = b""
            if first:
                if protocol.looks_like_http(first):
                    await self._handle_http(first, reader, writer)
                else:
                    await self._serve_lines(first, reader, writer)
        except asyncio.CancelledError:
            pass  # event loop tearing down mid-read; just close below
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:  # incl. CancelledError at shutdown
                pass
