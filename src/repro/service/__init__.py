"""Crash-tolerant simulation service.

A long-lived daemon (``repro serve``) accepts simulation requests over a
local Unix socket speaking a JSON-lines protocol (:mod:`.protocol`), and
runs them through a hardened execution core:

* **admission control** (:mod:`.queue`) — a bounded queue ordered by the
  repo's own base-scheduler priority policies (FCFS/WFP), shedding work
  with a 429-style error past a high-water mark and degrading gracefully
  (smaller GA budgets, tighter watchdogs) as pressure builds;
* **a self-healing worker pool** (:mod:`.pool`) — per-request deadlines,
  heartbeat-based hang detection, SIGKILL of wedged workers, pool
  rebuilds that requeue crash victims for free, exponential backoff with
  deterministic jitter, and quarantine of poison requests that keep
  crashing their workers;
* **a durable request lifecycle** (:mod:`.journal`) — every request is
  journaled ``accepted → running → done/failed/quarantined/cancelled``
  on the crash-safe JSONL substrate shared with the results ledger, so a
  SIGKILL'd daemon restarts, replays the journal, and resumes exactly
  the in-flight work, recording each result exactly once.

Beyond the single socket, the service scales out:

* the daemon also listens on **TCP** (with a minimal HTTP/1.1 adapter)
  behind per-connection deadlines and inflight limits;
* the **client** (:mod:`.client`) retries transient transport failures
  with full-jitter backoff behind a per-endpoint circuit breaker, and
  optionally hedges idempotent reads;
* a **shard router** (:mod:`.shards`) consistent-hashes idempotency
  keys across N daemons, down-marks dead shards, fails over provably
  unsent work, and reconciles ambiguous work on recovery — exactly
  once, end to end;
* immutable trace columns are published **zero-copy** to checksummed
  shared-memory segments (:mod:`.shm`) that workers attach instead of
  regenerating.

``tools/chaos.py`` is the deterministic chaos harness that proves those
properties; ``docs/service.md`` documents the protocol and the failure
semantics table.
"""

from .client import (
    CircuitBreaker,
    ClientRetryPolicy,
    NO_RETRY,
    ServiceClient,
    parse_endpoint,
)
from .daemon import ServiceConfig, ServiceDaemon
from .journal import JOURNAL_VERSION, JournalView, RequestJournal
from .pool import PoolConfig, ServicePool
from .protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from .queue import AdmissionQueue
from .shards import HashRing, Routed, ShardRouter
from .shm import TracePublisher, attach_trace, publish_trace, unlink_segment

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "ClientRetryPolicy",
    "HashRing",
    "JOURNAL_VERSION",
    "JournalView",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "PoolConfig",
    "RequestJournal",
    "Routed",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServicePool",
    "ShardRouter",
    "TracePublisher",
    "attach_trace",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_endpoint",
    "publish_trace",
    "unlink_segment",
    "validate_request",
]
