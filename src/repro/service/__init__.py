"""Crash-tolerant simulation service.

A long-lived daemon (``repro serve``) accepts simulation requests over a
local Unix socket speaking a JSON-lines protocol (:mod:`.protocol`), and
runs them through a hardened execution core:

* **admission control** (:mod:`.queue`) — a bounded queue ordered by the
  repo's own base-scheduler priority policies (FCFS/WFP), shedding work
  with a 429-style error past a high-water mark and degrading gracefully
  (smaller GA budgets, tighter watchdogs) as pressure builds;
* **a self-healing worker pool** (:mod:`.pool`) — per-request deadlines,
  heartbeat-based hang detection, SIGKILL of wedged workers, pool
  rebuilds that requeue crash victims for free, exponential backoff with
  deterministic jitter, and quarantine of poison requests that keep
  crashing their workers;
* **a durable request lifecycle** (:mod:`.journal`) — every request is
  journaled ``accepted → running → done/failed/quarantined`` on the
  crash-safe JSONL substrate shared with the results ledger, so a
  SIGKILL'd daemon restarts, replays the journal, and resumes exactly
  the in-flight work, recording each result exactly once.

``tools/chaos.py`` is the deterministic chaos harness that proves those
properties; ``docs/service.md`` documents the protocol and the failure
semantics table.
"""

from .client import ServiceClient
from .daemon import ServiceConfig, ServiceDaemon
from .journal import JOURNAL_VERSION, JournalView, RequestJournal
from .pool import PoolConfig, ServicePool
from .protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from .queue import AdmissionQueue

__all__ = [
    "AdmissionQueue",
    "JOURNAL_VERSION",
    "JournalView",
    "PROTOCOL_VERSION",
    "PoolConfig",
    "RequestJournal",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServicePool",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "validate_request",
]
