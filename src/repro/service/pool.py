"""Self-healing worker pool for the simulation service.

A :class:`ServicePool` owns a :class:`~concurrent.futures.ProcessPoolExecutor`
plus a supervisor thread that keeps it healthy no matter what the
requests do to it:

* **heartbeat claims** — each request's first act on a worker is to put
  a ``(request_id, pid, t)`` claim on a shared queue
  (:func:`repro.service.tasks.pool_initializer`).  The claim tells the
  supervisor exactly which pid owns which request, arming the
  per-request **deadline**: a claimed request still unfinished after
  ``deadline`` seconds has a wedged worker, and the supervisor SIGKILLs
  that pid — turning an invisible hang into an observable pool break.
* **pool breaks never charge the retry budget** — a dead worker fails
  every future in flight (``BrokenProcessPool``), and at that instant
  the crasher is indistinguishable from its co-resident victims.  The
  pool applies the same suspect-isolation protocol as
  :func:`repro.parallel.parallel_map`: everyone in flight is requeued
  for free and marked *suspect*; suspects are re-dispatched at most one
  at a time; a clean completion exonerates, while a break during an
  isolated run convicts.  Convictions count toward **quarantine**
  (``quarantine_after``), terminating poison requests with
  :class:`~repro.errors.PoisonRequestError` instead of letting them
  break the pool forever.
* **backoff with deterministic jitter** — re-dispatches are damped by
  the shared :class:`~repro.resilience.BackoffPolicy`; the jitter term
  is a hash of ``(request_id, attempt)``, not a live RNG, so a chaos
  run's retry timeline is reproducible run over run.

Failure taxonomy (also in ``docs/service.md``): an *exception* or a
*deadline kill* charges one attempt of the ``retries`` budget; a *crash*
charges the quarantine budget instead.  Both budgets are per-request, so
one pathological request can never starve its neighbours.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import PoisonRequestError, ServiceError
from ..parallel.pool import DEFAULT_POOL_BACKOFF, _shutdown
from ..resilience import BackoffPolicy
from ..telemetry import MetricsRegistry
from .tasks import execute_request, pool_initializer


@dataclass
class PoolConfig:
    """Supervision knobs for the service worker pool."""

    workers: int = 2
    #: seconds a *claimed* request may run before its worker is declared
    #: wedged and SIGKILLed; None disables hang detection.
    deadline: Optional[float] = None
    #: extra attempts after the first for raising or timed-out requests.
    retries: int = 2
    #: isolated-crash convictions before a request is quarantined.
    quarantine_after: int = 2
    backoff: BackoffPolicy = field(default_factory=lambda: DEFAULT_POOL_BACKOFF)
    #: jitter fraction applied to each backoff delay (deterministic,
    #: hashed from request id + attempt — never a live RNG).
    jitter: float = 0.25
    #: supervisor tick period (completion/heartbeat/deadline polling).
    poll_interval: float = 0.02
    #: honour chaos directives carried by requests (tests/harness only).
    allow_chaos: bool = False


def deterministic_jitter(request_id: str, attempt: int) -> float:
    """A stable uniform in [0, 1) keyed by (request, attempt)."""
    digest = hashlib.sha256(f"{request_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _worker_context():
    """A multiprocessing context whose workers inherit no daemon fds.

    A plain ``fork()``-ed worker inherits every open file descriptor,
    including *accepted client connections*: the daemon closing its
    copy of a socket then never delivers EOF, because the worker's
    inherited copy keeps the connection established — a client the io
    deadline "disconnected" observes a connection held open for the
    worker's lifetime.  Workers are (re)spawned lazily and after
    crash-replacement, so this races with whatever connections happen
    to be open at that moment.

    The *forkserver* start method forks workers from a clean server
    process instead, started (see :meth:`ServicePool.start`) before the
    daemon opens any listener.  Preloading the task module keeps a
    respawn near ``fork()`` cost.
    """
    try:
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context()
    ctx.set_forkserver_preload(["repro.service.tasks"])
    return ctx


def _ensure_forkserver_running(ctx) -> None:
    """Start the fork server now, while no connections exist yet."""
    if ctx.get_start_method() != "forkserver":  # pragma: no cover
        return
    from multiprocessing import forkserver

    forkserver.ensure_running()


@dataclass
class _RequestState:
    request_id: str
    params: Dict[str, Any]
    future: Future               #: resolved exactly once with the outcome
    attempts: int = 0            #: charged dispatches (retry budget)
    dispatches: int = 0          #: total dispatches, never refunded — the
                                 #: attempt ordinal workers and the journal
                                 #: see (chaos directives key off it, so a
                                 #: free crash requeue still advances it)
    crashes: int = 0             #: isolated-crash convictions (quarantine budget)
    suspect: bool = False        #: was in flight during an unattributed break
    hung: bool = False           #: its worker was SIGKILLed by the deadline
    cancelled: bool = False      #: withdrawal requested; resolve 409, not retry
    ready_at: float = 0.0        #: earliest next dispatch (monotonic)
    inner: Optional[Future] = None
    claim_pid: Optional[int] = None
    claim_t: Optional[float] = None
    started_t: Optional[float] = None


class ServicePool:
    """Supervised, self-healing executor for service requests."""

    def __init__(
        self,
        config: PoolConfig,
        metrics: Optional[MetricsRegistry] = None,
        on_dispatch: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: called (request_id, attempt) from the supervisor thread right
        #: before each dispatch — the daemon journals ``running`` here.
        self.on_dispatch = on_dispatch
        self._ctx = _worker_context()
        self._heartbeat = self._ctx.SimpleQueue()
        self._intake: deque = deque()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._drain = threading.Event()  #: finish queued work, then stop
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        # Supervisor-owned state (touched only by the supervisor thread
        # after start(), except for the active() snapshot below).
        self._waiting: List[_RequestState] = []
        self._inflight: Dict[str, _RequestState] = {}
        self._active = 0  #: lock-protected mirror for active()
        self._cancels: set = set()  #: lock-protected cancel requests

    # --- public API (any thread) -------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        _ensure_forkserver_running(self._ctx)
        self._executor = self._make_executor()
        self._thread = threading.Thread(
            target=self._supervise, name="service-pool-supervisor", daemon=True)
        self._thread.start()

    def submit(self, request_id: str, params: Dict[str, Any]) -> Future:
        """Queue a request for execution; resolves with its outcome."""
        if self._stop.is_set() or self._drain.is_set():
            raise ServiceError("pool is shutting down", code=503)
        future: Future = Future()
        state = _RequestState(request_id, params, future)
        with self._lock:
            self._intake.append(state)
            self._active += 1
        return future

    def active(self) -> int:
        """Requests inside the pool (queued, retrying, or in flight)."""
        with self._lock:
            return self._active

    def cancel(self, request_id: str) -> None:
        """Withdraw a request from the pool (any thread; best-effort).

        Waiting/backing-off requests resolve with a 409
        :class:`ServiceError` at the next supervisor tick; an in-flight
        request has its claimed worker SIGKILLed and resolves 409 from
        the break handler instead of being requeued.  A request that
        completes before the tick keeps its result — cancellation can
        lose to the race, never corrupt it.
        """
        with self._lock:
            self._cancels.add(request_id)

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool; ``wait`` drains outstanding work first."""
        if self._thread is None:
            return
        if wait:
            self._drain.set()
            self._thread.join(timeout)
        self._stop.set()
        self._thread.join(5.0)

    # --- supervisor internals (supervisor thread only) ---------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=self._ctx,
            initializer=pool_initializer,
            initargs=(self._heartbeat,),
        )

    def _decrement_active(self) -> None:
        with self._lock:
            self._active -= 1

    def _delay(self, state: _RequestState, attempt: int) -> float:
        base = self.config.backoff.delay(max(attempt, 1))
        return base * (1.0 + self.config.jitter
                       * deterministic_jitter(state.request_id, attempt))

    def _dispatch(self, now: float) -> None:
        executor = self._executor
        assert executor is not None
        suspect_flying = any(s.suspect for s in self._inflight.values())
        held: List[_RequestState] = []
        ready = [s for s in self._waiting if s.ready_at <= now]
        for state in ready:
            if len(self._inflight) >= self.config.workers:
                break
            if state.suspect and suspect_flying:
                held.append(state)
                continue
            self._waiting.remove(state)
            state.attempts += 1
            state.dispatches += 1
            state.hung = False
            state.claim_pid = state.claim_t = None
            state.started_t = time.monotonic()
            if self.on_dispatch is not None:
                try:
                    self.on_dispatch(state.request_id, state.dispatches)
                except Exception:  # pragma: no cover - journal I/O failure
                    pass
            try:
                state.inner = executor.submit(
                    execute_request, state.request_id, state.params,
                    state.dispatches, self.config.allow_chaos)
            except BrokenProcessPool:
                # A worker died while the pool sat idle; undo this
                # dispatch and let the break handler rebuild first.
                state.attempts -= 1
                state.dispatches -= 1
                state.ready_at = now
                self._waiting.append(state)
                self._handle_break()
                return
            self._inflight[state.request_id] = state
            if state.suspect:
                suspect_flying = True

    def _drain_heartbeats(self) -> None:
        try:
            while not self._heartbeat.empty():
                request_id, pid, t = self._heartbeat.get()
                state = self._inflight.get(request_id)
                if state is not None:
                    state.claim_pid, state.claim_t = pid, t
        except Exception:  # pragma: no cover - queue torn by a worker kill
            pass

    def _complete(self, state: _RequestState, value: Any) -> None:
        state.suspect = False
        if state.started_t is not None:
            self.metrics.observe(
                "service.run_seconds", time.monotonic() - state.started_t)
        self.metrics.inc("service.completed")
        self._decrement_active()
        state.future.set_result(value)

    def _fail(self, state: _RequestState, error: ServiceError) -> None:
        error.attempts = state.attempts  # type: ignore[attr-defined]
        self.metrics.inc("service.failed")
        self._decrement_active()
        state.future.set_exception(error)

    def _cancel_now(self, state: _RequestState) -> None:
        """Resolve a withdrawn request with 409, charging no budgets."""
        self.metrics.inc("service.cancelled")
        self._decrement_active()
        state.future.set_exception(ServiceError(
            f"request {state.request_id} cancelled", code=409))

    def _process_cancels(self) -> None:
        """Apply cancel() requests (after intake has been merged)."""
        with self._lock:
            if not self._cancels:
                return
            cancels, self._cancels = self._cancels, set()
        for request_id in cancels:
            state = next((s for s in self._waiting
                          if s.request_id == request_id), None)
            if state is not None:
                self._waiting.remove(state)
                self._cancel_now(state)
                continue
            state = self._inflight.get(request_id)
            if state is not None:
                # Killed via its heartbeat claim; resolved 409 by the
                # break handler.  Unknown ids are dropped: the request
                # either never reached the pool or already finished.
                state.cancelled = True

    def _kill_cancelled(self) -> None:
        """SIGKILL claimed workers of cancelled in-flight requests.

        Runs every tick, so a cancel that arrived before the worker's
        heartbeat claim still lands once the claim does.
        """
        for state in self._inflight.values():
            if state.cancelled and state.claim_pid is not None:
                try:
                    os.kill(state.claim_pid, signal.SIGKILL)
                except (ProcessLookupError, TypeError):  # pragma: no cover
                    pass

    def _requeue(self, state: _RequestState, delay: float) -> None:
        state.inner = None
        state.claim_pid = state.claim_t = None
        state.ready_at = time.monotonic() + delay
        self._waiting.append(state)

    def _charge_failure(self, state: _RequestState, exc: BaseException,
                        code: int, what: str) -> None:
        """An attempt failed for a *charged* reason (raise or hang)."""
        if state.attempts > self.config.retries:
            self._fail(state, ServiceError(
                f"request {state.request_id} {what} after "
                f"{state.attempts} attempt(s): {exc}", code=code))
            return
        self.metrics.inc("service.retries")
        self._requeue(state, self._delay(state, state.attempts))

    def _handle_break(self) -> None:
        """Classify every in-flight request after a pool break, rebuild."""
        self.metrics.inc("service.pool_rebuilds")
        for state in list(self._inflight.values()):
            del self._inflight[state.request_id]
            if state.inner is not None:
                state.inner.cancel()
            if state.cancelled:
                # We killed its worker on request; the withdrawal wins
                # over every other classification and charges nothing.
                self._cancel_now(state)
            elif state.hung:
                # We killed its worker at the deadline: a charged timeout.
                self.metrics.inc("service.hangs")
                self._charge_failure(
                    state, TimeoutError(
                        f"no result within the {self.config.deadline}s deadline"),
                    code=408, what="exceeded its deadline")
            elif state.suspect:
                # It broke the pool while running in isolation: convicted.
                state.attempts -= 1  # crashes charge quarantine, not retries
                state.crashes += 1
                self.metrics.inc("service.crashes")
                if state.crashes >= self.config.quarantine_after:
                    self.metrics.inc("service.quarantined")
                    self._decrement_active()
                    state.future.set_exception(PoisonRequestError(
                        f"request {state.request_id} quarantined after "
                        f"{state.crashes} isolated worker crash(es)",
                        crashes=state.crashes))
                else:
                    self._requeue(state, self._delay(state, state.crashes))
            else:
                # A victim of someone else's crash: free requeue, but
                # isolate it until a clean completion exonerates it.
                state.attempts -= 1
                state.suspect = True
                self._requeue(state, 0.0)
        assert self._executor is not None
        _shutdown(self._executor, terminate=True)
        self._executor = self._make_executor()

    def _check_deadlines(self, now: float) -> None:
        deadline = self.config.deadline
        if deadline is None:
            return
        for state in self._inflight.values():
            if state.hung or state.claim_t is None:
                continue
            if now - state.claim_t > deadline:
                state.hung = True
                try:
                    os.kill(state.claim_pid, signal.SIGKILL)
                except (ProcessLookupError, TypeError):  # pragma: no cover
                    pass  # worker already gone; the break still surfaces

    def _supervise(self) -> None:
        while True:
            if self._stop.is_set():
                break
            with self._lock:
                while self._intake:
                    self._waiting.append(self._intake.popleft())
            if (self._drain.is_set() and not self._waiting
                    and not self._inflight):
                break
            self._process_cancels()
            now = time.monotonic()
            self._dispatch(now)
            self._drain_heartbeats()
            self._kill_cancelled()
            broke = False
            for state in list(self._inflight.values()):
                inner = state.inner
                if inner is None or not inner.done():
                    continue
                try:
                    value = inner.result()
                except BrokenProcessPool:
                    broke = True
                    break
                except Exception as exc:
                    del self._inflight[state.request_id]
                    self._charge_failure(state, exc, code=500, what="failed")
                else:
                    del self._inflight[state.request_id]
                    self._complete(state, value)
            if broke:
                self._handle_break()
                continue
            self._check_deadlines(time.monotonic())
            self.metrics.set_gauge("service.inflight", len(self._inflight))
            time.sleep(self.config.poll_interval)
        # Stopped: refuse whatever is still outstanding.
        with self._lock:
            while self._intake:
                self._waiting.append(self._intake.popleft())
        for state in self._waiting + list(self._inflight.values()):
            if not state.future.done():
                self._decrement_active()
                state.future.set_exception(
                    ServiceError("pool shut down before completion", code=503))
        self._waiting.clear()
        self._inflight.clear()
        if self._executor is not None:
            _shutdown(self._executor, terminate=True)
