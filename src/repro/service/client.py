"""Blocking client for the simulation service.

One connection per call, on purpose: the client's only state is the
socket path, so it survives daemon restarts transparently — exactly what
the chaos harness needs when it SIGKILLs the daemon between ``submit``
and ``wait``.  :meth:`ServiceClient.wait` polls ``status`` rather than
holding a server-side wait open for the same reason: a poll loop rides
out a daemon that dies and comes back, while a held connection dies with
the daemon.

Error responses are raised as :class:`~repro.errors.ServiceError` with
the server's code, so callers handle shed (429) or shutdown (503) the
same way whether the condition was detected locally or remotely.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

from ..errors import ServiceError
from .protocol import MAX_LINE_BYTES, decode_message, encode_message


class ServiceClient:
    """Talks JSON-lines to a :class:`~repro.service.ServiceDaemon`."""

    def __init__(self, socket_path: str, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # --- transport ---------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, return the raw response dict.

        Raises :class:`ServiceError` (code 503) when the daemon is
        unreachable — connection errors and service shutdown look the
        same to a caller deciding whether to retry.
        """
        data = encode_message(message)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(data)
                line = self._read_line(sock)
        except (OSError, socket.timeout) as exc:
            raise ServiceError(
                f"service at {self.socket_path} unreachable: {exc}",
                code=503) from exc
        return decode_message(line)

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks: List[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n") or total > MAX_LINE_BYTES:
                break
        return b"".join(chunks)

    def _checked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        response = self.request(message)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown service error"),
                code=int(response.get("code", 500)))
        return response

    # --- operations --------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._checked({"op": "ping"})

    def alive(self) -> bool:
        """True when the daemon answers a ping (no exception path)."""
        try:
            return bool(self.ping().get("pong"))
        except ServiceError:
            return False

    def submit(self, **params: Any) -> Dict[str, Any]:
        """Submit a simulation request; returns the acceptance response.

        Keyword arguments are the protocol's submit params: ``workload``
        and ``method`` (required), plus ``scale``, ``seed``,
        ``generations``, ``watchdog_budget``, ``nodes_hint``,
        ``walltime_hint``, and ``chaos``.
        """
        return self._checked({"op": "submit", "params": params})

    def status(self, request_id: str) -> Dict[str, Any]:
        return self._checked({"op": "status", "id": request_id})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})

    def shutdown(self, mode: str = "graceful") -> Dict[str, Any]:
        return self._checked({"op": "shutdown", "mode": mode})

    # --- polling helpers ---------------------------------------------------------
    TERMINAL = frozenset({"done", "failed", "quarantined"})

    def wait(self, request_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until ``request_id`` reaches a terminal state.

        Daemon restarts mid-wait are survived: an unreachable daemon just
        extends the poll loop (until ``timeout``), and a restarted daemon
        answers from its recovered journal.
        """
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                status = self.status(request_id)
            except ServiceError as exc:
                if exc.code == 404:
                    raise  # the daemon is up and has never heard of it
                last = exc  # unreachable: daemon may be restarting
            else:
                if status.get("state") in self.TERMINAL:
                    return status
            time.sleep(poll)
        raise ServiceError(
            f"request {request_id} not terminal within {timeout}s"
            + (f" (last error: {last})" if last else ""), code=408)

    def wait_all(self, request_ids: List[str], timeout: float = 300.0,
                 poll: float = 0.1) -> Dict[str, Dict[str, Any]]:
        """Wait for every id; returns ``{id: terminal status}``."""
        deadline = time.monotonic() + timeout
        done: Dict[str, Dict[str, Any]] = {}
        for rid in request_ids:
            remaining = max(deadline - time.monotonic(), 0.01)
            done[rid] = self.wait(rid, timeout=remaining, poll=poll)
        return done
