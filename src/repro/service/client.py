"""Resilient blocking client for the simulation service.

One connection per call, on purpose: the client's only state is the
endpoint, so it survives daemon restarts transparently — exactly what
the chaos harness needs when it SIGKILLs the daemon between ``submit``
and ``wait``.  On top of that stateless transport sit three failure
shields, each bounded and observable:

* **bounded retry with full-jitter backoff** (:class:`ClientRetryPolicy`)
  for *transient* transport failures — connection refused, missing
  socket file, reset before a response byte — the exact window a
  restarting daemon occupies.  Protocol violations (undecodable or
  oversized responses) are never retried: the daemon answered, just not
  in a language we share.  The taxonomy is explicit:
  :class:`~repro.errors.TransientServiceError` is retryable,
  plain :class:`~repro.errors.ServiceError` is not.
* **a per-endpoint circuit breaker** (:class:`CircuitBreaker`): after
  ``failure_threshold`` consecutive transport failures the breaker
  opens and calls fail fast (no connect attempt) for ``reset_after``
  seconds, then a single half-open probe decides between closing and
  re-opening.  A fleet of clients hammering a dead shard turns into a
  trickle of probes.
* **optional hedged reads** for idempotent ops (``status``/``wait``
  etc.): when a response takes longer than ``hedge_delay`` seconds a
  second identical request races the first, and the first answer wins.
  Hedging is restricted to read-only ops — a hedged ``submit`` without
  an idempotency key could double-run.

Writes are retried conservatively: a ``submit`` whose failure is
*ambiguous* (the request may have reached the daemon before the
connection died) is resent only when it carries an ``idempotency_key``,
which the daemon deduplicates against its journal — PR 6's exactly-once
property is what makes the resend safe.

Endpoints are either Unix socket paths or ``host:port`` TCP addresses
(:func:`parse_endpoint`); the wire protocol is identical on both.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError, ServiceTimeout, TransientServiceError
from ..resilience import BackoffPolicy
from .protocol import MAX_LINE_BYTES, decode_message, encode_message

#: Errors that mean "the endpoint is briefly absent" — retry territory.
_TRANSIENT_OS_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    FileNotFoundError,   # unix socket path not (re)created yet
    TimeoutError,        # socket.timeout is an alias since 3.10
)


def parse_endpoint(endpoint: str) -> Tuple[str, Any]:
    """Classify an endpoint string: ``("tcp", (host, port))`` or ``("unix", path)``.

    ``host:port`` with an integer port and no path separator is TCP
    (``[::1]:9000`` works for IPv6); everything else is a Unix socket
    path.
    """
    if "/" not in endpoint and ":" in endpoint:
        host, _, port = endpoint.rpartition(":")
        if port.isdigit():
            return "tcp", (host.strip("[]") or "127.0.0.1", int(port))
    return "unix", endpoint


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Bounded retry for transient transport failures, with full jitter.

    ``attempts`` counts total tries (1 = no retry).  Each retry sleeps
    ``uniform(0, backoff.delay(attempt))`` — *full* jitter, so a
    thundering herd of clients retrying against a restarting daemon
    decorrelates instead of re-synchronising on the backoff schedule.
    """

    attempts: int = 4
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            initial=0.05, factor=2.0, max_delay=2.0))

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered sleep before retry ``attempt`` (1-based)."""
        return rng.uniform(0.0, self.backoff.delay(max(attempt, 1)))


#: Retry policy that never retries (single attempt).
NO_RETRY = ClientRetryPolicy(attempts=1)


class CircuitBreaker:
    """Per-endpoint failure gate: closed → open → half-open → closed.

    Thread-safe; one instance guards one endpoint.  Only *transport*
    failures trip it — a daemon answering with an error code is a
    healthy daemon.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_after: float = 5.0) -> None:
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: times the breaker opened (telemetry for stats/tests).
        self.opened = 0

    def allow(self) -> bool:
        """May a request proceed right now?"""
        with self._lock:
            if self._opened_at is None:
                return True
            if time.monotonic() - self._opened_at < self.reset_after:
                return False
            # Half-open: let exactly one probe through at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at < self.reset_after:
                return "open"
            return "half-open"

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._opened_at is not None or (
                    self._failures >= self.failure_threshold):
                if self._opened_at is None:
                    self.opened += 1
                self._opened_at = time.monotonic()


#: Ops that are safe to hedge (idempotent reads).
HEDGEABLE_OPS = frozenset({"ping", "status", "stats", "wait"})


class ServiceClient:
    """Talks JSON-lines to a :class:`~repro.service.ServiceDaemon`.

    Parameters
    ----------
    endpoint:
        Unix socket path or ``host:port`` (see :func:`parse_endpoint`).
    timeout:
        Per-connection socket timeout (connect + one round trip).
    retry:
        Transient-failure retry policy; :data:`NO_RETRY` disables.
    breaker:
        Circuit breaker guarding this endpoint; pass a shared instance
        when several clients target the same daemon, or None for a
        private one.
    hedge_delay:
        When set, idempotent reads are hedged: a duplicate request is
        launched after this many seconds and the first response wins.
    seed:
        Seeds the jitter RNG (chaos runs pin it for reproducibility).
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float = 30.0,
        retry: Optional[ClientRetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        hedge_delay: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.endpoint = endpoint
        self.kind, self.address = parse_endpoint(endpoint)
        self.timeout = timeout
        self.retry = retry if retry is not None else ClientRetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.hedge_delay = hedge_delay
        self._rng = random.Random(seed)
        #: transport-level telemetry (tests and the router read these).
        self.retries = 0
        self.hedges = 0

    # --- legacy alias -------------------------------------------------------------
    @property
    def socket_path(self) -> str:
        """The endpoint string (historical name from the unix-only client)."""
        return self.endpoint

    # --- transport ---------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.kind == "tcp":
            return socket.create_connection(self.address, timeout=self.timeout)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.address)
        except BaseException:
            sock.close()
            raise
        return sock

    def request_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One send/receive round trip, no retries, no breaker.

        Raises :class:`TransientServiceError` for transport failures
        (retryable) and plain :class:`ServiceError` (code 502) for
        protocol violations (not retryable) — the two are distinct so
        retry loops can tell "daemon briefly absent" from "daemon
        speaking garbage".
        """
        data = encode_message(message)
        sent = False
        try:
            with self._connect() as sock:
                sock.sendall(data)
                sent = True
                line = self._read_line(sock)
        except _TRANSIENT_OS_ERRORS as exc:
            err = TransientServiceError(
                f"service at {self.endpoint} unreachable: {exc}")
            err.sent = sent  # type: ignore[attr-defined]
            raise err from exc
        except OSError as exc:
            err = TransientServiceError(
                f"service at {self.endpoint} failed: {exc}")
            err.sent = sent  # type: ignore[attr-defined]
            raise err from exc
        if not line:
            # Connection closed without a response byte: the daemon died
            # (or dropped us) mid-request — transient, but the request
            # may have been processed, so mark it ambiguous.
            err = TransientServiceError(
                f"service at {self.endpoint} closed the connection "
                "before responding")
            err.sent = True  # type: ignore[attr-defined]
            raise err
        try:
            return decode_message(line)
        except ServiceError as exc:
            # The daemon answered, but not in protocol: NOT retryable.
            raise ServiceError(
                f"protocol error from {self.endpoint}: {exc}",
                code=502) from exc

    def request(self, message: Dict[str, Any], *,
                retry: Optional[ClientRetryPolicy] = None,
                idempotent: bool = True) -> Dict[str, Any]:
        """Send one message through breaker + retry; returns the response.

        ``idempotent=False`` (used by key-less submits) restricts
        retries to failures where the request provably never reached
        the daemon (connect-phase); ambiguous failures propagate so the
        caller can decide.
        """
        policy = retry if retry is not None else self.retry
        last: Optional[TransientServiceError] = None
        for attempt in range(1, max(policy.attempts, 1) + 1):
            if not self.breaker.allow():
                raise TransientServiceError(
                    f"circuit open for {self.endpoint} "
                    f"(threshold {self.breaker.failure_threshold} transport "
                    "failures); backing off")
            try:
                response = self.request_once(message)
            except TransientServiceError as exc:
                self.breaker.record_failure()
                last = exc
                ambiguous = bool(getattr(exc, "sent", False))
                if ambiguous and not idempotent:
                    raise
                if attempt < policy.attempts:
                    self.retries += 1
                    time.sleep(policy.delay(attempt, self._rng))
                continue
            self.breaker.record_success()
            return response
        assert last is not None
        raise last

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks: List[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n") or total > MAX_LINE_BYTES:
                break
        return b"".join(chunks)

    # --- hedging -----------------------------------------------------------------
    def _hedged_request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Race a duplicate request after ``hedge_delay``; first answer wins.

        The first *successful* response is returned as soon as it lands;
        errors are only raised once every launched attempt has failed.
        """
        results: List[Any] = []
        cond = threading.Condition()

        def attempt() -> None:
            try:
                value: Any = self.request(message)
            except ServiceError as exc:
                value = exc
            with cond:
                results.append(value)
                cond.notify_all()

        threading.Thread(target=attempt, daemon=True).start()
        launched = 1
        with cond:
            if not cond.wait_for(lambda: results, timeout=self.hedge_delay):
                self.hedges += 1
                threading.Thread(target=attempt, daemon=True).start()
                launched = 2
            cond.wait_for(lambda: results)
            while (len(results) < launched
                   and all(isinstance(v, ServiceError) for v in results)):
                cond.wait()  # first finisher failed; await the straggler
        for value in results:
            if not isinstance(value, ServiceError):
                return value
        raise results[0]

    def _checked(self, message: Dict[str, Any], *,
                 idempotent: bool = True) -> Dict[str, Any]:
        op = message.get("op")
        if (self.hedge_delay is not None and idempotent
                and op in HEDGEABLE_OPS):
            response = self._hedged_request(message)
        else:
            response = self.request(message, idempotent=idempotent)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown service error"),
                code=int(response.get("code", 500)))
        return response

    # --- operations --------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._checked({"op": "ping"})

    def alive(self) -> bool:
        """True when the daemon answers a ping right now (single attempt)."""
        try:
            response = self.request_once({"op": "ping"})
        except ServiceError:
            return False
        return bool(response.get("pong"))

    def submit(self, **params: Any) -> Dict[str, Any]:
        """Submit a simulation request; returns the acceptance response.

        Keyword arguments are the protocol's submit params: ``workload``
        and ``method`` (required), plus ``scale``, ``seed``,
        ``generations``, ``watchdog_budget``, ``nodes_hint``,
        ``walltime_hint``, ``chaos``, and ``idempotency_key``.

        With an ``idempotency_key`` the submit is fully retryable: a
        resend after an ambiguous failure is deduplicated by the daemon
        against its journal, so the request runs exactly once no matter
        how many times the connection died mid-ack.  Without a key,
        only provably-unsent submits are retried.
        """
        idempotent = params.get("idempotency_key") is not None
        return self._checked({"op": "submit", "params": params},
                             idempotent=idempotent)

    def status(self, request_id: str) -> Dict[str, Any]:
        return self._checked({"op": "status", "id": request_id})

    def cancel(self, request_id: str,
               reason: Optional[str] = None) -> Dict[str, Any]:
        """Withdraw a queued request (409-terminal); no-op if terminal."""
        message: Dict[str, Any] = {"op": "cancel", "id": request_id}
        if reason is not None:
            message["reason"] = reason
        return self._checked(message)

    def status_by_key(self, key: str) -> Dict[str, Any]:
        """Look a request up by its idempotency key (404 when unknown)."""
        return self._checked({"op": "status", "key": key})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})

    def shutdown(self, mode: str = "graceful") -> Dict[str, Any]:
        return self._checked({"op": "shutdown", "mode": mode})

    # --- polling helpers ---------------------------------------------------------
    TERMINAL = frozenset({"done", "failed", "quarantined", "cancelled"})

    def wait(self, request_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until ``request_id`` reaches a terminal state.

        Daemon restarts mid-wait are survived: an unreachable daemon just
        extends the poll loop (until ``timeout``), and a restarted daemon
        answers from its recovered journal.  Raises
        :class:`~repro.errors.ServiceTimeout` when the budget runs out.
        """
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                status = self.status(request_id)
            except ServiceError as exc:
                if exc.code == 404:
                    raise  # the daemon is up and has never heard of it
                last = exc  # unreachable: daemon may be restarting
            else:
                if status.get("state") in self.TERMINAL:
                    return status
            time.sleep(poll)
        raise ServiceTimeout(
            f"request {request_id} not terminal within {timeout}s"
            + (f" (last error: {last})" if last else ""),
            pending=(request_id,))

    def wait_all(self, request_ids: List[str], timeout: float = 300.0,
                 poll: float = 0.1) -> Dict[str, Dict[str, Any]]:
        """Wait for every id; returns ``{id: terminal status}``.

        ``timeout`` bounds the *whole batch*: each wait gets exactly the
        time left on the shared deadline (never a negative or garbage
        remainder), and exhaustion raises one
        :class:`~repro.errors.ServiceTimeout` naming every id still
        pending — not just the one whose wait happened to hit the wall.
        """
        deadline = time.monotonic() + timeout
        done: Dict[str, Dict[str, Any]] = {}
        ids = list(request_ids)
        for i, rid in enumerate(ids):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._raise_wait_all_timeout(timeout, ids[i:])
            try:
                done[rid] = self.wait(rid, timeout=remaining, poll=poll)
            except ServiceTimeout as exc:
                self._raise_wait_all_timeout(timeout, ids[i:], cause=exc)
        return done

    @staticmethod
    def _raise_wait_all_timeout(timeout: float, pending: List[str],
                                cause: Optional[BaseException] = None) -> None:
        err = ServiceTimeout(
            f"wait_all budget of {timeout}s exhausted with "
            f"{len(pending)} request(s) still pending: {pending}",
            pending=tuple(pending))
        raise err from cause
