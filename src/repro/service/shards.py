"""Consistent-hash shard router with failover and exactly-once adoption.

A :class:`ShardRouter` spreads service requests across N independent
:class:`~repro.service.ServiceDaemon` endpoints ("shards") with no shared
state between them — each shard has its own journal, pool, and queue.
Three mechanisms make that a single dependable service:

* **consistent hashing** (:class:`HashRing`): every request's
  idempotency key hashes to a *preference list* of shards (the ring
  walked clockwise with virtual nodes).  Adding or removing one shard
  remaps only ~1/N of the keyspace, so a scale-out does not reshuffle
  every in-flight client's routing.
* **health tracking with down-marking**: a shard is marked down after
  ``down_after`` consecutive transport failures and skipped by routing
  until a ping (the :meth:`check` sweep, or an adoption probe) sees it
  answer again.  Down-marking composes with the per-endpoint circuit
  breaker inside each :class:`~repro.service.ServiceClient` — the
  breaker bounds connect attempts, the router steers work away.
* **exactly-once failover**: the dangerous case is an *ambiguous*
  submit — the connection died after the request may have reached the
  shard.  Blind failover would double-run it.  Instead the router holds
  the key and polls the primary for ``recover_timeout`` seconds: a
  recovered shard either knows the key (journal-backed — the request is
  **adopted**, not resubmitted) or answers 404, in which case the
  submit is resent to that *same* shard — a stalled shard may yet
  process the kernel-buffered original, and only same-shard resends are
  collapsed by its key dedup.  Only a shard that stays dead past the
  deadline forces a failover; the key is remembered and **reconciled**
  when the shard returns: any duplicate it journaled is cancelled
  (terminal 409) before its recovery re-runs it.  The chaos harness
  audits the union of all shard journals per key — exactly one ``done``,
  duplicates only ever ``cancelled``.

The router is a client-side library (and the ``repro route`` CLI): it
holds no authoritative state, so *it* can crash and restart freely —
everything it needs to reconcile is in the shards' journals.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError, ShardError, TransientServiceError
from .client import ClientRetryPolicy, ServiceClient

#: Virtual nodes per endpoint; smooths the ring's key distribution.
DEFAULT_REPLICAS = 64


def _hash64(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over endpoint strings, with virtual nodes."""

    def __init__(self, endpoints: List[str],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if not endpoints:
            raise ShardError("a hash ring needs at least one endpoint")
        self.endpoints = list(dict.fromkeys(endpoints))  # dedup, keep order
        self.replicas = int(replicas)
        points: List[Tuple[int, str]] = []
        for endpoint in self.endpoints:
            for replica in range(self.replicas):
                points.append((_hash64(f"{endpoint}#{replica}"), endpoint))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [e for _, e in points]

    def preference(self, key: str) -> List[str]:
        """All endpoints in ring order from ``key``'s position (distinct).

        The first entry is the key's primary; the rest are its failover
        order.  Every key gets every endpoint exactly once, so routing
        can always fall all the way through.
        """
        start = bisect.bisect(self._hashes, _hash64(key)) % len(self._hashes)
        seen: Dict[str, None] = {}
        for i in range(len(self._owners)):
            owner = self._owners[(start + i) % len(self._owners)]
            if owner not in seen:
                seen[owner] = None
                if len(seen) == len(self.endpoints):
                    break
        return list(seen)

    def node(self, key: str) -> str:
        """The primary endpoint for ``key``."""
        return self.preference(key)[0]


@dataclass
class _ShardHealth:
    up: bool = True
    consecutive_failures: int = 0
    down_since: Optional[float] = None
    #: keys forcibly failed over while this shard was down; cancelled on
    #: its recovery so its journal replay cannot re-run them.
    owed_cancels: List[str] = field(default_factory=list)


@dataclass
class Routed:
    """One routed submit: where it landed and under which identity."""

    key: str
    endpoint: str
    request_id: str
    deduped: bool = False
    adopted: bool = False
    failover: bool = False


class ShardRouter:
    """Routes requests across shard endpoints; survives shard deaths."""

    def __init__(
        self,
        endpoints: List[str],
        *,
        replicas: int = DEFAULT_REPLICAS,
        down_after: int = 3,
        recover_timeout: float = 30.0,
        probe_poll: float = 0.25,
        timeout: float = 30.0,
        retry: Optional[ClientRetryPolicy] = None,
        hedge_delay: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.ring = HashRing(endpoints, replicas)
        self.down_after = int(down_after)
        self.recover_timeout = float(recover_timeout)
        self.probe_poll = float(probe_poll)
        self._rng = random.Random(seed)
        self.clients: Dict[str, ServiceClient] = {
            endpoint: ServiceClient(
                endpoint, timeout=timeout, retry=retry,
                hedge_delay=hedge_delay, seed=seed)
            for endpoint in self.ring.endpoints
        }
        self._health: Dict[str, _ShardHealth] = {
            endpoint: _ShardHealth() for endpoint in self.ring.endpoints}
        # Telemetry the chaos harness and tests assert on.
        self.failovers = 0          #: submits served by a non-primary shard
        self.adoptions = 0          #: ambiguous submits resolved by key lookup
        self.forced_failovers = 0   #: ambiguous submits that outwaited recovery
        self.reconciled = 0         #: duplicate keys cancelled on recovery
        self.conflicts = 0          #: duplicates found already done (too late)

    # --- health ------------------------------------------------------------------
    def _mark_failure(self, endpoint: str) -> None:
        health = self._health[endpoint]
        health.consecutive_failures += 1
        if health.up and health.consecutive_failures >= self.down_after:
            health.up = False
            health.down_since = time.monotonic()

    def _mark_success(self, endpoint: str) -> None:
        health = self._health[endpoint]
        was_down = not health.up
        health.up = True
        health.consecutive_failures = 0
        health.down_since = None
        if was_down:
            self.reconcile(endpoint)

    def healthy(self) -> Dict[str, bool]:
        """Current health belief per endpoint (no probing)."""
        return {e: h.up for e, h in self._health.items()}

    def check(self) -> Dict[str, bool]:
        """Ping every shard once; update health, reconcile recoveries."""
        result: Dict[str, bool] = {}
        for endpoint, client in self.clients.items():
            if client.alive():
                self._mark_success(endpoint)
                result[endpoint] = True
            else:
                self._mark_failure(endpoint)
                result[endpoint] = False
        return result

    # --- routing -----------------------------------------------------------------
    def route(self, key: str) -> Dict[str, Any]:
        """Where ``key`` would go right now (pure lookup, no I/O)."""
        preference = self.ring.preference(key)
        live = [e for e in preference if self._health[e].up]
        return {"key": key, "preference": preference,
                "target": live[0] if live else None}

    def _ordered_targets(self, key: str) -> List[str]:
        """Preference order, healthy shards first (order kept within each)."""
        preference = self.ring.preference(key)
        up = [e for e in preference if self._health[e].up]
        down = [e for e in preference if not self._health[e].up]
        return up + down

    def new_key(self, prefix: str = "req") -> str:
        """A fresh idempotency key (seeded RNG → reproducible in chaos runs)."""
        return f"{prefix}-{self._rng.getrandbits(64):016x}"

    def _status_by_key(self, endpoint: str, key: str,
                       deadline: float) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Poll one shard for ``key`` until ``deadline``.

        Returns ``("found", status)`` when the shard knows the key,
        ``("absent", None)`` when it answers 404 (provably never
        accepted), ``("down", None)`` when it stayed unreachable.
        """
        client = self.clients[endpoint]
        while True:
            try:
                status = client.request_once({"op": "status", "key": key})
            except ServiceError:
                pass  # still down (or mid-restart); keep polling
            else:
                if status.get("ok"):
                    self._mark_success(endpoint)
                    return "found", status
                if int(status.get("code", 0)) == 404:
                    self._mark_success(endpoint)
                    return "absent", None
            if time.monotonic() >= deadline:
                return "down", None
            time.sleep(self.probe_poll)

    def submit(self, **params: Any) -> Routed:
        """Route one submit to its shard; exactly-once under shard death.

        A missing ``idempotency_key`` is generated — sharded submits are
        always keyed, because the key *is* the routing and dedup
        identity.  Raises :class:`~repro.errors.ShardError` when no
        shard accepts.
        """
        key = params.get("idempotency_key") or self.new_key()
        params = dict(params, idempotency_key=key)
        targets = self._ordered_targets(key)
        primary = self.ring.node(key)
        failures: List[str] = []
        for endpoint in targets:
            client = self.clients[endpoint]
            resends = 0
            while True:
                try:
                    response = client.submit(**params)
                except TransientServiceError as exc:
                    self._mark_failure(endpoint)
                    if getattr(exc, "sent", False):
                        # Ambiguous: the shard may have journaled the
                        # key.  Wait out its recovery instead of
                        # double-running.
                        verdict, status = self._status_by_key(
                            endpoint, key,
                            time.monotonic() + self.recover_timeout)
                        if verdict == "found":
                            self.adoptions += 1
                            assert status is not None
                            return Routed(key=key, endpoint=endpoint,
                                          request_id=status["id"],
                                          adopted=True,
                                          failover=endpoint != primary)
                        if verdict == "absent" and resends < 2:
                            # The shard is UP and answered 404 — but a
                            # stalled shard may still process the
                            # kernel-buffered original later, so a 404
                            # is not proof of non-acceptance.  Failing
                            # over here could double-run; resending to
                            # the *same* shard cannot, because the key
                            # dedups against the buffered frame if it
                            # ever lands.
                            resends += 1
                            continue
                        if verdict == "down":
                            # Forced failover: remember the key so the
                            # shard is reconciled (duplicate cancelled)
                            # on return.
                            self._health[endpoint].owed_cancels.append(key)
                            self.forced_failovers += 1
                    failures.append(f"{endpoint}: {exc}")
                    break  # next endpoint in the preference order
                except ServiceError:
                    raise  # the shard answered (4xx/5xx): routing is done
                self._mark_success(endpoint)
                if endpoint != primary:
                    self.failovers += 1
                return Routed(key=key, endpoint=endpoint,
                              request_id=response["id"],
                              deduped=bool(response.get("deduped")),
                              failover=endpoint != primary)
        raise ShardError(
            f"no live shard for key {key!r}; "
            f"tried {len(targets)}: {'; '.join(failures)}")

    def reconcile(self, endpoint: str) -> int:
        """Cancel this shard's copies of keys that were failed over.

        Called automatically when a down shard is seen healthy again.
        For each owed key: 404 means the shard never accepted it (clean);
        a live copy is cancelled (terminal 409) before the shard's
        recovery dispatch can re-run it; a copy already ``done`` is a
        conflict — the run raced the reconciliation — counted, never
        hidden.  Returns the number of cancels issued.
        """
        health = self._health[endpoint]
        owed, health.owed_cancels = health.owed_cancels, []
        if not owed:
            return 0
        client = self.clients[endpoint]
        cancelled = 0
        for key in owed:
            try:
                status = client.status_by_key(key)
            except ServiceError as exc:
                if exc.code == 404:
                    continue  # never accepted there: nothing to reconcile
                health.owed_cancels.append(key)  # retry on next recovery
                continue
            if status.get("state") == "done":
                self.conflicts += 1
                continue
            try:
                client.cancel(
                    status["id"],
                    reason=f"reconciled: key {key} failed over while "
                           f"{endpoint} was down")
                cancelled += 1
                self.reconciled += 1
            except ServiceError:
                health.owed_cancels.append(key)
        return cancelled

    # --- request lifecycle across shards -----------------------------------------
    def wait(self, routed: Routed, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Wait for a routed request on the shard that owns it.

        A shard restart mid-wait is survived by the client's poll loop
        (the shard recovers the request from its journal and finishes
        it); the router adds nothing here because ownership never moves
        after acceptance.
        """
        return self.clients[routed.endpoint].wait(
            routed.request_id, timeout=timeout, poll=poll)

    def wait_all(self, routed: List[Routed], timeout: float = 300.0,
                 poll: float = 0.1) -> Dict[str, Dict[str, Any]]:
        """Wait for every routed request; ``{key: terminal status}``.

        One shared deadline across the batch, mirroring
        :meth:`ServiceClient.wait_all`.
        """
        deadline = time.monotonic() + timeout
        done: Dict[str, Dict[str, Any]] = {}
        for i, item in enumerate(routed):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._raise_pending(timeout, routed[i:])
            try:
                done[item.key] = self.wait(item, timeout=remaining, poll=poll)
            except ServiceError as exc:
                if exc.code != 408:
                    raise
                self._raise_pending(timeout, routed[i:], cause=exc)
        return done

    @staticmethod
    def _raise_pending(timeout: float, pending: List[Routed],
                       cause: Optional[BaseException] = None) -> None:
        from ..errors import ServiceTimeout
        keys = [r.key for r in pending]
        raise ServiceTimeout(
            f"sharded wait_all budget of {timeout}s exhausted with "
            f"{len(keys)} request(s) still pending: {keys}",
            pending=tuple(keys)) from cause

    def stats(self) -> Dict[str, Any]:
        """Aggregate stats across shards (down shards reported, not fatal)."""
        shards: Dict[str, Any] = {}
        for endpoint, client in self.clients.items():
            try:
                shards[endpoint] = client.stats()
            except ServiceError as exc:
                self._mark_failure(endpoint)
                shards[endpoint] = {"ok": False, "error": str(exc)}
        return {
            "shards": shards,
            "healthy": self.healthy(),
            "router": {
                "failovers": self.failovers,
                "adoptions": self.adoptions,
                "forced_failovers": self.forced_failovers,
                "reconciled": self.reconciled,
                "conflicts": self.conflicts,
            },
        }

    def shutdown_all(self, mode: str = "graceful") -> Dict[str, bool]:
        """Ask every reachable shard to shut down; ``{endpoint: acked}``."""
        acked: Dict[str, bool] = {}
        for endpoint, client in self.clients.items():
            try:
                client.shutdown(mode)
                acked[endpoint] = True
            except ServiceError:
                acked[endpoint] = False
        return acked
