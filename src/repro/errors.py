"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type.  Sub-types separate configuration mistakes
(caller bugs) from simulation-state violations (library bugs or impossible
traces), which is the distinction a scheduler operator actually cares about.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class TraceError(ReproError, ValueError):
    """A workload trace is malformed or internally inconsistent."""


class AllocationError(ReproError, RuntimeError):
    """A resource allocation/release violated cluster invariants."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduling component produced an invalid decision."""


class SolverError(ReproError, RuntimeError):
    """The MOO solver was invoked with an invalid problem."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its wall-clock budget and no fallback was allowed."""


class ResilienceError(ReproError, RuntimeError):
    """A fault-injection or recovery action violated resilience invariants."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or inconsistent with the run."""


class SimulationInterrupted(ReproError, RuntimeError):
    """A run was stopped early after writing a final checkpoint.

    Raised by the engine's checkpoint hook when a SIGTERM/SIGINT was
    observed (or a configured stop point was reached) and the state was
    safely persisted; ``checkpoint_path`` names the snapshot to resume
    from, ``sim_time`` the simulated instant it captures, and ``signum``
    the POSIX signal that triggered the stop (None for a configured
    ``stop_after`` cut point).
    """

    def __init__(
        self,
        message: str,
        *,
        checkpoint_path: str,
        sim_time: float,
        signum: int | None = None,
    ) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.sim_time = sim_time
        self.signum = signum


class ServiceError(ReproError, RuntimeError):
    """A simulation-service request failed; carries an HTTP-style code.

    Codes follow the familiar convention so clients can dispatch on
    them: 400 malformed request, 404 unknown request id, 408 deadline
    exceeded, 429 shed by admission control, 500 execution failure,
    503 service unavailable (shutting down).
    """

    def __init__(self, message: str, *, code: int = 500) -> None:
        super().__init__(message)
        self.code = int(code)


class ShmCorruptionError(ReproError, RuntimeError):
    """A shared-memory trace segment failed its integrity check.

    Attaching readers treat this as "the segment does not exist": they
    fall back to regenerating the trace, and the publisher unlinks and
    republishes the segment, counting the event in telemetry.
    """


class TransientServiceError(ServiceError):
    """The service endpoint is briefly unreachable; safe to retry.

    Raised by the client for connect-time failures (``ECONNREFUSED``,
    a missing socket file, a reset before any response byte) — exactly
    the window a restarting daemon occupies.  Protocol violations
    (undecodable responses, oversized frames) stay plain
    :class:`ServiceError` and are *not* retried: the daemon answered,
    just not in a language we share, so retrying cannot help.
    """

    def __init__(self, message: str, *, code: int = 503) -> None:
        super().__init__(message, code=code)
        self.retryable = True


class ServiceTimeout(ServiceError, TimeoutError):
    """A wait exceeded its budget; names the still-pending request ids."""

    def __init__(self, message: str, *, pending: tuple = ()) -> None:
        super().__init__(message, code=408)
        self.pending = tuple(pending)


class ShardError(ServiceError):
    """A sharded-service routing failure (no live shard for a key)."""

    def __init__(self, message: str, *, code: int = 503) -> None:
        super().__init__(message, code=code)


class PoisonRequestError(ServiceError):
    """A request crashed its worker repeatedly and was quarantined.

    Raised (and journaled as a terminal ``quarantined`` record) after a
    request is convicted of ``quarantine_after`` isolated worker
    crashes — re-dispatching it further would keep breaking the pool.
    """

    def __init__(self, message: str, *, crashes: int = 0) -> None:
        super().__init__(message, code=500)
        self.crashes = int(crashes)


class TaskError(ReproError, RuntimeError):
    """A parallel-map task failed after exhausting its retry budget.

    Carries enough context to diagnose a grid failure without re-running
    it: the task index and arguments, how many attempts were made, and the
    captured traceback of the final failure (workers live in other
    processes, so the original traceback object is gone by the time the
    parent sees the exception).
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        task: tuple,
        attempts: int,
        traceback_text: str = "",
    ) -> None:
        super().__init__(message)
        self.index = index
        self.task = task
        self.attempts = attempts
        self.traceback_text = traceback_text
