"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type.  Sub-types separate configuration mistakes
(caller bugs) from simulation-state violations (library bugs or impossible
traces), which is the distinction a scheduler operator actually cares about.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class TraceError(ReproError, ValueError):
    """A workload trace is malformed or internally inconsistent."""


class AllocationError(ReproError, RuntimeError):
    """A resource allocation/release violated cluster invariants."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduling component produced an invalid decision."""


class SolverError(ReproError, RuntimeError):
    """The MOO solver was invoked with an invalid problem."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its wall-clock budget and no fallback was allowed."""


class ResilienceError(ReproError, RuntimeError):
    """A fault-injection or recovery action violated resilience invariants."""
