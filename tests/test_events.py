"""Event queue: ordering, stability, cancellation."""

import pytest

from repro.simulator.events import Event, EventQueue, EventType


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, EventType.JOB_SUBMIT)

    def test_priority_order_of_types(self):
        # Completions release resources first, then submissions, then passes.
        assert EventType.JOB_END < EventType.JOB_SUBMIT < EventType.SCHEDULE


class TestEventQueue:
    def test_empty(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        assert q.peek() is None
        assert q.peek_time() is None
        with pytest.raises(IndexError):
            q.pop()

    def test_time_ordering(self):
        q = EventQueue()
        q.push(Event(5.0, EventType.JOB_SUBMIT, "b"))
        q.push(Event(1.0, EventType.JOB_SUBMIT, "a"))
        q.push(Event(9.0, EventType.JOB_SUBMIT, "c"))
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_type_ordering_at_same_time(self):
        q = EventQueue()
        q.push(Event(1.0, EventType.SCHEDULE, "sched"))
        q.push(Event(1.0, EventType.JOB_SUBMIT, "submit"))
        q.push(Event(1.0, EventType.JOB_END, "end"))
        assert [q.pop().payload for _ in range(3)] == ["end", "submit", "sched"]

    def test_insertion_stability(self):
        q = EventQueue()
        for i in range(10):
            q.push(Event(1.0, EventType.JOB_SUBMIT, i))
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_len_tracks_pushes_and_pops(self):
        q = EventQueue()
        q.push(Event(1.0, EventType.JOB_SUBMIT))
        q.push(Event(2.0, EventType.JOB_SUBMIT))
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_cancel(self):
        q = EventQueue()
        token = q.push(Event(1.0, EventType.JOB_SUBMIT, "x"))
        q.push(Event(2.0, EventType.JOB_SUBMIT, "y"))
        q.cancel(token)
        assert len(q) == 1
        assert q.pop().payload == "y"

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        token = q.push(Event(1.0, EventType.JOB_SUBMIT))
        q.cancel(token)
        q.cancel(token)
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        token = q.push(Event(1.0, EventType.JOB_SUBMIT, "dead"))
        q.push(Event(2.0, EventType.JOB_SUBMIT, "live"))
        q.cancel(token)
        assert q.peek().payload == "live"
        assert q.peek_time() == 2.0

    def test_drain(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(Event(t, EventType.JOB_SUBMIT, t))
        assert [e.payload for e in q.drain()] == [1.0, 2.0, 3.0]
        assert not q
