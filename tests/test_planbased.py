"""Plan-based scheduling: resource profiles, execution plans, the selector.

The safety property is capacity: a plan reserves every job against a
piecewise-constant profile of *future* free capacity (initial free +
planned releases), so at no planned instant may the active jobs exceed
free nodes, burst buffer, or any SSD-tier prefix (Hall's condition).
The hypothesis test checks exactly that, at every profile boundary.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backfill.easy import PlannedRelease
from repro.experiments.config import get_scale
from repro.experiments.runner import run_one
from repro.methods import PlanBasedSelector, make_selector
from repro.methods.base import SystemCapacity
from repro.resilience import SolverWatchdog
from repro.simulator.cluster import Available
from repro.simulator.job import Job, JobState
from repro.simulator.plan import ResourceProfile, build_plan
from repro.experiments.workloads import get_workload

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Must match plan.py's overdue-release clamp.
OVERRUN_EPS = 1e-6


def make_job(jid, nodes, bb=0.0, ssd=0.0, walltime=100.0):
    return Job(jid=jid, submit_time=0.0, runtime=walltime, walltime=walltime,
               nodes=nodes, bb=bb, ssd=ssd)


def release(est_end, bb, nodes_by_tier):
    return PlannedRelease(est_end=est_end, bb=bb, nodes_by_tier=dict(nodes_by_tier))


# ---------------------------------------------------------------------------
# Direct build_plan scenarios
# ---------------------------------------------------------------------------


class TestBuildPlan:
    def test_everything_fits_now(self):
        jobs = [make_job(1, 2, 10.0), make_job(2, 2, 10.0)]
        plan = build_plan(jobs, 100.0, {0.0: 8}, [], now=0.0)
        assert {j.jid for j in plan.immediate()} == {1, 2}
        assert plan.unplannable == ()
        assert plan.horizon == pytest.approx(100.0)

    def test_blocked_job_waits_for_release(self):
        # 4 free nodes, job 1 takes them all; job 2 (also 4 nodes) must
        # wait for the running job's release at t=50.
        jobs = [make_job(1, 4), make_job(2, 4)]
        rel = release(50.0, 0.0, {0.0: 4})
        plan = build_plan(jobs, 0.0, {0.0: 4}, [rel], now=0.0)
        assert plan.start_of(1) == pytest.approx(0.0)
        assert plan.start_of(2) == pytest.approx(50.0)
        assert {j.jid for j in plan.immediate()} == {1}

    def test_priority_order_is_respected(self):
        # Window order is priority order: the first job gets the earliest
        # feasible slot even if a later, smaller job could start sooner.
        jobs = [make_job(1, 4), make_job(2, 1)]
        rel = release(30.0, 0.0, {0.0: 3})
        plan = build_plan(jobs, 0.0, {0.0: 1}, [rel], now=0.0)
        assert plan.start_of(1) == pytest.approx(30.0)
        # During [30, 130) job 1 holds all four projected nodes, so job 2
        # (walltime 100) cannot fit any earlier interval and queues behind.
        assert plan.start_of(2) == pytest.approx(130.0)

    def test_oversize_job_unplannable(self):
        jobs = [make_job(1, 64)]
        plan = build_plan(jobs, 0.0, {0.0: 8}, [], now=0.0)
        assert [j.jid for j in plan.unplannable] == [1]
        assert plan.entries == ()

    def test_bb_constrains_start(self):
        jobs = [make_job(1, 1, 80.0)]
        rel = release(25.0, 60.0, {0.0: 0})
        plan = build_plan(jobs, 40.0, {0.0: 4}, [rel], now=0.0)
        assert plan.start_of(1) == pytest.approx(25.0)
        assert plan.immediate() == []

    def test_ssd_tier_qualification(self):
        # Job needs 2 nodes with >= 256 GB local SSD; only one qualifies
        # now, the second frees at t=10.
        jobs = [make_job(1, 2, 0.0, 256.0)]
        rel = release(10.0, 0.0, {256.0: 1})
        plan = build_plan(jobs, 0.0, {128.0: 4, 256.0: 1}, [rel], now=0.0)
        assert plan.start_of(1) == pytest.approx(10.0)

    def test_overdue_release_is_not_free_now(self):
        # A running job past its walltime estimate releases "immediately",
        # but the capacity must never count as free *now*: the planned
        # start lands strictly after now and the job is not immediate.
        jobs = [make_job(1, 4)]
        rel = release(-5.0, 0.0, {0.0: 4})  # overdue
        plan = build_plan(jobs, 0.0, {0.0: 0}, [rel], now=0.0)
        start = plan.start_of(1)
        assert start is not None and start > 0.0
        assert plan.immediate() == []

    def test_zero_walltime_job_still_occupies(self):
        jobs = [make_job(1, 4, walltime=1.0), make_job(2, 4, walltime=1.0)]
        plan = build_plan(jobs, 0.0, {0.0: 4}, [], now=0.0)
        assert plan.start_of(1) == pytest.approx(0.0)
        assert plan.start_of(2) == pytest.approx(1.0)


class TestResourceProfile:
    def test_free_at_reflects_releases(self):
        prof = ResourceProfile(10.0, {0.0: 2}, now=0.0)
        prof.add_release(release(5.0, 4.0, {0.0: 3}))
        bb0, tiers0 = prof.free_at(0.0)
        assert bb0 == pytest.approx(10.0) and tiers0[0.0] == 2
        bb1, tiers1 = prof.free_at(5.0)
        assert bb1 == pytest.approx(14.0) and tiers1[0.0] == 5

    def test_occupy_consumes_interval(self):
        prof = ResourceProfile(10.0, {0.0: 4}, now=0.0)
        job = make_job(1, 3, 6.0, walltime=20.0)
        assert prof.earliest_start(job, 0.0) == pytest.approx(0.0)
        prof.occupy(job, 0.0)
        bb, tiers = prof.free_at(10.0)
        assert bb == pytest.approx(4.0) and tiers[0.0] == 1
        bb_after, tiers_after = prof.free_at(20.0)
        assert bb_after == pytest.approx(10.0) and tiers_after[0.0] == 4

    def test_smallest_qualifying_tier_first(self):
        # A 128-GB job must consume the 128 tier before touching 256,
        # mirroring the cluster's greedy assignment.
        prof = ResourceProfile(0.0, {128.0: 2, 256.0: 2}, now=0.0)
        job = make_job(1, 2, 0.0, 128.0, walltime=10.0)
        prof.occupy(job, 0.0)
        _, tiers = prof.free_at(0.0)
        assert tiers[128.0] == 0 and tiers[256.0] == 2


# ---------------------------------------------------------------------------
# Capacity safety (hypothesis)
# ---------------------------------------------------------------------------

TIER_CAPS = (0.0, 128.0, 256.0)


@st.composite
def plan_instances(draw):
    n_jobs = draw(st.integers(1, 10))
    jobs = []
    for i in range(n_jobs):
        ssd = draw(st.sampled_from((0.0, 0.0, 128.0, 256.0)))
        jobs.append(Job(
            jid=i + 1,
            submit_time=0.0,
            runtime=draw(st.floats(1.0, 300.0, allow_nan=False)),
            walltime=draw(st.floats(1.0, 300.0, allow_nan=False)),
            nodes=draw(st.integers(1, 6)),
            bb=float(draw(st.integers(0, 30))),
            ssd=ssd,
        ))
    free_bb = float(draw(st.integers(0, 60)))
    free_tiers = {cap: draw(st.integers(0, 4)) for cap in TIER_CAPS}
    n_rel = draw(st.integers(0, 4))
    releases = []
    for _ in range(n_rel):
        releases.append(release(
            est_end=draw(st.floats(-10.0, 400.0, allow_nan=False)),
            bb=float(draw(st.integers(0, 30))),
            nodes_by_tier={cap: draw(st.integers(0, 3)) for cap in TIER_CAPS},
        ))
    return jobs, free_bb, free_tiers, releases


class TestPlanCapacitySafety:
    @given(plan_instances())
    @settings(**COMMON, max_examples=120)
    def test_no_planned_instant_overcommits(self, instance):
        jobs, free_bb, free_tiers, releases = instance
        now = 0.0
        plan = build_plan(jobs, free_bb, free_tiers, releases, now)

        planned = {e.job.jid for e in plan.entries}
        assert planned | {j.jid for j in plan.unplannable} == {j.jid for j in jobs}

        # Instants to audit: every planned start/end and release time.
        instants = {now}
        for e in plan.entries:
            instants.add(e.start)
            instants.add(e.end)
        for r in releases:
            instants.add(max(r.est_end, now + OVERRUN_EPS))

        for t in sorted(instants):
            avail_bb = free_bb + sum(
                r.bb for r in releases if max(r.est_end, now + OVERRUN_EPS) <= t + 1e-9
            )
            avail_tiers = dict(free_tiers)
            for r in releases:
                if max(r.est_end, now + OVERRUN_EPS) <= t + 1e-9:
                    for cap, cnt in r.nodes_by_tier.items():
                        avail_tiers[cap] = avail_tiers.get(cap, 0) + cnt
            active = [
                e.job for e in plan.entries
                if e.start <= t + 1e-9 and t < e.end - 1e-9
            ]
            assert sum(j.bb for j in active) <= avail_bb + 1e-6
            # Hall's condition per SSD threshold.
            for s in sorted({j.ssd for j in active}):
                demand = sum(j.nodes for j in active if j.ssd >= s)
                supply = sum(c for cap, c in avail_tiers.items() if cap >= s)
                assert demand <= supply, (t, s, demand, supply)

    @given(plan_instances())
    @settings(**COMMON, max_examples=60)
    def test_immediate_jobs_fit_the_present_snapshot(self, instance):
        # The engine starts plan.immediate() against the *current* free
        # capacity; planned-now jobs must jointly fit it with no help
        # from any release.
        jobs, free_bb, free_tiers, releases = instance
        plan = build_plan(jobs, free_bb, free_tiers, releases, 0.0)
        now_jobs = plan.immediate()
        assert sum(j.bb for j in now_jobs) <= free_bb + 1e-6
        for s in sorted({j.ssd for j in now_jobs}):
            demand = sum(j.nodes for j in now_jobs if j.ssd >= s)
            supply = sum(c for cap, c in free_tiers.items() if cap >= s)
            assert demand <= supply


# ---------------------------------------------------------------------------
# Selector and engine integration
# ---------------------------------------------------------------------------


class TestPlanBasedSelector:
    def _avail(self, **kw):
        base = dict(nodes=8, bb=100.0, ssd_free={0.0: 8}, releases=(), now=0.0)
        base.update(kw)
        return Available(**base)

    def test_selects_immediate_jobs_only(self):
        sel = PlanBasedSelector()
        sel.bind(SystemCapacity(8, 100.0))
        window = [make_job(1, 4), make_job(2, 4), make_job(3, 4)]
        picks = sel.select(window, self._avail())
        # Jobs 1+2 fill the machine now; job 3 is planned later, not picked.
        assert picks == [0, 1]

    def test_needs_releases_flag(self):
        assert PlanBasedSelector.needs_releases is True
        assert make_selector("Plan_Based").needs_releases is True

    def test_watchdog_forwards_needs_releases(self):
        wrapped = SolverWatchdog(PlanBasedSelector(), budget=10.0)
        assert wrapped.needs_releases is True

    def test_releases_change_the_plan(self):
        sel = PlanBasedSelector()
        sel.bind(SystemCapacity(8, 100.0))
        window = [make_job(1, 8, walltime=50.0)]
        # All nodes busy; with no releases the job is unplannable, with a
        # release it is planned at the release boundary.
        blocked = self._avail(nodes=0, ssd_free={0.0: 0})
        assert sel.select(window, blocked) == []
        plan = sel.plan(window, self._avail(
            nodes=0, ssd_free={0.0: 0},
            releases=(release(40.0, 0.0, {0.0: 8}),),
        ))
        assert plan.start_of(1) == pytest.approx(40.0)

    def test_end_to_end_smoke_cori_and_theta(self):
        scale = get_scale("smoke")
        for workload in ("Cori-S1", "Theta-S4"):
            trace = get_workload(workload, scale)
            result = run_one(trace, "Plan_Based", scale, seed=11)
            assert result.makespan > 0
            assert result.metric("node_usage") > 0
            assert result.method == "Plan_Based"

    def test_engine_terminates_all_jobs(self):
        scale = get_scale("smoke")
        trace = get_workload("Cori-S1", scale)
        jobs = trace.fresh_jobs()
        from repro.backfill import EasyBackfill
        from repro.policies import FCFS
        from repro.simulator.engine import SchedulingEngine
        from repro.windows import WindowPolicy

        engine = SchedulingEngine(
            trace.machine.make_cluster(), FCFS(), PlanBasedSelector(),
            WindowPolicy(size=scale.window, starvation_bound=scale.starvation_bound),
            backfill=EasyBackfill(),
        )
        result = engine.run(jobs)
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
