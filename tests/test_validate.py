"""Post-hoc schedule validation."""

import pytest

from repro.errors import SchedulingError
from repro.methods import make_selector
from repro.policies import FCFS
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job
from repro.simulator.validate import Violation, validate_schedule
from repro.windows import WindowPolicy


def completed_job(jid, submit=0.0, start=0.0, runtime=10.0, nodes=1,
                  bb=0.0, ssd=0.0, deps=()):
    job = Job(jid=jid, submit_time=submit, runtime=runtime, walltime=runtime,
              nodes=nodes, bb=bb, ssd=ssd, deps=frozenset(deps))
    job.mark_queued()
    job.mark_started(start)
    job.mark_completed(start + runtime)
    return job


class TestValidSchedules:
    def test_empty(self):
        report = validate_schedule([], total_nodes=4, bb_capacity=10.0)
        assert report.ok

    def test_simple_valid(self):
        jobs = [completed_job(1, nodes=2), completed_job(2, start=5.0, nodes=2)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=0.0)
        assert report.ok
        assert report.peak_nodes == 4

    def test_engine_output_validates(self):
        jobs = [Job(jid=i, submit_time=float(i), runtime=30.0, walltime=40.0,
                    nodes=2 + i % 3, bb=float(i % 2) * 5.0)
                for i in range(20)]
        engine = SchedulingEngine(
            Cluster(nodes=8, bb_capacity=20.0), FCFS(),
            make_selector("BBSched", generations=10, seed=0),
            WindowPolicy(size=5),
        )
        result = engine.run(jobs)
        report = validate_schedule(result.jobs, total_nodes=8, bb_capacity=20.0)
        report.raise_if_invalid()

    def test_engine_output_with_ssd_validates(self):
        tiers = {128.0: 3, 256.0: 3}
        jobs = [Job(jid=i, submit_time=float(i), runtime=30.0, walltime=40.0,
                    nodes=1 + i % 3, ssd=[0.0, 64.0, 200.0][i % 3])
                for i in range(15)]
        engine = SchedulingEngine(
            Cluster(nodes=6, bb_capacity=0.0, ssd_tiers=tiers), FCFS(),
            make_selector("Baseline"), WindowPolicy(size=4),
        )
        result = engine.run(jobs)
        report = validate_schedule(result.jobs, total_nodes=6,
                                   bb_capacity=0.0, ssd_tiers=tiers)
        report.raise_if_invalid()


class TestViolationDetection:
    def test_incomplete_job(self):
        job = Job(jid=1, submit_time=0.0, runtime=1.0, walltime=1.0, nodes=1)
        job.mark_queued()
        report = validate_schedule([job], total_nodes=1, bb_capacity=0.0)
        assert not report.ok
        assert report.violations[0].kind == "incomplete"

    def test_start_before_submit(self):
        job = Job(jid=1, submit_time=50.0, runtime=10.0, walltime=10.0, nodes=1)
        job.state = job.state.COMPLETED
        job.start_time = 40.0
        job.end_time = 50.0
        report = validate_schedule([job], total_nodes=1, bb_capacity=0.0)
        assert any(v.kind == "time-travel" for v in report.violations)

    def test_duration_mismatch(self):
        job = completed_job(1)
        job.end_time = job.start_time + 999.0
        report = validate_schedule([job], total_nodes=1, bb_capacity=0.0)
        assert any(v.kind == "duration" for v in report.violations)

    def test_node_overcommit(self):
        jobs = [completed_job(1, nodes=3), completed_job(2, nodes=3)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=0.0)
        assert any(v.kind == "capacity" for v in report.violations)

    def test_bb_overcommit(self):
        jobs = [completed_job(1, bb=30.0), completed_job(2, bb=30.0)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=50.0)
        assert any(v.kind == "capacity" for v in report.violations)

    def test_no_false_positive_on_handover(self):
        # B starts exactly when A ends: release-before-allocate.
        jobs = [completed_job(1, nodes=4, runtime=10.0),
                completed_job(2, start=10.0, nodes=4)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=0.0)
        assert report.ok

    def test_dependency_violation(self):
        parent = completed_job(1, start=0.0, runtime=100.0)
        child = completed_job(2, start=50.0, deps={1})
        report = validate_schedule([parent, child], total_nodes=4,
                                   bb_capacity=0.0)
        assert any(v.kind == "dependency" for v in report.violations)

    def test_ssd_tier_violation(self):
        jobs = [completed_job(1, nodes=3, ssd=200.0)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=0.0,
                                   ssd_tiers={128.0: 2, 256.0: 2})
        assert any(v.kind == "ssd" for v in report.violations)

    def test_duplicate_ids(self):
        jobs = [completed_job(1), completed_job(1)]
        report = validate_schedule(jobs, total_nodes=4, bb_capacity=0.0)
        assert any(v.kind == "duplicate" for v in report.violations)

    def test_raise_if_invalid(self):
        job = Job(jid=1, submit_time=0.0, runtime=1.0, walltime=1.0, nodes=1)
        job.mark_queued()
        report = validate_schedule([job], total_nodes=1, bb_capacity=0.0)
        with pytest.raises(SchedulingError):
            report.raise_if_invalid()

    def test_violation_str(self):
        v = Violation(kind="capacity", message="too much")
        assert "capacity" in str(v)
