"""Base-scheduler priority policies: FCFS and WFP."""

import pytest

from repro.errors import ConfigurationError
from repro.policies import FCFS, WFP
from repro.simulator.job import Job


def make_job(jid, submit, nodes=1, walltime=3600.0):
    return Job(jid=jid, submit_time=submit, runtime=100.0,
               walltime=walltime, nodes=nodes)


class TestFCFS:
    def test_orders_by_submit_time(self):
        jobs = [make_job(1, 30.0), make_job(2, 10.0), make_job(3, 20.0)]
        ordered = FCFS().order(jobs, now=100.0)
        assert [j.jid for j in ordered] == [2, 3, 1]

    def test_ties_broken_by_jid(self):
        jobs = [make_job(5, 10.0), make_job(2, 10.0)]
        ordered = FCFS().order(jobs, now=100.0)
        assert [j.jid for j in ordered] == [2, 5]

    def test_order_is_stable_under_now(self):
        jobs = [make_job(1, 30.0), make_job(2, 10.0)]
        assert [j.jid for j in FCFS().order(jobs, 50.0)] == \
               [j.jid for j in FCFS().order(jobs, 5000.0)]

    def test_name(self):
        assert FCFS().name == "fcfs"


class TestWFP:
    def test_prefers_large_jobs_at_equal_wait(self):
        small = make_job(1, 0.0, nodes=8)
        large = make_job(2, 0.0, nodes=1024)
        ordered = WFP().order([small, large], now=1000.0)
        assert ordered[0].jid == 2

    def test_wait_grows_priority(self):
        waited = make_job(1, 0.0, nodes=10)
        fresh = make_job(2, 990.0, nodes=10)
        ordered = WFP().order([waited, fresh], now=1000.0)
        assert ordered[0].jid == 1

    def test_short_walltime_boosts_priority(self):
        # Normalising by walltime lets short jobs accumulate priority faster.
        short = make_job(1, 0.0, nodes=10, walltime=600.0)
        long = make_job(2, 0.0, nodes=10, walltime=6000.0)
        ordered = WFP().order([short, long], now=300.0)
        assert ordered[0].jid == 1

    def test_cubic_exponent_value(self):
        wfp = WFP()
        job = make_job(1, 0.0, nodes=10, walltime=100.0)
        # wait/walltime = 2 → priority = 10 * 8
        assert wfp.priority(job, now=200.0) == pytest.approx(80.0)

    def test_zero_wait_zero_priority(self):
        job = make_job(1, 100.0, nodes=10)
        assert WFP().priority(job, now=100.0) == 0.0

    def test_negative_wait_clamped(self):
        job = make_job(1, 100.0, nodes=10)
        assert WFP().priority(job, now=50.0) == 0.0

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            WFP(exponent=0.0)

    def test_capability_mission(self):
        """WFP realises ALCF's large-job preference (§4.4): with equal
        normalised wait, bigger jobs always outrank smaller ones."""
        jobs = [make_job(i, 0.0, nodes=2**i) for i in range(1, 6)]
        ordered = WFP().order(jobs, now=500.0)
        assert [j.jid for j in ordered] == [5, 4, 3, 2, 1]
