"""Workload characterisation statistics."""

import numpy as np
import pytest

from repro.workloads import generate, theta_profile, THETA
from repro.workloads.stats import DistributionSummary, characterize, render_stats


@pytest.fixture(scope="module")
def trace():
    return generate(theta_profile(n_jobs=200, machine=THETA.scaled(8)), seed=9)


class TestDistributionSummary:
    def test_of_values(self):
        s = DistributionSummary.of(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.maximum == 4.0

    def test_empty(self):
        s = DistributionSummary.of(np.array([]))
        assert s.count == 0
        assert s.mean == 0.0

    def test_percentile_ordering(self):
        s = DistributionSummary.of(np.arange(100, dtype=float))
        assert s.median <= s.p90 <= s.maximum


class TestCharacterize:
    def test_basic(self, trace):
        stats = characterize(trace)
        assert stats.n_jobs == 200
        assert stats.span_seconds > 0
        assert stats.nodes.count == 200
        assert 0 <= stats.bb_fraction <= 1

    def test_offered_load_matches_trace(self, trace):
        stats = characterize(trace)
        assert stats.offered_node_load == pytest.approx(trace.offered_load())

    def test_walltime_factors_at_least_one(self, trace):
        stats = characterize(trace)
        assert stats.walltime_factor.median >= 1.0

    def test_power_of_two_clustering_present(self, trace):
        stats = characterize(trace)
        assert stats.power_of_two_fraction > 0.3

    def test_bb_load_nonnegative(self, trace):
        assert characterize(trace).offered_bb_load >= 0.0


class TestRender:
    def test_mentions_headline_numbers(self, trace):
        stats = characterize(trace)
        text = render_stats(stats)
        assert trace.name in text
        assert "node requests" in text
        assert "offered load" in text
