"""Workload distribution samplers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.workloads.distributions import (
    bounded_pareto,
    choice_weighted,
    exponential_interarrivals,
    power_of_two_sizes,
    truncated_lognormal,
    walltime_estimates,
)


@pytest.fixture
def rng():
    return make_rng(123)


class TestTruncatedLognormal:
    def test_bounds_respected(self, rng):
        x = truncated_lognormal(rng, 5000, mean=100.0, sigma=2.0, low=10.0, high=500.0)
        assert (x >= 10.0).all() and (x <= 500.0).all()

    def test_median_near_mean_parameter(self, rng):
        x = truncated_lognormal(rng, 20000, mean=100.0, sigma=0.5, low=1.0, high=1e6)
        assert np.median(x) == pytest.approx(100.0, rel=0.05)

    def test_invalid_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            truncated_lognormal(rng, 1, mean=1.0, sigma=1.0, low=10.0, high=5.0)

    def test_invalid_params(self, rng):
        with pytest.raises(ConfigurationError):
            truncated_lognormal(rng, 1, mean=-1.0, sigma=1.0, low=1.0, high=2.0)


class TestPowerOfTwoSizes:
    def test_bounds(self, rng):
        n = power_of_two_sizes(rng, 2000, min_nodes=1, max_nodes=512,
                               log_mean=np.log(16), log_sigma=1.5)
        assert (n >= 1).all() and (n <= 512).all()
        assert n.dtype == np.int64

    def test_power_of_two_clustering(self, rng):
        n = power_of_two_sizes(rng, 5000, min_nodes=1, max_nodes=4096,
                               log_mean=np.log(64), log_sigma=1.0,
                               exact_fraction=1.0)
        inner = n[(n > 1) & (n < 4096)]  # clipping can break the property
        assert (np.log2(inner) == np.round(np.log2(inner))).all()

    def test_zero_exact_fraction_spreads(self, rng):
        n = power_of_two_sizes(rng, 5000, min_nodes=1, max_nodes=4096,
                               log_mean=np.log(64), log_sigma=1.0,
                               exact_fraction=0.0)
        non_p2 = np.log2(n) != np.round(np.log2(n))
        assert non_p2.mean() > 0.5

    def test_invalid_range(self, rng):
        with pytest.raises(ConfigurationError):
            power_of_two_sizes(rng, 1, min_nodes=10, max_nodes=5,
                               log_mean=1.0, log_sigma=1.0)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            power_of_two_sizes(rng, 1, min_nodes=1, max_nodes=2,
                               log_mean=1.0, log_sigma=1.0, exact_fraction=2.0)


class TestWalltimeEstimates:
    def test_never_below_runtime(self, rng):
        rt = np.full(1000, 3600.0)
        wt = walltime_estimates(rng, rt)
        assert (wt >= rt).all()

    def test_quantisation(self, rng):
        rt = np.full(1000, 3700.0)
        wt = walltime_estimates(rng, rt, quantum=1800.0)
        assert (np.mod(wt, 1800.0) == 0).all()

    def test_exact_fraction(self, rng):
        rt = np.full(5000, 1800.0)
        wt = walltime_estimates(rng, rt, exact_fraction=1.0, quantum=1800.0)
        assert (wt == rt).all()

    def test_overestimation_bounded(self, rng):
        rt = np.full(5000, 3600.0)
        wt = walltime_estimates(rng, rt, max_factor=2.0, quantum=0.0,
                                exact_fraction=0.0)
        assert (wt <= 2.0 * rt).all()

    def test_invalid_factor(self, rng):
        with pytest.raises(ConfigurationError):
            walltime_estimates(rng, np.ones(1), max_factor=0.5)


class TestExponentialInterarrivals:
    def test_mean_matches_rate(self, rng):
        gaps = exponential_interarrivals(rng, 50000, rate=0.1)
        assert gaps.mean() == pytest.approx(10.0, rel=0.05)

    def test_nonnegative(self, rng):
        assert (exponential_interarrivals(rng, 100, rate=1.0) >= 0).all()

    def test_invalid_rate(self, rng):
        with pytest.raises(ConfigurationError):
            exponential_interarrivals(rng, 1, rate=0.0)


class TestBoundedPareto:
    def test_bounds(self, rng):
        x = bounded_pareto(rng, 10000, alpha=0.5, low=1.0, high=1000.0)
        assert (x >= 1.0).all() and (x <= 1000.0).all()

    def test_heavy_tail_mass_near_low(self, rng):
        x = bounded_pareto(rng, 20000, alpha=1.5, low=1.0, high=1000.0)
        assert np.median(x) < 5.0

    def test_smaller_alpha_heavier_tail(self, rng):
        light = bounded_pareto(make_rng(1), 20000, alpha=2.0, low=1.0, high=1e5)
        heavy = bounded_pareto(make_rng(1), 20000, alpha=0.3, low=1.0, high=1e5)
        assert heavy.mean() > light.mean()

    def test_invalid_params(self, rng):
        with pytest.raises(ConfigurationError):
            bounded_pareto(rng, 1, alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ConfigurationError):
            bounded_pareto(rng, 1, alpha=1.0, low=2.0, high=1.0)


class TestChoiceWeighted:
    def test_respects_weights(self, rng):
        x = choice_weighted(rng, [0.0, 1.0], [0.0, 1.0], 100)
        assert (x == 1.0).all()

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            choice_weighted(rng, [], [], 1)

    def test_bad_weights(self, rng):
        with pytest.raises(ConfigurationError):
            choice_weighted(rng, [1.0], [-1.0], 1)
        with pytest.raises(ConfigurationError):
            choice_weighted(rng, [1.0, 2.0], [0.0, 0.0], 1)
