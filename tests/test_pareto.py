"""Pareto-dominance utilities."""

import numpy as np
import pytest

from repro.core.pareto import non_dominated_mask, pareto_front_2d, unique_front
from repro.errors import SolverError


class TestNonDominatedMask:
    def test_empty(self):
        assert non_dominated_mask(np.zeros((0, 2))).shape == (0,)

    def test_single_point(self):
        assert non_dominated_mask(np.array([[1.0, 2.0]])).tolist() == [True]

    def test_simple_domination(self):
        F = np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])
        assert non_dominated_mask(F).tolist() == [True, False, True]

    def test_equal_points_both_kept(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert non_dominated_mask(F).tolist() == [True, True]

    def test_weak_domination(self):
        # (2,1) dominates (2,0): equal in f1, better in f2.
        F = np.array([[2.0, 1.0], [2.0, 0.0]])
        assert non_dominated_mask(F).tolist() == [True, False]

    def test_three_objectives(self):
        F = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [0.1, 0.1, 0.1]], dtype=float)
        assert non_dominated_mask(F).tolist() == [True, True, True, True]

    def test_1d_rejected(self):
        with pytest.raises(SolverError):
            non_dominated_mask(np.array([1.0, 2.0]))

    def test_large_input_chunked_path(self):
        rng = np.random.default_rng(0)
        F = rng.random((5000, 2))
        mask = non_dominated_mask(F)
        # Cross-check against the 2-D specialised algorithm.
        idx2d = set(pareto_front_2d(F).tolist())
        assert set(np.flatnonzero(mask).tolist()) == idx2d


class TestParetoFront2D:
    def test_matches_quadratic(self):
        rng = np.random.default_rng(1)
        F = rng.integers(0, 50, size=(300, 2)).astype(float)
        fast = set(pareto_front_2d(F).tolist())
        slow = set(np.flatnonzero(non_dominated_mask(F)).tolist())
        assert fast == slow

    def test_sorted_by_first_objective(self):
        F = np.array([[1.0, 5.0], [3.0, 2.0], [2.0, 3.0]])
        idx = pareto_front_2d(F)
        f1 = F[idx, 0]
        assert (np.diff(f1) <= 0).all()

    def test_duplicates_kept(self):
        F = np.array([[2.0, 2.0], [2.0, 2.0], [1.0, 1.0]])
        assert sorted(pareto_front_2d(F).tolist()) == [0, 1]

    def test_empty(self):
        assert pareto_front_2d(np.zeros((0, 2))).size == 0

    def test_wrong_shape_rejected(self):
        with pytest.raises(SolverError):
            pareto_front_2d(np.zeros((3, 3)))

    def test_monotone_chain_all_kept(self):
        F = np.array([[i, 10 - i] for i in range(10)], dtype=float)
        assert pareto_front_2d(F).size == 10


class TestUniqueFront:
    def test_dedup_rows(self):
        genes = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)
        obj = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        g, o = unique_front(genes, obj)
        assert g.shape[0] == 2
        assert o.shape[0] == 2

    def test_alignment_preserved(self):
        genes = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        obj = np.array([[0.0, 5.0], [3.0, 0.0]])
        g, o = unique_front(genes, obj)
        for row, val in zip(g, o):
            if row.tolist() == [0, 1]:
                assert val.tolist() == [0.0, 5.0]

    def test_mismatch_rejected(self):
        with pytest.raises(SolverError):
            unique_front(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty(self):
        g, o = unique_front(np.zeros((0, 3)), np.zeros((0, 2)))
        assert g.shape[0] == 0
