"""Differential tests: the fast paths change nothing but speed.

Two pure performance features are pinned here against their reference
paths, which must be *byte-identical* at every level:

* the GA evaluation cache (:mod:`repro.core.evalcache`, vs
  ``eval_cache=False``) — solver outputs (ParetoSet genes and
  objectives), full-run fingerprints for every §4 method under both
  site policies, and runs that pass through a checkpoint/resume cycle;
* the array-backed engine fast path (vectorized queue ordering, the
  FCFS order cache, incremental planned releases, batch event pops; vs
  ``fast_engine=False`` / CLI ``--no-fast-engine``) — full-run
  fingerprints for every §4 method, plus the ordering permutation
  itself under score ties.

Any divergence — an RNG draw consumed differently, a float assembled
from a different batch shape, a sort tie broken differently — shows up
here as a hard failure.
"""

import dataclasses

import numpy as np
import pytest

from repro.checkpoint.verify import fingerprint_digest, verify_resume
from repro.core.ga import MOGASolver
from repro.core.problem import SelectionProblem, SSDSelectionProblem
from repro.core.scalar import ScalarGASolver
from repro.experiments import get_scale, get_workload
from repro.experiments.runner import run_one
from repro.methods.registry import METHODS_SECTION4
from repro.policies import FCFS, WFP
from repro.policies.base import PriorityPolicy
from repro.simulator.job import Job
from repro.simulator.jobtable import JobTable

#: Deliberately tiny: 16 method×workload fingerprint pairs run per test
#: session, each pair simulating the trace twice.  The name must stay a
#: registered scale — get_workload resolves machine shrink factors by it.
TINY = dataclasses.replace(
    get_scale("smoke"), n_jobs=60, generations=12, population=8, window=8,
)

#: One FCFS site (Cori) and one WFP site (Theta), per §4.3.
WORKLOADS = ("Cori-S1", "Theta-S2")


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


def random_selection_problem(rng):
    w = int(rng.integers(3, 12))
    demands = np.column_stack([
        rng.integers(1, 50, size=w).astype(float),
        rng.integers(0, 80, size=w).astype(float),
    ])
    return SelectionProblem(
        demands, [float(rng.integers(10, 120)), float(rng.integers(0, 150))]
    )


def random_ssd_problem(rng):
    w = int(rng.integers(3, 10))
    jobs = [
        make_job(j + 1, int(rng.integers(1, 4)),
                 bb=float(rng.integers(0, 30)),
                 ssd=float(rng.choice([0.0, 64.0, 200.0])))
        for j in range(w)
    ]
    tiers = {128.0: int(rng.integers(1, 5)), 256.0: int(rng.integers(1, 5))}
    return SSDSelectionProblem(
        jobs, free_nodes=sum(tiers.values()),
        free_bb=float(rng.integers(0, 60)),
        free_tiers=tiers,
    )


def assert_pareto_identical(a, b):
    """Byte-level equality of two ParetoSets (genes and objectives)."""
    assert a.genes.tobytes() == b.genes.tobytes()
    assert a.objectives.tobytes() == b.objectives.tobytes()


class TestSolverDifferential:
    """Cache on/off byte-identity at the solver level."""

    @pytest.mark.parametrize("selection", ["age", "crowding"])
    @pytest.mark.parametrize("trial", range(6))
    def test_moga_selection_problem(self, selection, trial):
        rng = np.random.default_rng(1000 + trial)
        problem = random_selection_problem(rng)
        seed = int(rng.integers(0, 2**31))
        kw = dict(generations=25, population=10, selection=selection)
        on = MOGASolver(eval_cache=True, seed=seed, **kw).solve(problem)
        off = MOGASolver(eval_cache=False, seed=seed, **kw).solve(problem)
        assert_pareto_identical(on, off)

    @pytest.mark.parametrize("trial", range(6))
    def test_moga_ssd_problem(self, trial):
        rng = np.random.default_rng(2000 + trial)
        problem = random_ssd_problem(rng)
        seed = int(rng.integers(0, 2**31))
        kw = dict(generations=25, population=10)
        on = MOGASolver(eval_cache=True, seed=seed, **kw).solve(problem)
        off = MOGASolver(eval_cache=False, seed=seed, **kw).solve(problem)
        assert_pareto_identical(on, off)

    @pytest.mark.parametrize("trial", range(4))
    def test_scalar_solver(self, trial):
        rng = np.random.default_rng(3000 + trial)
        problem = random_selection_problem(rng)
        seed = int(rng.integers(0, 2**31))
        coeffs = [1.0, 0.5]
        kw = dict(generations=25, population=10)
        on = ScalarGASolver(coeffs, eval_cache=True, seed=seed, **kw)
        off = ScalarGASolver(coeffs, eval_cache=False, seed=seed, **kw)
        assert_pareto_identical(on.solve(problem), off.solve(problem))

    def test_cache_actually_engages(self):
        """The on-path must really memoize, or these tests prove nothing."""
        problem = random_selection_problem(np.random.default_rng(7))
        solver = MOGASolver(generations=30, population=10, seed=42,
                            eval_cache=True)
        solver.solve(problem)
        stats = solver.eval_cache_stats
        assert stats is not None and stats["hits"] > 0

    def test_tiny_capacity_still_identical(self):
        """Evictions cost re-evaluation, never correctness."""
        # Wide window + hot mutation: enough distinct chromosomes to
        # overflow a 4-entry store many times over.
        rng = np.random.default_rng(11)
        demands = np.column_stack([
            rng.integers(1, 20, size=14).astype(float),
            rng.integers(0, 30, size=14).astype(float),
        ])
        problem = SelectionProblem(demands, [60.0, 90.0])
        kw = dict(generations=30, population=10, mutation=0.05, seed=42)
        small = MOGASolver(eval_cache=True, cache_capacity=4, **kw)
        off = MOGASolver(eval_cache=False, **kw)
        assert_pareto_identical(small.solve(problem), off.solve(problem))
        assert small.eval_cache_stats["evictions"] > 0


class TestRunDifferential:
    """Cache on/off fingerprint identity for every §4 method."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("method", METHODS_SECTION4)
    def test_fingerprints_identical(self, method, workload):
        on = run_one(get_workload(workload, TINY), method, TINY,
                     eval_cache=True)
        off = run_one(get_workload(workload, TINY), method, TINY,
                      eval_cache=False)
        assert fingerprint_digest(on) == fingerprint_digest(off)


class TestFastEngineDifferential:
    """Fast-engine vs reference-engine fingerprint identity, every §4 method."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("method", METHODS_SECTION4)
    def test_fingerprints_identical(self, method, workload):
        fast = run_one(get_workload(workload, TINY), method, TINY,
                       fast_engine=True)
        ref = run_one(get_workload(workload, TINY), method, TINY,
                      fast_engine=False)
        assert fingerprint_digest(fast) == fingerprint_digest(ref)

    def test_both_fast_paths_off_matches_both_on(self):
        """The two reference knobs compose: everything off still matches."""
        workload, method = "Theta-S2", "BBSched"
        on = run_one(get_workload(workload, TINY), method, TINY,
                     eval_cache=True, fast_engine=True)
        off = run_one(get_workload(workload, TINY), method, TINY,
                      eval_cache=False, fast_engine=False)
        assert fingerprint_digest(on) == fingerprint_digest(off)


class _ModuloPolicy(PriorityPolicy):
    """Custom policy without priority_array: exercises the per-job
    fallback inside the vectorized path, with heavy score ties."""

    name = "modulo"

    def priority(self, job, now):
        return float(job.nodes % 3)


class TestOrderDifferential:
    """The lexsort ordering equals the reference tuple sort, ties included."""

    @staticmethod
    def _tied_jobs(rng, n):
        # Coarse value pools force collisions in every key component the
        # policies score on: FCFS ties on submit_time, WFP additionally on
        # walltime/nodes; jid stays the unique total-order tie-breaker.
        return [
            Job(
                jid=i + 1,
                submit_time=float(rng.choice([0.0, 10.0, 20.0, 30.0])),
                runtime=5.0,
                walltime=float(rng.choice([10.0, 40.0])),
                nodes=int(rng.integers(1, 5)),
                bb=float(rng.choice([0.0, 8.0])),
                ssd=0.0,
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("policy_cls", [FCFS, WFP, _ModuloPolicy])
    @pytest.mark.parametrize("trial", range(8))
    def test_vectorized_order_matches_reference(self, policy_cls, trial):
        rng = np.random.default_rng(4000 + trial)
        n = int(rng.integers(2, 40))
        jobs = self._tied_jobs(rng, n)
        table = JobTable(jobs)
        # The engine orders arbitrary sub-queues of the full table.
        sub = rng.permutation(n)[: max(2, int(rng.integers(2, n + 1)))]
        queue = [jobs[i] for i in sub]
        policy = policy_cls()
        now = float(rng.choice([15.0, 35.0, 1000.0]))
        ref = policy.order(queue, now)
        vec = policy.order(queue, now, table=table)
        assert [j.jid for j in vec] == [j.jid for j in ref]

    def test_all_scores_tied_falls_back_to_submit_then_jid(self):
        jobs = [
            Job(jid=j, submit_time=5.0, runtime=1.0, walltime=10.0, nodes=2)
            for j in (3, 1, 2)
        ]
        table = JobTable(jobs)
        ordered = _ModuloPolicy().order(jobs, 100.0, table=table)
        assert [j.jid for j in ordered] == [1, 2, 3]


class TestResumeDifferential:
    """The cache survives a checkpoint/resume cycle without divergence.

    The memo store is dropped on pickling (``MOGASolver.__getstate__``)
    and rebuilt lazily, so a resumed run re-warms it mid-trace — the
    riskiest path for a stale-entry bug.
    """

    def test_resume_with_cache_matches_no_cache_reference(self, tmp_path):
        workload, method = "Theta-S2", "BBSched"
        # verify_resume asserts uninterrupted == interrupted+resumed, all
        # three runs with the cache on.
        report = verify_resume(
            get_workload(workload, TINY), method, TINY,
            eval_cache=True, stop_fraction=0.5, workdir=str(tmp_path),
        )
        # The shared digest must also equal the cache-off reference.
        off = run_one(get_workload(workload, TINY), method, TINY,
                      eval_cache=False)
        assert report.digest == fingerprint_digest(off)
