"""Fault-injection building blocks: scenarios, injector streams, retry
policy arithmetic, and drain/restore capacity invariants."""

import pytest

from repro.errors import ConfigurationError, ResilienceError
from repro.resilience import (
    SCENARIOS,
    FaultInjector,
    FaultScenario,
    RetryPolicy,
    get_scenario,
)
from repro.simulator.cluster import Cluster
from repro.simulator.ssd_pool import SSDPool


def make_injector(scenario, *, tiers=None, bb=1000.0):
    inj = FaultInjector(scenario)
    inj.bind(ssd_tiers=tiers or {0.0: 100}, bb_capacity=bb)
    return inj


class TestFaultScenario:
    def test_default_is_disabled(self):
        assert not FaultScenario().enabled

    def test_any_positive_mtbf_enables(self):
        assert FaultScenario(node_mtbf=1.0).enabled
        assert FaultScenario(bb_mtbf=1.0).enabled
        assert FaultScenario(job_mtbf=1.0).enabled

    @pytest.mark.parametrize("kw", [
        {"node_mtbf": -1.0},
        {"node_mttr": -1.0},
        {"bb_mtbf": -5.0},
        {"job_mtbf": -0.1},
        {"mttr_sigma": 0.0},
        {"nodes_per_failure": 0},
        {"bb_degrade_fraction": 0.0},
        {"bb_degrade_fraction": 1.5},
    ])
    def test_invalid_knobs_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            FaultScenario(**kw)

    def test_named_scenarios_enabled(self):
        for name in SCENARIOS:
            assert get_scenario(name).enabled

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("apocalypse")


class TestFaultInjectorStreams:
    def test_seeded_determinism(self):
        sc = FaultScenario(seed=7, node_mtbf=3600.0, bb_mtbf=7200.0,
                           job_mtbf=1800.0)

        def stream():
            inj = make_injector(sc, tiers={128.0: 6, 256.0: 4})
            t = 0.0
            out = []
            for _ in range(25):
                nf = inj.next_node_failure(t)
                out.append((nf.time, nf.count, nf.tier, nf.repair))
                out.append(inj.next_bb_degrade(t))
                out.append(inj.next_job_fail(t))
                t = nf.time
            return out

        assert stream() == stream()

    def test_different_seeds_differ(self):
        a = make_injector(FaultScenario(seed=1, node_mtbf=3600.0))
        b = make_injector(FaultScenario(seed=2, node_mtbf=3600.0))
        assert a.next_node_failure(0.0) != b.next_node_failure(0.0)

    def test_streams_compose_independently(self):
        # Enabling BB/job faults must not perturb the node-failure schedule.
        node_only = make_injector(FaultScenario(seed=3, node_mtbf=3600.0))
        combined = make_injector(
            FaultScenario(seed=3, node_mtbf=3600.0, bb_mtbf=7200.0,
                          job_mtbf=1800.0))
        t = 0.0
        for _ in range(10):
            a = node_only.next_node_failure(t)
            b = combined.next_node_failure(t)
            combined.next_bb_degrade(t)
            combined.next_job_fail(t)
            assert a == b
            t = a.time

    def test_disabled_kinds_return_none(self):
        inj = make_injector(FaultScenario(seed=0, node_mtbf=3600.0))
        assert inj.next_bb_degrade(0.0) is None
        assert inj.next_job_fail(0.0) is None

    def test_zero_bb_capacity_disables_bb_faults(self):
        inj = make_injector(FaultScenario(seed=0, bb_mtbf=3600.0), bb=0.0)
        assert inj.next_bb_degrade(0.0) is None

    def test_draw_requires_bind(self):
        inj = FaultInjector(FaultScenario(seed=0, node_mtbf=3600.0))
        with pytest.raises(ResilienceError):
            inj.next_node_failure(0.0)

    def test_incidents_are_future_and_repairable(self):
        inj = make_injector(SCENARIOS["harsh"], tiers={128.0: 50, 256.0: 50})
        t = 100.0
        for _ in range(20):
            nf = inj.next_node_failure(t)
            assert nf.time > t
            assert nf.repair > 0
            assert nf.tier in (128.0, 256.0)
            t = nf.time

    def test_pick_victim(self):
        inj = make_injector(FaultScenario(seed=0, job_mtbf=100.0))
        assert inj.pick_victim([42]) == 42
        assert inj.pick_victim([3, 7, 11]) in (3, 7, 11)
        with pytest.raises(ResilienceError):
            inj.pick_victim([])


class TestRetryPolicy:
    def test_should_retry_counts_kills(self):
        p = RetryPolicy(max_attempts=2)
        assert p.should_retry(1)
        assert p.should_retry(2)
        assert not p.should_retry(3)

    def test_zero_attempts_abandons_immediately(self):
        assert not RetryPolicy(max_attempts=0).should_retry(1)

    def test_exponential_backoff_with_clamp(self):
        p = RetryPolicy(backoff=60.0, backoff_factor=2.0, max_backoff=200.0)
        assert p.requeue_delay(1) == 60.0
        assert p.requeue_delay(2) == 120.0
        assert p.requeue_delay(3) == 200.0   # clamped from 240

    def test_requeue_delay_needs_a_kill(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().requeue_delay(0)

    @pytest.mark.parametrize("kw", [
        {"max_attempts": -1},
        {"backoff": -1.0},
        {"backoff_factor": 0.5},
        {"backoff": 100.0, "max_backoff": 50.0},
    ])
    def test_invalid_policy_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kw)


class TestSSDPoolDrain:
    def test_drain_takes_only_free_nodes(self):
        pool = SSDPool({128.0: 4})
        asg = pool.allocate(3, 64.0)
        assert pool.drain(4, 128.0) == 1       # only one node was free
        assert pool.free_at_least(0.0) == 0
        pool.release(asg)
        assert pool.free_at_least(0.0) == 3    # total shrank with the drain

    def test_restore_reverses_drain(self):
        pool = SSDPool({128.0: 4})
        assert pool.drain(2, 128.0) == 2
        pool.restore(2, 128.0)
        assert pool.free_at_least(0.0) == 4
        assert pool.total_per_tier() == {128.0: 4}

    def test_unknown_tier_rejected(self):
        pool = SSDPool({128.0: 4})
        with pytest.raises(ResilienceError):
            pool.drain(1, 999.0)
        with pytest.raises(ResilienceError):
            pool.restore(1, 999.0)

    def test_negative_counts_rejected(self):
        pool = SSDPool({128.0: 4})
        with pytest.raises(ResilienceError):
            pool.drain(-1, 128.0)
        with pytest.raises(ResilienceError):
            pool.restore(-1, 128.0)


class TestClusterFailRestore:
    def test_fail_and_restore_nodes(self):
        cluster = Cluster(nodes=10, bb_capacity=0.0)
        assert cluster.fail_nodes(3, 0.0) == 3
        assert cluster.nodes_offline == 3
        assert cluster.nodes_online == 7
        assert cluster.nodes_free == 7
        cluster.restore_nodes(3, 0.0)
        assert cluster.nodes_offline == 0
        assert cluster.nodes_free == 10

    def test_cannot_restore_more_than_failed(self):
        cluster = Cluster(nodes=10, bb_capacity=0.0)
        cluster.fail_nodes(2, 0.0)
        with pytest.raises(ResilienceError):
            cluster.restore_nodes(3, 0.0)

    def test_bb_degrade_clamps_and_restores(self):
        cluster = Cluster(nodes=10, bb_capacity=100.0)
        assert cluster.degrade_bb(30.0) == 30.0
        assert cluster.bb_free == pytest.approx(70.0)
        # A second degrade larger than what is left is clamped.
        assert cluster.degrade_bb(90.0) == pytest.approx(70.0)
        assert cluster.bb_free == 0.0
        cluster.restore_bb(100.0)
        assert cluster.bb_free == pytest.approx(100.0)

    def test_bb_free_never_negative_under_load(self):
        from repro.simulator.job import Job

        cluster = Cluster(nodes=10, bb_capacity=100.0)
        job = Job(jid=1, submit_time=0.0, runtime=10.0, walltime=10.0,
                  nodes=2, bb=80.0)
        cluster.allocate(job)
        cluster.degrade_bb(50.0)               # clamped to the 20 GB still free
        assert cluster.bb_free >= 0.0
        # A zero-BB job must still pass the fits() check.
        free = cluster.available()
        assert free.bb >= 0.0
