"""Window-solver subsystem: registry, MILP exactness, optimality yardstick.

The load-bearing guarantee is exactness: the MILP solver must reproduce
the exhaustive solver's true Pareto front bit-for-bit on every window it
both can solve (w ≤ 12 here, across Cori- and Theta-like scales), and
must keep solving where exhaustive refuses (w = 30 > MAX_EXHAUSTIVE_W).
Both MILP backends — scipy/HiGHS and the pure-Python branch-and-bound —
are held to the same standard, so the ``repro[milp]`` extra changes
speed, never answers.
"""

import importlib.util

import numpy as np
import pytest

from repro.core.bbsched import BBSchedSelector
from repro.core.problem import SelectionProblem, SSDSelectionProblem
from repro.errors import ConfigurationError, SolverError
from repro.methods import SOLVER_BACKED, available_methods, make_selector
from repro.methods.base import SystemCapacity
from repro.simulator.cluster import Available
from repro.simulator.job import Job
from repro.solvers import (
    ExhaustiveWindowSolver,
    GAWindowSolver,
    MILPWindowSolver,
    OptimalityYardstick,
    ScalarGAWindowSolver,
    WindowSolver,
    available_window_solvers,
    make_window_solver,
    register_window_solver,
    solver_matrix,
)
from repro.solvers import milp as milp_mod
from repro.solvers import registry as solver_registry

def _scipy_available():
    try:
        return importlib.util.find_spec("scipy") is not None
    except Exception:  # a broken/blocked scipy install counts as absent
        return False


HAS_SCIPY = _scipy_available()

#: Backends every exactness test runs under on this machine.
BACKENDS = ("scipy", "python") if HAS_SCIPY else ("python",)

#: Scalarization directions exercised against each instance.
COEFF_SETS = (
    (1.0, 1.0),
    (1.0, 0.0),
    (0.0, 1.0),
    (0.7, 0.3),
)


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=600.0, walltime=900.0,
               nodes=nodes, bb=bb, ssd=ssd)


def random_problem(rng, w, *, total_nodes, total_bb, cap_frac=0.6, forced=()):
    """A BBSched-shaped instance: power-of-two nodes, loosely correlated bb."""
    nodes = 2 ** rng.integers(0, 12, size=w)
    nodes = np.minimum(nodes, max(1, total_nodes // 4))
    bb = np.where(
        rng.random(w) < 0.6,
        rng.integers(0, max(2, total_bb // 20), size=w),
        0,
    ).astype(float)
    jobs = [make_job(i, int(nodes[i]), float(bb[i])) for i in range(w)]
    return SelectionProblem.from_window(
        jobs, cap_frac * total_nodes, cap_frac * total_bb, forced=forced
    )


def front_as_set(pareto):
    return {tuple(np.round(row, 6)) for row in np.asarray(pareto.objectives, dtype=float)}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_stock_solvers_registered(self):
        names = available_window_solvers()
        for expected in ("ga", "scalar", "milp", "exhaustive"):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="milp"):
            make_window_solver("simulated-annealing")

    def test_matrix_marks_exactness(self):
        rows = {row["name"]: row for row in solver_matrix()}
        assert rows["milp"]["exact"] is True
        assert rows["exhaustive"]["exact"] is True
        assert rows["ga"]["exact"] is False
        assert rows["scalar"]["exact"] is False
        assert all(row["description"] for row in rows.values())

    def test_factory_types(self):
        assert isinstance(make_window_solver("ga"), GAWindowSolver)
        assert isinstance(make_window_solver("scalar"), ScalarGAWindowSolver)
        assert isinstance(make_window_solver("milp"), MILPWindowSolver)
        assert isinstance(make_window_solver("exhaustive"), ExhaustiveWindowSolver)

    def test_ga_knobs_reach_ga_solver(self):
        solver = make_window_solver("ga", generations=7, population=12, mutation=0.25)
        assert solver.generations == 7
        assert solver.population == 12
        assert solver.mutation == 0.25

    def test_plugin_registration(self):
        class EchoSolver(WindowSolver):
            name = "echo"
            exact = False

            def solve(self, problem, seed=None):
                return ExhaustiveWindowSolver().solve(problem, seed)

            def solve_scalar(self, problem, coeffs, seed=None):
                return ExhaustiveWindowSolver().solve_scalar(problem, coeffs, seed)

        register_window_solver("echo-test", lambda **kw: EchoSolver(), "test plugin")
        try:
            assert "echo-test" in available_window_solvers()
            solver = make_window_solver("echo-test")
            assert isinstance(solver, EchoSolver)
        finally:
            solver_registry._REGISTRY.pop("echo-test", None)
        assert "echo-test" not in available_window_solvers()


# ---------------------------------------------------------------------------
# MILP exactness vs exhaustive enumeration (w ≤ 12)
# ---------------------------------------------------------------------------


#: (label, total_nodes, total_bb) — Cori (§4.1) and Theta-like scales.
SCALES = (
    ("cori", 9_688, 1_500_000.0),
    ("theta", 4_392, 750_000.0),
)


class TestMILPMatchesExhaustive:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("label,total_nodes,total_bb", SCALES)
    def test_exact_front_all_small_widths(self, backend, label, total_nodes, total_bb):
        exhaustive = ExhaustiveWindowSolver()
        milp = MILPWindowSolver(backend=backend)
        rng = np.random.default_rng(hash((backend, label)) & 0xFFFF)
        for w in range(1, 13):
            problem = random_problem(rng, w, total_nodes=total_nodes, total_bb=total_bb)
            want = front_as_set(exhaustive.solve(problem))
            got = front_as_set(milp.solve(problem))
            assert got == want, f"front mismatch at w={w} ({label}/{backend})"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("label,total_nodes,total_bb", SCALES)
    def test_exact_scalar_all_small_widths(self, backend, label, total_nodes, total_bb):
        exhaustive = ExhaustiveWindowSolver()
        milp = MILPWindowSolver(backend=backend)
        rng = np.random.default_rng(hash((backend, label, "s")) & 0xFFFF)
        for w in range(1, 13):
            problem = random_problem(rng, w, total_nodes=total_nodes, total_bb=total_bb)
            for coeffs in COEFF_SETS:
                want = exhaustive.solve_scalar(problem, coeffs).fitness
                got = milp.solve_scalar(problem, coeffs).fitness
                assert got == pytest.approx(want, rel=1e-9, abs=1e-9), (
                    f"scalar mismatch at w={w} coeffs={coeffs} ({label}/{backend})"
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_genes_honoured(self, backend):
        rng = np.random.default_rng(11)
        problem = random_problem(
            rng, 10, total_nodes=2_000, total_bb=10_000.0, forced=(2, 5)
        )
        milp = MILPWindowSolver(backend=backend)
        front = milp.solve(problem)
        assert (front.genes[:, [2, 5]] == 1).all()
        best = milp.solve_scalar(problem, (1.0, 1.0))
        assert best.genes[2] == 1 and best.genes[5] == 1
        want = ExhaustiveWindowSolver().solve_scalar(problem, (1.0, 1.0)).fitness
        assert best.fitness == pytest.approx(want, rel=1e-9)

    def test_empty_window(self):
        problem = SelectionProblem(np.zeros((0, 2)), [10.0, 10.0])
        front = MILPWindowSolver().solve(problem)
        assert front.genes.shape[0] <= 1
        best = MILPWindowSolver().solve_scalar(problem, (1.0, 1.0))
        assert best.fitness == 0.0

    def test_solutions_feasible(self):
        rng = np.random.default_rng(23)
        milp = MILPWindowSolver()
        for w in (6, 10, 12):
            problem = random_problem(rng, w, total_nodes=4_392, total_bb=750_000.0)
            front = milp.solve(problem)
            assert problem.feasible(front.genes).all()


# ---------------------------------------------------------------------------
# Beyond the exhaustive wall (w = 30)
# ---------------------------------------------------------------------------


class TestBeyondExhaustiveWall:
    def _w30(self):
        rng = np.random.default_rng(42)
        return random_problem(
            rng, 30, total_nodes=9_688, total_bb=1_500_000.0, cap_frac=0.65
        )

    def test_exhaustive_refuses(self):
        with pytest.raises(SolverError, match="26"):
            ExhaustiveWindowSolver().solve(self._w30())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_milp_scalar_solves_w30(self, backend):
        problem = self._w30()
        best = MILPWindowSolver(backend=backend).solve_scalar(problem, (1.0, 1.0))
        assert problem.feasible(best.genes[None, :]).all()
        # The scalar optimum dominates any greedy seed's value.
        greedy = problem.greedy_chromosomes()
        greedy_best = float((problem.evaluate(greedy) @ np.ones(2)).max())
        assert best.fitness >= greedy_best - 1e-9

    def test_backends_agree_at_w30(self):
        if not HAS_SCIPY:
            pytest.skip("needs both backends")
        problem = self._w30()
        for coeffs in COEFF_SETS:
            a = MILPWindowSolver(backend="scipy").solve_scalar(problem, coeffs).fitness
            b = MILPWindowSolver(backend="python").solve_scalar(problem, coeffs).fitness
            assert a == pytest.approx(b, rel=1e-9, abs=1e-6)

    @pytest.mark.skipif(not HAS_SCIPY, reason="w=30 front sweep needs scipy speed")
    def test_milp_front_solves_w30(self):
        problem = self._w30()
        front = MILPWindowSolver(backend="scipy").solve(problem)
        assert len(front) >= 1
        assert problem.feasible(front.genes).all()
        # Front must be mutually non-dominated.
        objs = np.asarray(front.objectives, dtype=float)
        for i in range(len(objs)):
            dominated = (objs >= objs[i] - 1e-9).all(axis=1) & (
                objs > objs[i] + 1e-9
            ).any(axis=1)
            assert not dominated.any()


# ---------------------------------------------------------------------------
# Backend resolution and the milp extra
# ---------------------------------------------------------------------------


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            MILPWindowSolver(backend="gurobi")

    def test_scipy_requested_but_missing(self, monkeypatch):
        monkeypatch.setattr(milp_mod, "_load_scipy_milp", lambda: None)
        solver = MILPWindowSolver(backend="scipy")
        with pytest.raises(ConfigurationError, match=r"repro\[milp\]"):
            solver.solve_scalar(SelectionProblem(np.ones((2, 2)), [5.0, 5.0]), (1, 1))

    def test_auto_falls_back_to_python(self, monkeypatch):
        monkeypatch.setattr(milp_mod, "_load_scipy_milp", lambda: None)
        solver = MILPWindowSolver(backend="auto")
        # Non-integral node demands bypass the DP level decomposition and
        # force an actual 0/1 program through the resolved backend.
        rng = np.random.default_rng(5)
        demands = rng.random((8, 2)) * 10.0 + 0.1
        problem = SelectionProblem(demands, [25.0, 25.0])
        want = ExhaustiveWindowSolver().solve_scalar(problem, (1.0, 1.0)).fitness
        got = solver.solve_scalar(problem, (1.0, 1.0))
        assert got.fitness == pytest.approx(want, rel=1e-9)
        assert solver.stats["python"] > 0 and solver.stats["scipy"] == 0

    def test_stats_counters_move(self):
        solver = MILPWindowSolver()
        rng = np.random.default_rng(6)
        demands = rng.random((6, 2)) * 10.0 + 0.1
        problem = SelectionProblem(demands, [20.0, 20.0])
        solver.solve_scalar(problem, (1.0, 1.0))
        assert solver.stats["solves"] >= 1

    def test_milp_extra_declared(self):
        # The packaging satellite: `pip install repro[milp]` must exist.
        import pathlib
        import re

        text = (pathlib.Path(__file__).parent.parent / "pyproject.toml").read_text()
        assert re.search(r"^milp\s*=\s*\[\s*\"scipy", text, re.M)


# ---------------------------------------------------------------------------
# Unsupported formulations
# ---------------------------------------------------------------------------


def _ssd_problem():
    jobs = [make_job(1, 2, 0.0, 128.0), make_job(2, 2, 5.0, 256.0)]
    return SSDSelectionProblem(jobs, 4, 10.0, {128.0: 2, 256.0: 2})


class TestSupports:
    def test_milp_refuses_ssd_problem(self):
        solver = MILPWindowSolver()
        problem = _ssd_problem()
        assert solver.supports(problem) is False
        with pytest.raises(SolverError):
            solver.solve(problem)
        with pytest.raises(SolverError):
            solver.solve_scalar(problem, (1.0, 1.0, 1.0, 1.0))

    def test_ga_supports_everything(self):
        assert GAWindowSolver().supports(_ssd_problem())


# ---------------------------------------------------------------------------
# Selector integration
# ---------------------------------------------------------------------------


def _window_and_avail(rng, w=8):
    jobs = [
        make_job(i, int(2 ** rng.integers(0, 6)), float(rng.integers(0, 40)))
        for i in range(w)
    ]
    return jobs, Available(nodes=64, bb=120.0, ssd_free={})


class TestSelectorIntegration:
    def test_bbsched_with_milp_solver(self):
        rng = np.random.default_rng(3)
        window, avail = _window_and_avail(rng)
        sel = BBSchedSelector(seed=1, solver="milp")
        sel.bind(SystemCapacity(avail.nodes, avail.bb))
        picks = sel.select(window, avail)
        assert picks and all(0 <= i < len(window) for i in picks)

    def test_exact_solvers_ignore_rng(self):
        # Same picks from wildly different seeds: deterministic solvers
        # never touch the random stream.
        rng = np.random.default_rng(9)
        window, avail = _window_and_avail(rng)
        picks = []
        for seed in (1, 999):
            sel = BBSchedSelector(seed=seed, solver="milp")
            sel.bind(SystemCapacity(avail.nodes, avail.bb))
            picks.append(sel.select(window, avail))
        assert picks[0] == picks[1]

    def test_make_selector_routes_solver(self):
        for method in SOLVER_BACKED:
            sel = make_selector(method, solver="exhaustive", seed=7)
            assert isinstance(sel.solver, ExhaustiveWindowSolver), method

    def test_make_selector_ga_alias_is_default(self):
        stock = make_selector("BBSched", seed=7)
        alias = make_selector("BBSched", solver="ga", seed=7)
        assert type(alias.solver) is type(stock.solver)

    def test_make_selector_unknown_solver(self):
        with pytest.raises(ConfigurationError, match="window solver"):
            make_selector("BBSched", solver="quantum")

    def test_plan_based_listed(self):
        assert "Plan_Based" in available_methods()


# ---------------------------------------------------------------------------
# Optimality yardstick
# ---------------------------------------------------------------------------


class TestYardstick:
    def test_exact_on_exact_gap_is_zero(self):
        rng = np.random.default_rng(13)
        yd = OptimalityYardstick()
        milp = MILPWindowSolver()
        for w in (4, 8, 12):
            problem = random_problem(rng, w, total_nodes=2_000, total_bb=9_000.0)
            coeffs = (1.0, 1.0)
            best = milp.solve_scalar(problem, coeffs)
            gap = yd.measure(problem, coeffs, best.fitness)
            assert gap == pytest.approx(0.0, abs=1e-12)
        assert yd.summary()["count"] == 3
        assert yd.summary()["max"] == pytest.approx(0.0, abs=1e-12)

    def test_ga_gap_nonnegative(self):
        rng = np.random.default_rng(17)
        yd = OptimalityYardstick()
        ga = ScalarGAWindowSolver(generations=4, population=12, mutation=0.2)
        for trial in range(5):
            problem = random_problem(rng, 10, total_nodes=2_000, total_bb=9_000.0)
            coeffs = (1.0, 0.5)
            best = ga.solve_scalar(problem, coeffs, seed=trial)
            yd.measure(problem, coeffs, best.fitness)
        assert len(yd.gaps) == 5
        assert all(g >= 0.0 for g in yd.gaps)

    def test_unsupported_problem_skipped(self):
        yd = OptimalityYardstick()
        assert yd.measure(_ssd_problem(), (1.0, 1.0, 1.0, 1.0), 0.0) is None
        assert yd.skipped == 1 and yd.gaps == []
        assert yd.summary() is None

    def test_empty_front_skipped(self):
        rng = np.random.default_rng(19)
        problem = random_problem(rng, 4, total_nodes=500, total_bb=2_000.0)
        yd = OptimalityYardstick()

        class EmptyFront:
            objectives = np.zeros((0, 2))

            def __len__(self):
                return 0

        assert yd.measure_front(problem, (1.0, 1.0), EmptyFront()) is None
        assert yd.skipped == 1

    def test_gap_flows_into_run_telemetry(self):
        from repro.experiments.config import get_scale
        from repro.experiments.runner import run_one
        from repro.experiments.workloads import get_workload

        scale = get_scale("smoke")
        trace = get_workload("Theta-S4", scale)
        result = run_one(trace, "BBSched", scale, seed=2, yardstick=True,
                         collect_telemetry=True)
        g = result.optimality_gap
        assert g is not None and g["count"] > 0
        assert 0.0 <= g["mean"] <= g["max"]
        # The histogram rides the generic metrics snapshot/JSONL export.
        snap = result.telemetry.metrics.snapshot()
        assert snap["histograms"]["ga.optimality_gap"]["count"] == g["count"]
        # Without the yardstick the histogram must not exist at all.
        plain = run_one(trace, "BBSched", scale, seed=2, collect_telemetry=True)
        assert plain.optimality_gap is None
        assert "ga.optimality_gap" not in plain.telemetry.metrics.histograms

    def test_selector_exposes_gaps(self):
        rng = np.random.default_rng(21)
        window, avail = _window_and_avail(rng, w=6)
        sel = make_selector("BBSched", seed=5, generations=4, population=12,
                            yardstick=True)
        sel.bind(SystemCapacity(avail.nodes, avail.bb))
        sel.select(window, avail)
        assert len(sel.optimality_gaps) == 1
        assert sel.optimality_gaps[0] >= 0.0
        assert sel.yardstick_skipped == 0
