"""The paper's reported numbers as data."""

import pytest

from repro.experiments.paper_targets import (
    CLAIMS,
    PAPER_PARAMETERS,
    TABLE3_PAPER,
    table3_trend,
)


class TestClaims:
    def test_every_claim_has_source_and_metric(self):
        for claim in CLAIMS:
            assert claim.source
            assert claim.metric
            assert claim.statement

    def test_headline_magnitudes_present(self):
        magnitudes = {c.magnitude for c in CLAIMS if c.magnitude}
        assert 0.41 in magnitudes          # −41% wait on Theta
        assert 0.1546 in magnitudes        # +15.46% BB usage


class TestTable3Data:
    def test_both_workloads(self):
        assert set(TABLE3_PAPER) == {"Cori-S4", "Theta-S4"}

    def test_window_20_values_match_paper(self):
        assert TABLE3_PAPER["Theta-S4"]["node_usage"][20] == pytest.approx(0.7329)
        assert TABLE3_PAPER["Cori-S4"]["bb_usage"][20] == pytest.approx(0.9474)
        assert TABLE3_PAPER["Theta-S4"]["avg_wait"][20] == 8847.0

    def test_trend_shape(self):
        """The paper's own table: big first step, flat second step."""
        for wl in TABLE3_PAPER:
            s1, s2 = table3_trend("node_usage", wl)
            assert s1 > 0
            assert abs(s2) < abs(s1)
            s1w, s2w = table3_trend("avg_wait", wl)
            assert s1w < 0               # waits fall from w=10 to w=20
            assert abs(s2w) < abs(s1w)


class TestParameters:
    def test_section43_defaults(self):
        assert PAPER_PARAMETERS["window"] == 20
        assert PAPER_PARAMETERS["generations"] == 500
        assert PAPER_PARAMETERS["population"] == 20
        assert PAPER_PARAMETERS["mutation"] == pytest.approx(0.0005)

    def test_matches_library_defaults(self):
        from repro.core.ga import (
            DEFAULT_GENERATIONS,
            DEFAULT_MUTATION,
            DEFAULT_POPULATION,
        )
        from repro.windows.window import DEFAULT_STARVATION_BOUND, DEFAULT_WINDOW_SIZE

        assert DEFAULT_GENERATIONS == PAPER_PARAMETERS["generations"]
        assert DEFAULT_POPULATION == PAPER_PARAMETERS["population"]
        assert DEFAULT_MUTATION == PAPER_PARAMETERS["mutation"]
        assert DEFAULT_WINDOW_SIZE == PAPER_PARAMETERS["window"]
        assert DEFAULT_STARVATION_BOUND == PAPER_PARAMETERS["starvation_bound"]
