"""Checkpoint/restore: snapshots, resume equivalence, and the ledger."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    Checkpointer,
    ResultsLedger,
    fingerprint_digest,
    load_checkpoint,
    read_header,
    run_fingerprint,
    save_checkpoint,
    verify_resume,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    SchedulingError,
    SimulationInterrupted,
)
from repro.experiments import get_scale, get_workload, run_one
from repro.experiments.grid import run_grid
from repro.methods import METHODS_SECTION4
from repro.resilience import RetryPolicy, get_scenario
from repro.simulator.engine import SchedulingEngine
from repro.telemetry import NULL_TRACER

SMOKE = get_scale("smoke")
VALIDATOR = Path(__file__).resolve().parent.parent / "tools" / "validate_checkpoint.py"


def small_run(tmp_path, *, method="BBSched", workload="Theta-S4",
              stop_after=None, every_hours=0.0, **kwargs):
    trace = get_workload(workload, SMOKE)
    config = CheckpointConfig(
        path=str(tmp_path / "run.ckpt"), every_hours=every_hours,
        stop_after=stop_after)
    return run_one(trace, method, SMOKE, seed=11, checkpoint=config, **kwargs)


class TestSnapshotFormat:
    def make_checkpoint(self, tmp_path):
        path = tmp_path / "mid.ckpt"
        trace = get_workload("Theta-S4", SMOKE)
        config = CheckpointConfig(path=str(path), every_hours=0.0,
                                  stop_after=20_000.0)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_one(trace, "Baseline", SMOKE, seed=11, checkpoint=config)
        assert excinfo.value.checkpoint_path == str(path)
        assert excinfo.value.signum is None
        return path

    def test_header_and_manifest(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        header = read_header(path)
        assert header["magic"] == "repro-ckpt"
        assert header["version"] == 1
        manifest = header["manifest"]
        assert manifest["sim_time"] >= 20_000.0
        assert 0 < manifest["jobs_terminal"] < manifest["jobs_total"]
        assert manifest["meta"]["workload"] == "Theta-S4"
        assert manifest["meta"]["method"] == "Baseline"
        assert manifest["meta"]["seed"] == 11

    def test_load_restores_engine(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        engine, header = load_checkpoint(path)
        assert isinstance(engine, SchedulingEngine)
        assert engine.now == header["manifest"]["sim_time"]
        assert engine.jobs_terminal == header["manifest"]["jobs_terminal"]
        # The unpicklable tracer is dropped and rebound to the null default.
        assert engine._tracer is NULL_TRACER
        result = engine.continue_run()
        assert result.makespan > engine.now or result.makespan == engine.now

    def test_truncated_payload_detected(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_corrupted_payload_detected(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        data = bytearray(path.read_bytes())
        data[-50] ^= 0xFF  # flip one payload bit, length unchanged
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="SHA-256"):
            load_checkpoint(path)

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b'{"magic": "something-else"}\n1234')
        with pytest.raises(CheckpointError, match="not a repro-ckpt"):
            read_header(path)

    def test_future_version_refused(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        header = read_header(path)
        header["version"] = 99
        payload = path.read_bytes().split(b"\n", 1)[1]
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="version"):
            read_header(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_header(tmp_path / "nope.ckpt")

    def test_atomic_replace_keeps_single_file(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        leftovers = [p for p in path.parent.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_save_records_metrics(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        engine, _ = load_checkpoint(path)
        # The snapshot is serialized *before* the save counters increment,
        # so a snapshot never records its own save — only earlier ones.
        saves_before = engine.metrics.counter("checkpoint.saves").value
        save_checkpoint(tmp_path / "again.ckpt", engine)
        assert engine.metrics.counter("checkpoint.saves").value == saves_before + 1
        assert engine.metrics.counter("checkpoint.bytes").value > 0
        assert engine.metrics.histograms["checkpoint.save_seconds"].count == 1


class TestCheckpointConfigValidation:
    def test_negative_interval(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(path="x", every_hours=-1.0)

    def test_negative_stop_after(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(path="x", stop_after=-5.0)


class TestCheckpointer:
    def test_periodic_saves_accumulate(self, tmp_path):
        path = tmp_path / "run.ckpt"
        trace = get_workload("Theta-S4", SMOKE)
        config = CheckpointConfig(path=str(path), every_hours=2.0)
        result = run_one(trace, "Baseline", SMOKE, seed=11, checkpoint=config)
        assert path.exists()
        header = read_header(path)
        # The last periodic save happened mid-run, not at the end.
        assert 0 < header["manifest"]["sim_time"] <= result.makespan
        assert header["manifest"]["jobs_terminal"] <= header["manifest"]["jobs_total"]

    def test_request_stop_interrupts_with_final_checkpoint(self, tmp_path):
        trace = get_workload("Theta-S4", SMOKE)
        path = tmp_path / "sig.ckpt"
        config = CheckpointConfig(path=str(path), every_hours=0.0)
        checkpointer = Checkpointer(config, meta={"workload": trace.name})

        class StopOnce:
            """Flag a stop at the first batch boundary, like a signal."""

            def __init__(self, inner):
                self.inner = inner
                self.fired = False

            def after_batch(self, engine):
                if not self.fired:
                    self.fired = True
                    self.inner.request_stop(signal.SIGTERM)
                self.inner.after_batch(engine)

        from repro.experiments.runner import policy_for
        from repro.methods import make_selector
        from repro.windows import WindowPolicy

        engine = SchedulingEngine(
            trace.machine.make_cluster(), policy_for(trace),
            make_selector("Baseline", generations=SMOKE.generations,
                          population=SMOKE.population, mutation=SMOKE.mutation,
                          seed=3),
            WindowPolicy(size=SMOKE.window),
        )
        with pytest.raises(SimulationInterrupted) as excinfo:
            engine.run(trace.fresh_jobs(), checkpointer=StopOnce(checkpointer))
        assert excinfo.value.signum == signal.SIGTERM
        assert path.exists()
        assert read_header(path)["manifest"]["meta"]["signal"] == signal.SIGTERM

    def test_signal_context_first_flags_second_raises(self, tmp_path):
        config = CheckpointConfig(path=str(tmp_path / "x.ckpt"),
                                  handle_signals=True)
        checkpointer = Checkpointer(config)
        with checkpointer.signals():
            os.kill(os.getpid(), signal.SIGINT)
            assert checkpointer.interrupted_by == signal.SIGINT
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
        # Handlers restored: a SIGINT now raises KeyboardInterrupt normally.
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)

    def test_signal_context_noop_when_disabled(self):
        config = CheckpointConfig(path="x", handle_signals=False)
        checkpointer = Checkpointer(config)
        before = signal.getsignal(signal.SIGTERM)
        with checkpointer.signals():
            assert signal.getsignal(signal.SIGTERM) is before

    def test_continue_run_needs_primed_engine(self):
        trace = get_workload("Theta-S4", SMOKE)
        from repro.experiments.runner import policy_for
        from repro.methods import make_selector
        from repro.windows import WindowPolicy

        engine = SchedulingEngine(
            trace.machine.make_cluster(), policy_for(trace),
            make_selector("Baseline", generations=1, population=4,
                          mutation=0.05, seed=1),
            WindowPolicy(size=SMOKE.window),
        )
        with pytest.raises(SchedulingError, match="primed"):
            engine.continue_run()


class TestResumeEquivalence:
    """The tentpole property: interrupted + resumed == uninterrupted."""

    @pytest.mark.parametrize("method", METHODS_SECTION4)
    def test_all_methods_wfp_site(self, tmp_path, method):
        trace = get_workload("Theta-S4", SMOKE)  # WFP base policy
        report = verify_resume(trace, method, SMOKE, seed=11,
                               workdir=str(tmp_path))
        assert report.cut_sim_time > 0

    @pytest.mark.parametrize("method", ["Baseline", "BBSched", "Weighted"])
    def test_fcfs_site(self, tmp_path, method):
        trace = get_workload("Cori-S2", SMOKE)  # FCFS base policy
        verify_resume(trace, method, SMOKE, seed=5, workdir=str(tmp_path))

    def test_with_faults_and_retry(self, tmp_path):
        trace = get_workload("Theta-S1", SMOKE)
        verify_resume(trace, "BBSched", SMOKE, seed=3,
                      faults=get_scenario("mild"), retry=RetryPolicy(),
                      workdir=str(tmp_path))

    def test_resume_rejects_wrong_workload(self, tmp_path):
        trace = get_workload("Theta-S4", SMOKE)
        config = CheckpointConfig(path=str(tmp_path / "w.ckpt"),
                                  every_hours=0.0, stop_after=20_000.0)
        with pytest.raises(SimulationInterrupted):
            run_one(trace, "Baseline", SMOKE, seed=11, checkpoint=config)
        other = get_workload("Theta-S1", SMOKE)
        with pytest.raises(CheckpointError, match="workload"):
            run_one(other, "Baseline", SMOKE, resume_from=str(tmp_path / "w.ckpt"))
        with pytest.raises(CheckpointError, match="method"):
            run_one(trace, "BBSched", SMOKE, resume_from=str(tmp_path / "w.ckpt"))

    def test_fingerprint_excludes_wall_clock(self, tmp_path):
        trace = get_workload("Theta-S4", SMOKE)
        a = run_one(trace, "Baseline", SMOKE, seed=11)
        fp = run_fingerprint(a)
        assert "mean_selector_time" not in json.dumps(fp)
        b = run_one(trace, "Baseline", SMOKE, seed=11)
        assert fingerprint_digest(a) == fingerprint_digest(b)

    def test_bad_stop_fraction(self, tmp_path):
        trace = get_workload("Theta-S4", SMOKE)
        with pytest.raises(CheckpointError, match="stop_fraction"):
            verify_resume(trace, "Baseline", SMOKE, stop_fraction=1.5,
                          workdir=str(tmp_path))


class TestLedger:
    def run_result(self, workload="Theta-S4", method="Baseline"):
        trace = get_workload(workload, SMOKE)
        return run_one(trace, method, SMOKE, seed=11)

    def test_round_trip(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        result = self.run_result()
        ledger.append_result(result, scale="smoke", seed=11)
        view = ledger.load(scale="smoke")
        key = ("Theta-S4", "Baseline")
        assert key in view.results
        assert fingerprint_digest(view.results[key]) == fingerprint_digest(result)

    def test_scale_filtering(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        ledger.append_result(self.run_result(), scale="smoke", seed=11)
        assert ledger.load(scale="default").results == {}
        assert len(ledger.load(scale="smoke").results) == 1

    def test_telemetry_filtering(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        ledger.append_result(self.run_result(), scale="smoke", telemetry=False)
        assert ledger.load(scale="smoke", telemetry=True).results == {}

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        ledger = ResultsLedger(path)
        ledger.append_result(self.run_result(), scale="smoke")
        ledger.append_result(self.run_result(method="BBSched"), scale="smoke")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])  # SIGKILL mid-append
        view = ledger.load(scale="smoke")
        assert view.dropped_tail == 1
        assert list(view.results) == [("Theta-S4", "Baseline")]

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        ledger = ResultsLedger(path)
        ledger.append_result(self.run_result(), scale="smoke")
        ledger.append_result(self.run_result(method="BBSched"), scale="smoke")
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-30]  # damage a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt record"):
            ledger.load()

    def test_failure_records_kept_but_not_complete(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        ledger.append_failure(workload="Theta-S4", method="BBSched",
                              scale="smoke", error="boom", attempts=3,
                              traceback_text="Traceback ...")
        view = ledger.load(scale="smoke")
        assert view.results == {}
        assert view.failures[0]["error"] == "boom"

    def test_missing_ledger_is_empty(self, tmp_path):
        view = ResultsLedger(tmp_path / "none.jsonl").load()
        assert view.results == {} and view.failures == []


class TestGridResume:
    def test_resume_skips_completed_cells(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        ledger = tmp_path / "grid.jsonl"
        partial = run_grid(SMOKE, workloads=["Theta-S4"],
                           methods=["Baseline"], workers=1, ledger=ledger)
        assert len(partial) == 1
        calls = []
        import repro.experiments.grid as grid_mod
        original = grid_mod._cell

        def counting_cell(*args, **kwargs):
            calls.append(args[:2])
            return original(*args, **kwargs)

        monkeypatch.setattr(grid_mod, "_cell", counting_cell)
        full = run_grid(SMOKE, workloads=["Theta-S4"],
                        methods=["Baseline", "BBSched"], workers=1,
                        ledger=ledger, resume=True)
        assert len(full) == 2
        assert calls == [("Theta-S4", "BBSched")]  # Baseline came from the ledger

    def test_ledgered_equals_memoised(self, tmp_path):
        ledger = tmp_path / "grid.jsonl"
        a = run_grid(SMOKE, workloads=["Theta-S4"],
                     methods=["Baseline", "BBSched"], workers=1, ledger=ledger)
        b = run_grid(SMOKE, workloads=["Theta-S4"],
                     methods=["Baseline", "BBSched"], workers=1)
        for key in b:
            assert fingerprint_digest(a[key]) == fingerprint_digest(b[key])

    def test_fresh_run_truncates_stale_ledger(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        ledger.append_failure(workload="X", method="Y", scale="smoke",
                              error="stale", attempts=1)
        run_grid(SMOKE, workloads=["Theta-S4"], methods=["Baseline"],
                 workers=1, ledger=ledger.path, resume=False)
        view = ledger.load(scale="smoke")
        assert view.failures == []
        assert len(view.results) == 1


class TestValidatorTool:
    def validate(self, *argv):
        return subprocess.run(
            [sys.executable, str(VALIDATOR), *map(str, argv)],
            capture_output=True, text=True)

    def make_checkpoint(self, tmp_path):
        trace = get_workload("Theta-S4", SMOKE)
        config = CheckpointConfig(path=str(tmp_path / "v.ckpt"),
                                  every_hours=0.0, stop_after=20_000.0)
        with pytest.raises(SimulationInterrupted):
            run_one(trace, "Baseline", SMOKE, seed=11, checkpoint=config)
        return tmp_path / "v.ckpt"

    def test_valid_checkpoint_passes(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        proc = self.validate(path, "--expect-workload", "Theta-S4",
                             "--expect-method", "Baseline")
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_wrong_method_fails(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        proc = self.validate(path, "--expect-method", "BBSched")
        assert proc.returncode == 1
        assert "INVALID" in proc.stderr

    def test_truncation_fails(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        path.write_bytes(path.read_bytes()[:-200])
        proc = self.validate(path)
        assert proc.returncode == 1
        assert "truncated" in proc.stderr

    def test_ledger_passes(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        trace = get_workload("Theta-S4", SMOKE)
        ledger.append_result(run_one(trace, "Baseline", SMOKE, seed=11),
                             scale="smoke")
        proc = self.validate(tmp_path / "grid.jsonl", "--min-cells", "1")
        assert proc.returncode == 0, proc.stderr
        assert "1 cells" in proc.stdout

    def test_empty_min_cells_fails(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "grid.jsonl")
        ledger.append_failure(workload="W", method="M", scale="smoke",
                              error="x", attempts=1)
        proc = self.validate(tmp_path / "grid.jsonl", "--min-cells", "1")
        assert proc.returncode == 1


class TestRepairTailIdempotency:
    """repair_tail must converge: a second pass is a byte-stable no-op."""

    def make_journal(self, tmp_path):
        from repro.checkpoint.journal import JsonlJournal

        return JsonlJournal(tmp_path / "j.jsonl")

    def test_repaired_journal_is_fixed_point(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.append({"kind": "a", "n": 1})
        journal.append({"kind": "b", "n": 2})
        path = journal.path
        path.write_bytes(path.read_bytes()[:-9])  # tear the final record
        assert journal.repair_tail() > 0
        after_first = path.read_bytes()
        assert journal.repair_tail() == 0
        assert path.read_bytes() == after_first
        assert journal.repair_tail() == 0  # and again
        assert path.read_bytes() == after_first

    def test_torn_tail_is_the_header_line(self, tmp_path):
        """A journal whose ONLY line is torn repairs to empty, then holds."""
        journal = self.make_journal(tmp_path)
        journal.append({"kind": "header", "version": 1})
        path = journal.path
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # tear the first == last line
        assert journal.repair_tail() > 0
        assert path.read_bytes() == b""
        assert journal.repair_tail() == 0  # empty file: byte-stable no-op
        assert path.read_bytes() == b""

    def test_missing_terminator_is_reterminated_once(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.append({"kind": "a", "n": 1})
        path = journal.path
        path.write_bytes(path.read_bytes()[:-1])  # newline only is torn
        assert journal.repair_tail() == 0  # record intact: re-terminate
        repaired = path.read_bytes()
        assert repaired.endswith(b"\n")
        assert json.loads(repaired.decode()) == {"kind": "a", "n": 1}
        assert journal.repair_tail() == 0
        assert path.read_bytes() == repaired

    def test_intact_journal_untouched(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.append({"kind": "a"})
        journal.append({"kind": "b"})
        before = journal.path.read_bytes()
        assert journal.repair_tail() == 0
        assert journal.path.read_bytes() == before

    def test_parse_rejection_counts_as_torn(self, tmp_path):
        from repro.errors import CheckpointError

        journal = self.make_journal(tmp_path)
        journal.append({"kind": "good"})
        journal.append({"kind": "bad"})

        def parse(record):
            if record.get("kind") == "bad":
                raise CheckpointError("schema violation")
            return record

        assert journal.repair_tail(parse) > 0  # bad final line cut
        after = journal.path.read_bytes()
        assert journal.repair_tail(parse) == 0
        assert journal.path.read_bytes() == after
        assert json.loads(after.decode()) == {"kind": "good"}
