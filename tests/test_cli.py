"""Command-line interface (smoke scale)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "smoke"])
        assert args.experiment == "table1"
        assert args.scale == "smoke"


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1(b)" in out
        assert "BBSched" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_fig5(self, capsys):
        assert main(["run", "fig5", "--scale", "smoke"]) == 0
        assert "Cori-S4" in capsys.readouterr().out


class TestWorkloads:
    def test_summary(self, capsys):
        assert main(["workloads", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Theta-S4" in out
        assert "Cori-S7" in out


class TestSimulate:
    def test_simulate_run(self, capsys):
        assert main(["simulate", "Theta-S2", "Bin_Packing",
                     "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "node usage" in out

    def test_unknown_workload(self, capsys):
        assert main(["simulate", "Mars-S1", "Baseline"]) == 1

    def test_unknown_method(self, capsys):
        assert main(["simulate", "Theta-S2", "Sorcery"]) == 1


class TestSimulateCheckpoint:
    def test_checkpoint_written_and_resumable(self, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        assert main(["simulate", "Theta-S4", "Baseline", "--scale", "smoke",
                     "--checkpoint", str(ckpt), "--checkpoint-every", "2"]) == 0
        assert ckpt.exists()
        capsys.readouterr()
        assert main(["simulate", "Theta-S4", "Baseline", "--scale", "smoke",
                     "--resume-from", str(ckpt)]) == 0
        assert "node usage" in capsys.readouterr().out

    def test_resume_from_missing_file(self, tmp_path, capsys):
        assert main(["simulate", "Theta-S4", "Baseline", "--scale", "smoke",
                     "--resume-from", str(tmp_path / "nope.ckpt")]) == 1
        assert "error" in capsys.readouterr().err

    def test_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["simulate", "Theta-S4", "BBSched", "--checkpoint", "x.ckpt",
             "--checkpoint-every", "0.5", "--resume-from", "y.ckpt"])
        assert args.checkpoint == "x.ckpt"
        assert args.checkpoint_every == 0.5
        assert args.resume_from == "y.ckpt"


class TestGrid:
    def test_grid_subset(self, capsys):
        assert main(["grid", "--scale", "smoke", "--workloads", "Theta-S4",
                     "--methods", "Baseline,BBSched", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "node_usage" in out
        assert "BBSched" in out

    def test_grid_ledger_resume(self, tmp_path, capsys):
        ledger = tmp_path / "grid.jsonl"
        argv = ["grid", "--scale", "smoke", "--workloads", "Theta-S4",
                "--methods", "Baseline", "--workers", "1",
                "--ledger", str(ledger)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert ledger.exists()
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_resume_requires_ledger(self, capsys):
        assert main(["grid", "--scale", "smoke", "--resume"]) == 2
        assert "--ledger" in capsys.readouterr().err

    def test_grid_custom_metric(self, capsys):
        assert main(["grid", "--scale", "smoke", "--workloads", "Theta-S4",
                     "--methods", "Baseline", "--workers", "1",
                     "--metric", "avg_slowdown"]) == 0
        out = capsys.readouterr().out
        assert "avg_slowdown" in out
        assert "node_usage" not in out
