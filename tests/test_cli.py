"""Command-line interface (smoke scale)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "smoke"])
        assert args.experiment == "table1"
        assert args.scale == "smoke"


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1(b)" in out
        assert "BBSched" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_fig5(self, capsys):
        assert main(["run", "fig5", "--scale", "smoke"]) == 0
        assert "Cori-S4" in capsys.readouterr().out


class TestWorkloads:
    def test_summary(self, capsys):
        assert main(["workloads", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Theta-S4" in out
        assert "Cori-S7" in out


class TestSimulate:
    def test_simulate_run(self, capsys):
        assert main(["simulate", "Theta-S2", "Bin_Packing",
                     "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "node usage" in out

    def test_unknown_workload(self, capsys):
        assert main(["simulate", "Mars-S1", "Baseline"]) == 1

    def test_unknown_method(self, capsys):
        assert main(["simulate", "Theta-S2", "Sorcery"]) == 1
