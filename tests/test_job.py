"""Job model: validation, lifecycle, derived metrics."""

import pytest

from repro.errors import SchedulingError, TraceError
from repro.simulator.job import Job, JobState


def make_job(**kw):
    defaults = dict(jid=1, submit_time=0.0, runtime=100.0, walltime=200.0, nodes=4)
    defaults.update(kw)
    return Job(**defaults)


class TestValidation:
    def test_valid_job(self):
        job = make_job(bb=10.0, ssd=64.0)
        assert job.state is JobState.PENDING

    @pytest.mark.parametrize("nodes", [0, -1])
    def test_nonpositive_nodes_rejected(self, nodes):
        with pytest.raises(TraceError):
            make_job(nodes=nodes)

    def test_negative_runtime_rejected(self):
        with pytest.raises(TraceError):
            make_job(runtime=-1.0)

    def test_nonpositive_walltime_rejected(self):
        with pytest.raises(TraceError):
            make_job(walltime=0.0)

    def test_negative_bb_rejected(self):
        with pytest.raises(TraceError):
            make_job(bb=-5.0)

    def test_negative_ssd_rejected(self):
        with pytest.raises(TraceError):
            make_job(ssd=-1.0)

    def test_negative_submit_rejected(self):
        with pytest.raises(TraceError):
            make_job(submit_time=-1.0)

    def test_self_dependency_rejected(self):
        with pytest.raises(TraceError):
            make_job(deps={1})

    def test_deps_coerced_to_frozenset(self):
        job = make_job(deps={2, 3})
        assert isinstance(job.deps, frozenset)


class TestLifecycle:
    def test_full_lifecycle(self):
        job = make_job()
        job.mark_queued()
        assert job.state is JobState.QUEUED
        job.mark_started(50.0)
        assert job.state is JobState.RUNNING
        assert job.start_time == 50.0
        job.mark_completed(150.0)
        assert job.state is JobState.COMPLETED
        assert job.end_time == 150.0

    def test_cannot_start_before_queue(self):
        with pytest.raises(SchedulingError):
            make_job().mark_started(1.0)

    def test_cannot_queue_twice(self):
        job = make_job()
        job.mark_queued()
        with pytest.raises(SchedulingError):
            job.mark_queued()

    def test_cannot_start_before_submit(self):
        job = make_job(submit_time=100.0)
        job.mark_queued()
        with pytest.raises(SchedulingError):
            job.mark_started(50.0)

    def test_cannot_complete_without_start(self):
        job = make_job()
        job.mark_queued()
        with pytest.raises(SchedulingError):
            job.mark_completed(10.0)


class TestDerivedMetrics:
    def _started(self, **kw):
        job = make_job(**kw)
        job.mark_queued()
        job.mark_started(job.submit_time + 50.0)
        return job

    def test_wait_time(self):
        assert self._started().wait_time == 50.0

    def test_wait_time_requires_start(self):
        with pytest.raises(SchedulingError):
            _ = make_job().wait_time

    def test_response_time(self):
        job = self._started(runtime=100.0)
        assert job.response_time == 150.0

    def test_slowdown(self):
        job = self._started(runtime=100.0)
        assert job.slowdown() == pytest.approx(1.5)

    def test_bounded_slowdown_clamps_short_jobs(self):
        job = self._started(runtime=1.0)
        assert job.slowdown(bound=10.0) == pytest.approx(51.0 / 10.0)

    def test_slowdown_zero_runtime_raises(self):
        job = self._started(runtime=0.0)
        with pytest.raises(SchedulingError):
            job.slowdown()

    def test_node_seconds(self):
        assert make_job(nodes=4, runtime=100.0).node_seconds == 400.0

    def test_bb_seconds(self):
        assert make_job(bb=10.0, runtime=100.0).bb_seconds == 1000.0

    def test_uses_bb(self):
        assert make_job(bb=1.0).uses_bb
        assert not make_job(bb=0.0).uses_bb

    def test_uses_ssd(self):
        assert make_job(ssd=64.0).uses_ssd
        assert not make_job().uses_ssd

    def test_demand_vector(self):
        job = make_job(nodes=4, bb=10.0, ssd=8.0)
        assert job.demand_vector() == (4.0, 10.0, 32.0)
