"""Adaptive decision making (§3.2.4 future-work extension)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveDecisionRule
from repro.core.ga import ParetoSet
from repro.errors import SolverError


def pareto():
    return ParetoSet(
        genes=np.array([[1, 0, 0, 0, 1], [0, 1, 1, 1, 1]], dtype=np.uint8),
        objectives=np.array([[100.0, 20.0], [80.0, 90.0]]),
    )


class TestConstruction:
    def test_defaults(self):
        rule = AdaptiveDecisionRule()
        assert rule.factor == 2.0

    def test_initial_outside_band(self):
        with pytest.raises(SolverError):
            AdaptiveDecisionRule(initial_factor=100.0, band=(0.5, 8.0))

    def test_bad_gain(self):
        with pytest.raises(SolverError):
            AdaptiveDecisionRule(gain=0.0)

    def test_bad_window(self):
        with pytest.raises(SolverError):
            AdaptiveDecisionRule(window=0)


class TestAdaptation:
    def test_slack_nodes_lower_factor(self):
        rule = AdaptiveDecisionRule(window=3)
        for _ in range(10):
            rule.observe(node_utilization=0.4, bb_utilization=0.9)
        assert rule.factor < 2.0

    def test_slack_bb_raises_factor(self):
        rule = AdaptiveDecisionRule(window=3)
        for _ in range(10):
            rule.observe(node_utilization=0.9, bb_utilization=0.4)
        assert rule.factor > 2.0

    def test_balanced_usage_keeps_factor(self):
        rule = AdaptiveDecisionRule(window=3)
        for _ in range(10):
            rule.observe(node_utilization=0.8, bb_utilization=0.8)
        assert rule.factor == pytest.approx(2.0)

    def test_factor_clamped_to_band(self):
        rule = AdaptiveDecisionRule(band=(1.0, 3.0), gain=0.5, window=1)
        for _ in range(50):
            rule.observe(0.1, 0.9)
        assert rule.factor == pytest.approx(1.0)
        for _ in range(100):
            rule.observe(0.9, 0.1)
        assert rule.factor == pytest.approx(3.0)


class TestChoose:
    def test_low_factor_trades(self):
        rule = AdaptiveDecisionRule(initial_factor=0.5)
        d = rule.choose(pareto(), scales=(100.0, 100.0))
        assert d.traded  # BB gain 0.7 > 0.5 × node loss 0.2

    def test_high_factor_refuses(self):
        rule = AdaptiveDecisionRule(initial_factor=8.0)
        d = rule.choose(pareto(), scales=(100.0, 100.0))
        assert not d.traded  # 0.7 < 8 × 0.2

    def test_adaptation_changes_decision(self):
        """The point of the extension: feedback flips the chosen solution."""
        rule = AdaptiveDecisionRule(initial_factor=4.0, band=(0.5, 8.0),
                                    gain=0.2, window=1)
        assert not rule.choose(pareto(), scales=(100.0, 100.0)).traded
        # Nodes persistently slack → factor drops → trade now accepted.
        for _ in range(20):
            rule.observe(0.3, 0.95)
        assert rule.choose(pareto(), scales=(100.0, 100.0)).traded
