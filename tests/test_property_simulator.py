"""Property-based tests for the simulator substrate (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.methods import make_selector
from repro.policies import FCFS, WFP
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job, JobState
from repro.simulator.recorder import StepSeries
from repro.simulator.ssd_pool import SSDPool
from repro.simulator.validate import validate_schedule
from repro.windows import WindowPolicy

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --- strategies -----------------------------------------------------------------

@st.composite
def job_traces(draw, max_jobs=14):
    n = draw(st.integers(1, max_jobs))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 50.0, allow_nan=False))
        runtime = draw(st.floats(1.0, 200.0, allow_nan=False))
        jobs.append(Job(
            jid=i,
            submit_time=t,
            runtime=runtime,
            walltime=runtime * draw(st.floats(1.0, 3.0, allow_nan=False)),
            nodes=draw(st.integers(1, 8)),
            bb=float(draw(st.integers(0, 40))),
        ))
    return jobs


class TestStepSeriesProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 100.0, allow_nan=False),
                              st.floats(0.0, 10.0, allow_nan=False)),
                    min_size=1, max_size=20))
    @settings(**COMMON)
    def test_integral_additive(self, observations):
        s = StepSeries(1.0)
        for dt, v in observations:
            s.observe(s.last_time + dt, v)
        a, b, c = 0.0, 40.0, 120.0
        total = s.integral(a, c)
        split = s.integral(a, b) + s.integral(b, c)
        assert total == pytest.approx(split)

    @given(st.lists(st.tuples(st.floats(0.01, 50.0, allow_nan=False),
                              st.floats(0.0, 10.0, allow_nan=False)),
                    min_size=1, max_size=20))
    @settings(**COMMON)
    def test_mean_bounded_by_extremes(self, observations):
        s = StepSeries(5.0)
        values = [5.0]
        for dt, v in observations:
            s.observe(s.last_time + dt, v)
            values.append(v)
        m = s.mean(0.0, s.last_time + 10.0)
        assert min(values) - 1e-9 <= m <= max(values) + 1e-9


class TestSSDPoolProperties:
    @given(st.lists(st.tuples(st.integers(1, 4), st.sampled_from([0.0, 64.0, 128.0, 200.0])),
                    min_size=1, max_size=12))
    @settings(**COMMON)
    def test_allocate_release_conserves(self, requests):
        pool = SSDPool({128.0: 6, 256.0: 6})
        total = pool.total_nodes
        held = []
        for nodes, ssd in requests:
            if pool.can_fit(nodes, ssd):
                held.append(pool.allocate(nodes, ssd))
            elif held:
                pool.release(held.pop())
            free = pool.free_nodes
            assert 0 <= free <= total
            assert free + sum(a.node_count for a in held) == total
        for a in held:
            pool.release(a)
        assert pool.free_per_tier() == pool.total_per_tier()

    @given(st.integers(1, 12), st.sampled_from([0.0, 64.0, 128.0, 200.0]))
    @settings(**COMMON)
    def test_waste_nonnegative_and_assignment_qualifies(self, nodes, ssd):
        pool = SSDPool({128.0: 6, 256.0: 6})
        if not pool.can_fit(nodes, ssd):
            return
        a = pool.allocate(nodes, ssd)
        assert a.waste >= 0.0
        assert all(cap >= ssd for cap in a.capacities())


class TestEngineProperties:
    @given(job_traces(), st.sampled_from(["Baseline", "Bin_Packing"]))
    @settings(**COMMON, max_examples=25)
    def test_every_job_completes_exactly_once(self, jobs, method):
        cluster = Cluster(nodes=8, bb_capacity=40.0)
        engine = SchedulingEngine(
            cluster, FCFS(), make_selector(method, generations=5, seed=0),
            WindowPolicy(size=4, starvation_bound=20),
        )
        result = engine.run(jobs)
        for job in result.jobs:
            assert job.state is JobState.COMPLETED
            assert job.start_time is not None
            assert job.start_time >= job.submit_time
            assert job.end_time == pytest.approx(job.start_time + job.runtime)

    @given(job_traces(), st.integers(0, 100))
    @settings(**COMMON, max_examples=15)
    def test_capacity_never_exceeded(self, jobs, seed):
        cluster = Cluster(nodes=8, bb_capacity=40.0)
        engine = SchedulingEngine(
            cluster, WFP(), make_selector("BBSched", generations=8, seed=seed),
            WindowPolicy(size=4, starvation_bound=20),
        )
        result = engine.run(jobs)
        _, node_levels = result.recorder.nodes.as_arrays()
        _, bb_levels = result.recorder.bb.as_arrays()
        assert (node_levels <= 8 + 1e-9).all()
        assert (bb_levels <= 40.0 + 1e-6).all()
        assert (node_levels >= -1e-9).all()
        assert (bb_levels >= -1e-6).all()

    @given(job_traces(), st.sampled_from(["Baseline", "BBSched"]))
    @settings(**COMMON, max_examples=20)
    def test_schedule_validates_post_hoc(self, jobs, method):
        """The independent validator accepts every engine schedule."""
        cluster = Cluster(nodes=8, bb_capacity=40.0)
        engine = SchedulingEngine(
            cluster, WFP(), make_selector(method, generations=6, seed=2),
            WindowPolicy(size=4, starvation_bound=10),
        )
        result = engine.run(jobs)
        report = validate_schedule(result.jobs, total_nodes=8, bb_capacity=40.0)
        report.raise_if_invalid()

    @given(job_traces())
    @settings(**COMMON, max_examples=15)
    def test_work_conservation(self, jobs):
        """Total node-seconds recorded equals the trace's node-seconds."""
        cluster = Cluster(nodes=8, bb_capacity=40.0)
        engine = SchedulingEngine(
            cluster, FCFS(), make_selector("Baseline"), WindowPolicy(size=4),
        )
        result = engine.run(jobs)
        recorded = result.recorder.nodes.integral(0.0, result.makespan + 1.0)
        expected = sum(j.node_seconds for j in jobs)
        assert recorded == pytest.approx(expected, rel=1e-9)

    @given(job_traces())
    @settings(**COMMON, max_examples=10)
    def test_methods_agree_on_total_work(self, jobs):
        """Different methods schedule the same jobs — only timing differs."""
        ends = {}
        for method in ("Baseline", "Bin_Packing"):
            fresh = [Job(jid=j.jid, submit_time=j.submit_time, runtime=j.runtime,
                         walltime=j.walltime, nodes=j.nodes, bb=j.bb)
                     for j in jobs]  # jobs carry run state; copy per engine
            cluster = Cluster(nodes=8, bb_capacity=40.0)
            engine = SchedulingEngine(
                cluster, FCFS(), make_selector(method, generations=5, seed=1),
                WindowPolicy(size=4),
            )
            result = engine.run(fresh)
            ends[method] = sorted(j.jid for j in result.jobs
                                  if j.state is JobState.COMPLETED)
        assert ends["Baseline"] == ends["Bin_Packing"]
