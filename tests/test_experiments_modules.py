"""Smoke-scale functional tests of the per-figure experiment modules.

The benchmarks exercise these at full scale; here we verify the plumbing —
result structure, rendering, parameter validation — at smoke scale so the
unit suite stays fast.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ablation,
    fig2,
    fig4,
    fig5,
    get_scale,
    overheads,
    table1,
    table3,
)

SMOKE = get_scale("smoke")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(generations=200)

    def test_eight_rows(self, result):
        assert len(result.rows) == 8

    def test_pareto_set(self, result):
        assert {n for n, _, _ in result.pareto} == {
            ("J1", "J5"), ("J2", "J3", "J4", "J5")
        }

    def test_render_mentions_all_methods(self, result):
        text = table1.render(result)
        for row in result.rows:
            assert row.method in text

    def test_baseline_blocks(self, result):
        rows = {r.method: r for r in result.rows}
        assert rows["Baseline"].selected == ("J1",)


class TestFig2:
    def test_small_sweep(self):
        result = fig2.run(SMOKE, sizes=(4, 8, 10), repeats=1)
        assert set(result.times) == {4, 8, 10}
        assert all(t > 0 for t in result.times.values())
        assert "Figure 2" in fig2.render(result)

    def test_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            fig2.run(SMOKE, repeats=0)

    def test_max_w_filter(self):
        result = fig2.run(SMOKE, sizes=(4, 8, 12), repeats=1, max_w=8)
        assert 12 not in result.times


class TestFig4:
    def test_small_sweep(self):
        result = fig4.run(SMOKE, generations=(0, 20), populations=(8,),
                          window=8, n_windows=2)
        assert len(result.cells) == 2
        cell = result.cell(20, 8)
        assert cell.gd >= 0.0
        assert cell.seconds > 0.0
        assert "Figure 4" in fig4.render(result)

    def test_unknown_cell(self):
        result = fig4.run(SMOKE, generations=(0,), populations=(8,),
                          window=6, n_windows=1)
        with pytest.raises(KeyError):
            result.cell(99, 8)

    def test_oversized_window_rejected(self):
        with pytest.raises(ConfigurationError):
            fig4.run(SMOKE, window=30)


class TestFig5:
    def test_histograms(self):
        result = fig5.run(SMOKE, workloads=("Theta-S1", "Theta-Original"))
        assert set(result.histograms) == {"Theta-S1", "Theta-Original"}
        h = result.histograms["Theta-S1"]
        assert h.n_requests > 0
        assert h.total_volume_tb > 0
        assert sum(c for _, c in h.bins) == h.n_requests
        assert "Theta-S1" in fig5.render(result)


class TestTable3:
    def test_window_sweep(self):
        result = table3.run(SMOKE, windows=(5, 10), workloads=("Theta-S2",))
        assert set(result.runs["Theta-S2"]) == {5, 10}
        assert 0.0 <= result.metric("Theta-S2", 5, "node_usage") <= 1.0
        assert "Table 3" in table3.render(result)


class TestOverheads:
    def test_measures_all_methods(self):
        result = overheads.run(SMOKE, window=10, snapshots=1,
                               generation_sweep=(10, 20))
        assert len(result.per_method) == 8
        assert all(t >= 0 for t in result.per_method.values())
        assert set(result.bbsched_by_generations) == {10, 20}
        assert "overhead" in overheads.render(result).lower()


class TestAblation:
    def test_ga_selection(self):
        result = ablation.ablate_ga_selection(SMOKE, window=8, n_windows=1)
        assert set(result.gd) == {"age", "crowding"}
        assert all(v >= 0 for v in result.gd.values())

    def test_trade_factor(self):
        result = ablation.ablate_trade_factor(SMOKE, factors=(1.0, 4.0),
                                              workload="Theta-S2")
        assert set(result.usages) == {1.0, 4.0}

    def test_starvation_bound(self):
        result = ablation.ablate_starvation_bound(SMOKE, bounds=(5, 50),
                                                  workload="Theta-S2")
        assert set(result.outcomes) == {5, 50}
