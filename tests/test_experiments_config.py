"""Experiment configuration and scales."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES, Scale, get_scale


class TestScales:
    def test_three_scales(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_paper_scale_matches_section43(self):
        p = SCALES["paper"]
        assert p.generations == 500
        assert p.population == 20
        assert p.window == 20
        assert p.mutation == pytest.approx(0.0005)

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_get_scale_explicit(self):
        assert get_scale("smoke").name == "smoke"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            get_scale("galactic")

    def test_scales_ordered_by_effort(self):
        assert SCALES["smoke"].n_jobs < SCALES["default"].n_jobs < \
            SCALES["paper"].n_jobs
        assert SCALES["smoke"].generations < SCALES["paper"].generations
