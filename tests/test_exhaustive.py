"""Exhaustive (true Pareto) solver."""

import numpy as np
import pytest

from repro.core.exhaustive import ExhaustiveSolver, bit_matrix
from repro.core.pareto import non_dominated_mask
from repro.core.problem import SelectionProblem, SSDSelectionProblem
from repro.errors import SolverError
from repro.simulator.job import Job


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


class TestBitMatrix:
    def test_enumeration(self):
        M = bit_matrix(0, 8, 3)
        assert M.shape == (8, 3)
        # Row r is the little-endian binary expansion of r.
        assert M[5].tolist() == [1, 0, 1]

    def test_range_slicing(self):
        full = bit_matrix(0, 16, 4)
        part = bit_matrix(4, 8, 4)
        assert (part == full[4:8]).all()

    def test_negative_w_rejected(self):
        with pytest.raises(SolverError):
            bit_matrix(0, 1, -1)


class TestSolve:
    def test_table1(self):
        jobs = [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
                make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
        problem = SelectionProblem.from_window(jobs, 100, 100.0)
        result = ExhaustiveSolver().solve(problem)
        sols = {tuple(g) for g in result.genes}
        assert sols == {(1, 0, 0, 0, 1), (0, 1, 1, 1, 1)}

    def test_matches_brute_force_reference(self):
        rng = np.random.default_rng(7)
        jobs = [make_job(i, int(rng.integers(1, 30)), float(rng.integers(0, 40)))
                for i in range(10)]
        problem = SelectionProblem.from_window(jobs, 60, 60.0)
        result = ExhaustiveSolver().solve(problem)
        # Reference: evaluate all 1024 selections directly.
        all_pop = bit_matrix(0, 1 << 10, 10)
        feas = problem.feasible(all_pop)
        F = problem.evaluate(all_pop[feas])
        mask = non_dominated_mask(F)
        ref_objs = {tuple(o) for o in F[mask]}
        got_objs = {tuple(o) for o in result.objectives}
        assert got_objs == ref_objs

    def test_all_results_feasible(self):
        jobs = [make_job(i, 10 + i, 5.0 * i) for i in range(8)]
        problem = SelectionProblem.from_window(jobs, 40, 40.0)
        result = ExhaustiveSolver().solve(problem)
        assert problem.feasible(result.genes).all()

    def test_respects_forced(self):
        jobs = [make_job(i, 10, 5.0) for i in range(6)]
        problem = SelectionProblem.from_window(jobs, 60, 60.0, forced=[2])
        result = ExhaustiveSolver().solve(problem)
        assert (result.genes[:, 2] == 1).all()

    def test_window_cap(self):
        problem = SelectionProblem(np.ones((30, 2)), [100.0, 100.0])
        with pytest.raises(SolverError):
            ExhaustiveSolver(max_w=26).solve(problem)

    def test_empty_window(self):
        problem = SelectionProblem(np.zeros((0, 2)), [1.0, 1.0])
        result = ExhaustiveSolver().solve(problem)
        assert len(result) == 0

    def test_four_objective_ssd_problem(self):
        jobs = [make_job(1, 2, 5.0, ssd=64.0), make_job(2, 2, 0.0, ssd=200.0),
                make_job(3, 1, 3.0, ssd=0.0)]
        problem = SSDSelectionProblem(jobs, 4, 10.0, {128.0: 2, 256.0: 2})
        result = ExhaustiveSolver().solve(problem)
        assert problem.feasible(result.genes).all()
        assert result.objectives.shape[1] == 4

    def test_chunking_consistency(self):
        # Force multiple chunks by monkeypatching the chunk size.
        import repro.core.exhaustive as ex
        jobs = [make_job(i, 5 + i, 2.0 * i) for i in range(9)]
        problem = SelectionProblem.from_window(jobs, 40, 40.0)
        full = ExhaustiveSolver().solve(problem)
        old = ex._CHUNK
        try:
            ex._CHUNK = 64
            chunked = ExhaustiveSolver().solve(problem)
        finally:
            ex._CHUNK = old
        assert {tuple(g) for g in full.genes} == {tuple(g) for g in chunked.genes}
