"""Dynamic window sizing (§3.1 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.methods import make_selector
from repro.policies import FCFS
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job, JobState
from repro.windows import DynamicWindowPolicy


def make_job(jid, submit=0.0):
    return Job(jid=jid, submit_time=submit, runtime=10.0, walltime=10.0, nodes=1)


class TestConstruction:
    def test_defaults(self):
        wp = DynamicWindowPolicy()
        assert wp.fraction == 0.25
        assert wp.min_size == 5
        assert wp.max_size == 50

    @pytest.mark.parametrize("kw", [
        dict(fraction=0.0), dict(fraction=1.5),
        dict(min_size=0), dict(min_size=10, max_size=5),
    ])
    def test_invalid(self, kw):
        with pytest.raises(ConfigurationError):
            DynamicWindowPolicy(**kw)


class TestSizing:
    def test_scales_with_queue(self):
        wp = DynamicWindowPolicy(fraction=0.5, min_size=2, max_size=10)
        assert wp.current_size(4) == 2      # clamped up to min
        assert wp.current_size(10) == 5     # fraction
        assert wp.current_size(100) == 10   # clamped down to max

    def test_scope_size_tracks_current(self):
        wp = DynamicWindowPolicy(fraction=0.5, min_size=2, max_size=10)
        assert wp.scope_size(10) == wp.current_size(10)

    def test_extract_uses_dynamic_size(self):
        wp = DynamicWindowPolicy(fraction=0.5, min_size=1, max_size=10)
        queue = [make_job(i) for i in range(6)]
        window = wp.extract(queue, completed=set())
        assert len(window) == 3

    def test_extract_respects_max(self):
        wp = DynamicWindowPolicy(fraction=1.0, min_size=1, max_size=4)
        queue = [make_job(i) for i in range(20)]
        assert len(wp.extract(queue, completed=set())) == 4

    def test_forced_detection_carries_over(self):
        wp = DynamicWindowPolicy(fraction=1.0, min_size=1, max_size=4,
                                 starvation_bound=3)
        job = make_job(0)
        job.window_age = 3
        window = wp.extract([job], completed=set())
        assert window.forced == (0,)


class TestEngineIntegration:
    def test_full_run_with_dynamic_window(self):
        jobs = [Job(jid=i, submit_time=float(i), runtime=20.0, walltime=30.0,
                    nodes=1 + i % 4, bb=float(i % 3) * 5.0)
                for i in range(25)]
        engine = SchedulingEngine(
            Cluster(nodes=8, bb_capacity=20.0), FCFS(),
            make_selector("BBSched", generations=10, seed=0),
            DynamicWindowPolicy(fraction=0.5, min_size=2, max_size=8),
        )
        result = engine.run(jobs)
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
