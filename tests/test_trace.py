"""Trace container: validation, statistics, CSV round-trip."""

import pytest

from repro.errors import TraceError
from repro.simulator.job import Job, JobState
from repro.workloads.spec import MachineSpec
from repro.workloads.trace import Trace

MACHINE = MachineSpec(name="Test", nodes=100, bb_capacity=1000.0)


def make_job(jid, submit=0.0, nodes=10, bb=0.0, deps=()):
    return Job(jid=jid, submit_time=submit, runtime=50.0, walltime=60.0,
               nodes=nodes, bb=bb, deps=frozenset(deps), user=f"u{jid}")


def make_trace(jobs, name="t"):
    return Trace(name=name, machine=MACHINE, jobs=tuple(jobs))


class TestValidation:
    def test_valid(self):
        tr = make_trace([make_job(1), make_job(2, submit=5.0)])
        assert len(tr) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError):
            make_trace([make_job(1), make_job(1, submit=1.0)])

    def test_unordered_rejected(self):
        with pytest.raises(TraceError):
            make_trace([make_job(1, submit=10.0), make_job(2, submit=5.0)])

    def test_oversized_job_rejected(self):
        with pytest.raises(TraceError):
            make_trace([make_job(1, nodes=101)])

    def test_unknown_dep_rejected(self):
        with pytest.raises(TraceError):
            make_trace([make_job(1, deps={9})])

    def test_forward_dep_allowed_by_container(self):
        # Ordering of dependencies is the engine's concern; the container
        # only checks referential integrity.
        tr = make_trace([make_job(1, deps={2}), make_job(2, submit=1.0)])
        assert len(tr) == 2


class TestAccessors:
    def test_fresh_jobs_resets_state(self):
        tr = make_trace([make_job(1)])
        run1 = tr.fresh_jobs()
        run1[0].mark_queued()
        run1[0].mark_started(0.0)
        run2 = tr.fresh_jobs()
        assert run2[0].state is JobState.PENDING
        assert run2[0] is not run1[0]

    def test_head(self):
        tr = make_trace([make_job(i, submit=float(i)) for i in range(1, 6)])
        assert len(tr.head(3)) == 3
        assert "[:3]" in tr.head(3).name

    def test_rename(self):
        tr = make_trace([make_job(1)])
        assert tr.rename("new").name == "new"

    def test_with_jobs(self):
        tr = make_trace([make_job(1)])
        tr2 = tr.with_jobs([make_job(2)], name="replaced")
        assert [j.jid for j in tr2] == [2]

    def test_iteration(self):
        tr = make_trace([make_job(1), make_job(2, submit=1.0)])
        assert [j.jid for j in tr] == [1, 2]


class TestStatistics:
    def test_bb_requests(self):
        tr = make_trace([make_job(1, bb=10.0), make_job(2, submit=1.0)])
        assert tr.bb_requests().tolist() == [10.0]
        assert tr.bb_requests(positive_only=False).tolist() == [10.0, 0.0]

    def test_bb_fraction(self):
        tr = make_trace([make_job(1, bb=10.0), make_job(2, submit=1.0)])
        assert tr.bb_fraction() == 0.5

    def test_bb_fraction_empty(self):
        assert make_trace([]).bb_fraction() == 0.0

    def test_total_bb_volume(self):
        tr = make_trace([make_job(1, bb=10.0), make_job(2, submit=1.0, bb=30.0)])
        assert tr.total_bb_volume() == 40.0

    def test_span(self):
        tr = make_trace([make_job(1, submit=5.0), make_job(2, submit=20.0)])
        assert tr.span() == (5.0, 20.0)

    def test_offered_load(self):
        # 2 jobs × 10 nodes × 50 s over 100 nodes × 10 s span = 1.0... x10
        tr = make_trace([make_job(1, submit=0.0), make_job(2, submit=10.0)])
        assert tr.offered_load() == pytest.approx(
            (2 * 10 * 50.0) / (100 * 10.0))

    def test_offered_load_zero_span(self):
        assert make_trace([make_job(1)]).offered_load() == 0.0


class TestCSVRoundTrip:
    def test_round_trip(self, tmp_path):
        jobs = [make_job(1, bb=12.5), make_job(2, submit=3.0, deps={1})]
        tr = make_trace(jobs, name="rt")
        path = tmp_path / "trace.csv"
        tr.to_csv(path)
        back = Trace.from_csv(path, MACHINE, name="rt")
        assert len(back) == 2
        for a, b in zip(tr, back):
            assert a.jid == b.jid
            assert a.submit_time == pytest.approx(b.submit_time)
            assert a.bb == pytest.approx(b.bb)
            assert a.deps == b.deps
            assert a.user == b.user

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceError):
            Trace.from_csv(path, MACHINE)

    def test_default_name_from_path(self, tmp_path):
        tr = make_trace([make_job(1)])
        path = tmp_path / "mytrace.csv"
        tr.to_csv(path)
        assert Trace.from_csv(path, MACHINE).name == "mytrace"
