"""Telemetry subsystem: tracer, metrics, exporters, and wiring."""

import importlib.util
import json
import pathlib
import time

import pytest

from repro.core.ga import MOGASolver
from repro.core.problem import SelectionProblem
from repro.methods import NaiveSelector, make_selector
from repro.parallel import parallel_map
from repro.policies import FCFS
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job
from repro.telemetry import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    TelemetrySnapshot,
    Tracer,
    get_tracer,
    merge_snapshots,
    read_jsonl,
    render_report,
    set_tracer,
    snapshot_from,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.windows import WindowPolicy

REPO = pathlib.Path(__file__).resolve().parent.parent


def load_validator():
    """Import tools/validate_trace.py as a module (it is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "validate_trace", REPO / "tools" / "validate_trace.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def make_job(jid, submit=0.0, runtime=100.0, nodes=1, bb=0.0):
    return Job(jid=jid, submit_time=submit, runtime=runtime,
               walltime=runtime, nodes=nodes, bb=bb)


def run_sim(jobs=None, selector=None, nodes=10):
    jobs = jobs if jobs is not None else [
        make_job(i, submit=float(i), nodes=3, runtime=50.0) for i in range(12)
    ]
    engine = SchedulingEngine(
        Cluster(nodes=nodes, bb_capacity=100.0),
        FCFS(),
        selector or NaiveSelector(),
        WindowPolicy(size=5),
    )
    return engine, engine.run(jobs)


class TestTracerSpans:
    def test_nesting_depth_and_order(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "inner", "outer"]  # completion order
        depths = {s.name: s.depth for s in tracer.spans}
        assert depths == {"inner": 1, "outer": 0}

    def test_timing_monotonicity(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            time.sleep(0.002)
            with tracer.span("inner") as inner:
                time.sleep(0.002)
        assert outer.dur >= inner.dur > 0.0
        assert outer.ts <= inner.ts
        # Child interval is contained in the parent interval.
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-9
        # Spans finished later have later end times.
        ends = [s.ts + s.dur for s in tracer.spans]
        assert ends == sorted(ends)

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set(b=2)
        assert tracer.spans[0].attrs == {"a": 1, "b": 2}

    def test_instants(self):
        tracer = Tracer()
        tracer.instant("tick", n=1)
        tracer.instant("tick", n=2)
        assert [i.attrs["n"] for i in tracer.instants] == [1, 2]
        assert all(i.ts >= 0.0 for i in tracer.instants)

    def test_summarize_and_mark(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        mark = tracer.mark()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        full = tracer.summarize()
        assert full["a"]["count"] == 2
        late = tracer.summarize(since=mark)
        assert late["a"]["count"] == 1
        assert late["b"]["count"] == 1
        assert late["a"]["mean"] == pytest.approx(late["a"]["total"])


class TestNullTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_inert_and_shared(self):
        span = NULL_TRACER.span("anything", x=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(y=2)  # must not raise
        NULL_TRACER.instant("nothing")

    def test_use_tracer_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        prev = set_tracer(tracer)
        try:
            assert prev is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            set_tracer(prev)


class TestMetricsRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        assert reg.counter("c").value == 5

    def test_gauge_time_weighted_mean(self):
        reg = MetricsRegistry()
        # 2 for 10 time units, then 4 for 10: mean 3.
        reg.set_gauge("g", 2.0, t=0.0)
        reg.set_gauge("g", 4.0, t=10.0)
        reg.set_gauge("g", 0.0, t=20.0)
        g = reg.gauge("g")
        assert g.mean == pytest.approx(3.0)
        assert g.last == 0.0
        assert g.min == 0.0 and g.max == 4.0

    def test_gauge_untimed_uses_sequence_indices(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        # Each sample holds until the next; untimed samples sit at
        # indices 0, 1, 2, so 1.0 and 3.0 each hold for one step.
        g.set(1.0)
        g.set(3.0)
        g.set(3.0)
        assert g.mean == pytest.approx(2.0)

    def test_gauge_unsorted_falls_back_to_arithmetic(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(1.0, t=10.0)
        g.set(3.0, t=0.0)
        assert g.mean == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("h", float(v))
        h = reg.histogram("h")
        assert h.count == 100
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.mean == pytest.approx(50.5)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_instruments_are_zero(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").percentile(99) == 0.0
        assert reg.gauge("g").mean == 0.0
        snap = reg.snapshot()
        assert snap["histograms"]["h"]["count"] == 0

    def test_merge_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        for v in (1.0, 2.0):
            a.observe("h", v)
        for v in (3.0, 4.0):
            b.observe("h", v)
        a.set_gauge("g", 1.0, t=5.0)
        b.set_gauge("g", 2.0, t=0.0)
        merged = MetricsRegistry.merged([a, b])
        assert merged.counter("c").value == 5
        assert merged.histogram("h").count == 4
        # Percentiles over the union of raw values, not an approximation.
        assert merged.histogram("h").percentile(50) == 2.0
        # Gauge samples are re-sorted by timestamp after merging.
        assert [t for t, _ in merged.gauge("g").samples] == [0.0, 5.0]


class TestExporters:
    def _traced_run(self):
        tracer = Tracer()
        with use_tracer(tracer):
            engine, res = run_sim()
        tracer.instant("note", detail="x")
        return tracer, engine.metrics

    def test_jsonl_round_trip(self, tmp_path):
        tracer, metrics = self._traced_run()
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), tracer, metrics, meta={"who": "test"})
        records = read_jsonl(str(path))
        assert records[0]["type"] == "meta"
        assert records[0]["who"] == "test"
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == len(tracer.spans)
        by_name = {r["name"] for r in spans}
        assert {"event_loop", "schedule_pass", "window_extract"} <= by_name
        for rec, span in zip(spans, tracer.spans):
            assert rec["name"] == span.name
            assert rec["ts"] == pytest.approx(span.ts)
            assert rec["dur"] == pytest.approx(span.dur)
            assert rec["depth"] == span.depth
        instants = [r for r in records if r["type"] == "instant"]
        assert any(r["name"] == "note" for r in instants)
        metric_recs = [r for r in records if r["type"] == "metrics"]
        assert len(metric_recs) == 1
        assert metric_recs[0]["counters"]["engine.jobs_started"] == 12

    def test_chrome_trace_structure(self, tmp_path):
        tracer, metrics = self._traced_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer, metrics, meta={"who": "test"})
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        for e in complete:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert e["pid"] == 1
            assert isinstance(e["args"], dict)
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
        assert any(e["ph"] == "i" for e in events)
        assert doc["otherData"]["who"] == "test"
        assert "metrics" in doc["otherData"]

    def test_both_formats_pass_schema_validator(self, tmp_path):
        validator = load_validator()
        tracer, metrics = self._traced_run()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        write_jsonl(str(jsonl), tracer, metrics)
        write_chrome_trace(str(chrome), tracer, metrics)
        fmt, spans = validator.validate_file(str(jsonl), "auto")
        assert fmt == "jsonl" and spans["schedule_pass"] > 0
        fmt, spans = validator.validate_file(str(chrome), "auto")
        assert fmt == "chrome" and spans["schedule_pass"] > 0

    def test_validator_rejects_garbage(self, tmp_path):
        validator = load_validator()
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "", "ts": -1}\n')
        with pytest.raises(validator.ValidationFailure):
            validator.validate_jsonl(bad.read_text().splitlines())
        assert validator.main([str(bad)]) == 1

    def test_metrics_json(self, tmp_path):
        tracer, metrics = self._traced_run()
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), metrics, spans=tracer.summarize(),
                           meta={"scale": "test"})
        doc = json.loads(path.read_text())
        assert doc["meta"]["scale"] == "test"
        assert doc["spans"]["schedule_pass"]["count"] > 0
        assert doc["counters"]["engine.jobs_started"] == 12

    def test_render_report(self):
        tracer, metrics = self._traced_run()
        text = render_report(tracer=tracer, metrics=metrics, title="t")
        assert "schedule_pass" in text
        assert "engine.jobs_started" in text
        assert "engine.queue_depth" in text


class TestEngineWiring:
    def test_untraced_run_records_no_spans(self):
        engine, _ = run_sim()
        assert get_tracer() is NULL_TRACER  # nothing leaked

    def test_traced_results_byte_identical_to_untraced(self):
        jobs_a = [make_job(i, submit=float(i), nodes=3, runtime=50.0)
                  for i in range(12)]
        jobs_b = [make_job(i, submit=float(i), nodes=3, runtime=50.0)
                  for i in range(12)]
        _, res_a = run_sim(jobs_a, selector=make_selector("BBSched", seed=7,
                                                          generations=10))
        with use_tracer(Tracer(fine=True)):
            _, res_b = run_sim(jobs_b, selector=make_selector("BBSched", seed=7,
                                                              generations=10))
        assert [j.start_time for j in res_a.jobs] == [j.start_time for j in res_b.jobs]
        assert res_a.makespan == res_b.makespan
        assert res_a.stats.selected_jobs == res_b.stats.selected_jobs
        assert res_a.stats.forced_jobs == res_b.stats.forced_jobs
        assert res_a.stats.backfilled_jobs == res_b.stats.backfilled_jobs

    def test_engine_metrics_counters(self):
        engine, res = run_sim()
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.events"] == 24  # 12 submits + 12 ends
        assert counters["engine.events.job_submit"] == 12
        assert counters["engine.events.job_end"] == 12
        assert counters["engine.jobs_started"] == 12
        started = (counters.get("engine.jobs_selected", 0)
                   + counters.get("engine.jobs_backfilled", 0)
                   + counters.get("engine.jobs_forced", 0))
        assert started == 12
        assert engine.metrics.gauge("engine.queue_depth").samples

    def test_stats_are_derived_from_histogram(self):
        engine, res = run_sim()
        hist = engine.metrics.histogram("engine.selector_seconds")
        assert res.stats.selector_calls == hist.count > 0
        assert res.stats.selector_time == pytest.approx(hist.total)
        assert res.stats.selector_time > 0.0

    def test_traced_run_has_expected_span_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_sim(selector=make_selector("BBSched", seed=1, generations=5))
        names = {s.name for s in tracer.spans}
        assert {"event_loop", "schedule_pass", "window_extract", "select",
                "ga_solve", "decision_rule"} <= names
        # schedule_pass nests under event_loop, ga_solve under select.
        depth = {s.name: s.depth for s in tracer.spans}
        assert depth["event_loop"] == 0
        assert depth["schedule_pass"] == 1
        assert depth["select"] == 2
        assert depth["ga_solve"] == 3

    def test_fine_tracing_emits_per_generation_spans(self):
        problem = SelectionProblem.from_window(
            [make_job(i, nodes=2, bb=10.0) for i in range(4)], 6, 25.0
        )
        coarse = Tracer()
        with use_tracer(coarse):
            MOGASolver(generations=3, seed=0).solve(problem)
        assert sum(s.name == "ga_generation" for s in coarse.spans) == 0
        fine = Tracer(fine=True)
        with use_tracer(fine):
            MOGASolver(generations=3, seed=0).solve(problem)
        assert sum(s.name == "ga_generation" for s in fine.spans) == 3
        solve = next(s for s in fine.spans if s.name == "ga_solve")
        assert solve.attrs["front"] >= 1


class TestWatchdogTelemetry:
    def test_fallback_records_instant(self):
        from repro.resilience import SolverWatchdog

        class Slow(NaiveSelector):
            def select(self, window, avail):
                time.sleep(0.2)
                return super().select(window, avail)

        tracer = Tracer()
        with use_tracer(tracer):
            run_sim(selector=SolverWatchdog(Slow(), budget=0.01, trip_after=2))
        falls = [i for i in tracer.instants if i.name == "watchdog_fallback"]
        assert falls
        assert falls[0].attrs["reason"] == "timeout"
        assert any(i.attrs["reason"] == "breaker_open" for i in falls[2:])


def _tiny_cell(seed):
    """Module-level so it pickles into pool workers."""
    from repro.experiments import get_scale, get_workload, run_one

    scale = get_scale("smoke")
    trace = get_workload("Theta-S2", scale)
    return run_one(trace, "Baseline", scale, seed=seed, collect_telemetry=True)


class TestAggregation:
    def test_snapshot_from_and_merge(self):
        tracer = Tracer()
        with use_tracer(tracer):
            engine, _ = run_sim()
        snap = snapshot_from(tracer, engine.metrics)
        assert snap.spans["schedule_pass"]["count"] > 0
        merged = merge_snapshots([snap, snap])
        assert merged.spans["schedule_pass"]["count"] == \
            2 * snap.spans["schedule_pass"]["count"]
        assert merged.metrics.counter("engine.jobs_started").value == 24
        assert "schedule_pass" in merged.render()

    def test_run_one_collects_snapshot(self):
        result = _tiny_cell(0)
        assert isinstance(result.telemetry, TelemetrySnapshot)
        assert result.telemetry.spans["event_loop"]["count"] == 1
        assert result.telemetry.metrics.counter("engine.jobs_started").value > 0
        # run_one's private tracer must not leak into the process slot.
        assert get_tracer() is NULL_TRACER

    def test_aggregation_across_parallel_workers(self):
        results = parallel_map(_tiny_cell, [(0,), (1,)], workers=2)
        snaps = [r.telemetry for r in results]
        assert all(isinstance(s, TelemetrySnapshot) for s in snaps)
        merged = merge_snapshots(snaps)
        assert merged.spans["event_loop"]["count"] == 2
        total = sum(s.metrics.counter("engine.events").value for s in snaps)
        assert merged.metrics.counter("engine.events").value == total

    def test_grid_telemetry(self):
        from repro.experiments.grid import grid_telemetry, run_grid

        grid = run_grid(workloads=["Theta-S2"], methods=["Baseline"],
                        workers=1, telemetry=True)
        snap = grid_telemetry(grid)
        assert snap.spans["event_loop"]["count"] == 1
        untraced = run_grid(workloads=["Theta-S2"], methods=["Baseline"],
                            workers=1)
        assert grid_telemetry(untraced).spans == {}


class TestCLITelemetry:
    def test_sim_alias_with_chrome_trace(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        trace = tmp_path / "out.json"
        metrics = tmp_path / "metrics.json"
        assert main(["sim", "Theta-S2", "BBSched",
                     "--trace", str(trace), "--trace-format", "chrome",
                     "--metrics-out", str(metrics)]) == 0
        validator = load_validator()
        fmt, spans = validator.validate_file(str(trace), "auto")
        assert fmt == "chrome"
        assert spans["schedule_pass"] > 0 and spans["ga_solve"] > 0
        doc = json.loads(metrics.read_text())
        assert doc["counters"]["engine.jobs_started"] > 0
        assert get_tracer() is NULL_TRACER

    def test_simulate_jsonl_trace(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        trace = tmp_path / "out.jsonl"
        assert main(["simulate", "Theta-S2", "Baseline",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "telemetry: Baseline on Theta-S2" in out
        records = read_jsonl(str(trace))
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" and r["name"] == "simulate"
                   for r in records)

    def test_untraced_simulate_output_unchanged(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["simulate", "Theta-S2", "Baseline"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert "wrote" not in out
