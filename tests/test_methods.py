"""Selection methods (§4.3): naive, weighted, constrained, bin packing."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.methods import (
    BinPackingSelector,
    ConstrainedSelector,
    METHODS_SECTION4,
    METHODS_SECTION5,
    NaiveSelector,
    Selector,
    SystemCapacity,
    WeightedSelector,
    available_methods,
    constrained_ssd,
    make_selector,
    weighted_bb,
    weighted_cpu,
    weighted_equal,
)
from repro.simulator.cluster import Available
from repro.simulator.job import Job

TB = 1024.0


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


TABLE1 = [make_job(1, 80, 20 * TB), make_job(2, 10, 85 * TB),
          make_job(3, 40, 5 * TB), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
AVAIL = Available(nodes=100, bb=100 * TB, ssd_free={0.0: 100})
SYSTEM = SystemCapacity(nodes=100, bb=100 * TB)


def run(selector, window=TABLE1, avail=AVAIL, system=SYSTEM):
    selector.bind(system)
    picks = selector.select(window, avail)
    Selector.verify_feasible(window, avail, picks)
    return [window[i].jid for i in picks]


class TestNaive:
    def test_blocks_at_first_non_fitting(self):
        """Table 1: naive selects J1 then blocks on J2's burst buffer."""
        assert run(NaiveSelector()) == [1]

    def test_takes_all_when_everything_fits(self):
        jobs = [make_job(i, 10) for i in range(5)]
        assert run(NaiveSelector(), jobs) == [0, 1, 2, 3, 4]

    def test_empty_window(self):
        assert run(NaiveSelector(), []) == []

    def test_first_job_too_big_selects_nothing(self):
        jobs = [make_job(1, 200), make_job(2, 10)]
        assert run(NaiveSelector(), jobs) == []


class TestWeighted:
    def test_table1_cpu_biased_picks_solution2(self):
        assert sorted(run(weighted_cpu(generations=200, seed=0))) == [1, 5]

    def test_table1_bb_biased_picks_solution3(self):
        assert sorted(run(weighted_bb(generations=200, seed=0))) == [2, 3, 4, 5]

    def test_table1_equal_picks_solution3(self):
        # 50/50 utilization weights: 0.5·0.8+0.5·0.9 beats 0.5·1.0+0.5·0.2.
        assert sorted(run(weighted_equal(generations=200, seed=0))) == [2, 3, 4, 5]

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedSelector(node_weight=-0.1)

    def test_both_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedSelector(node_weight=0.0, bb_weight=0.0)

    def test_requires_bind(self):
        sel = weighted_equal(generations=5, seed=0)
        with pytest.raises(SchedulingError):
            sel.select(TABLE1, AVAIL)

    def test_names(self):
        assert weighted_equal().name == "Weighted"
        assert weighted_cpu().name == "Weighted_CPU"
        assert weighted_bb().name == "Weighted_BB"


class TestConstrained:
    def test_cpu_target_maximizes_nodes(self):
        picks = run(ConstrainedSelector("cpu", generations=200, seed=0))
        nodes = sum(j.nodes for j in TABLE1 if j.jid in picks)
        assert nodes == 100

    def test_bb_target_maximizes_bb(self):
        picks = run(ConstrainedSelector("bb", generations=200, seed=0))
        bb = sum(j.bb for j in TABLE1 if j.jid in picks)
        assert bb == pytest.approx(90 * TB)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstrainedSelector("gpu")

    def test_ssd_target_needs_tiers(self):
        sel = constrained_ssd(generations=5, seed=0)
        sel.bind(SYSTEM)
        with pytest.raises(ConfigurationError):
            sel.select(TABLE1, AVAIL)

    def test_names(self):
        assert ConstrainedSelector("cpu").name == "Constrained_CPU"
        assert ConstrainedSelector("ssd").name == "Constrained_SSD"


class TestBinPacking:
    def test_table1_picks_solution2(self):
        """Greedy alignment packing lands on J1+J5, missing Solution 3."""
        assert sorted(run(BinPackingSelector())) == [1, 5]

    def test_packs_until_full(self):
        jobs = [make_job(i, 30) for i in range(5)]
        picks = run(BinPackingSelector(), jobs)
        assert len(picks) == 3  # 3 × 30 ≤ 100 < 4 × 30

    def test_empty_window(self):
        assert run(BinPackingSelector(), []) == []

    def test_respects_bb_capacity(self):
        jobs = [make_job(1, 10, 80 * TB), make_job(2, 10, 80 * TB)]
        picks = run(BinPackingSelector(), jobs)
        assert len(picks) == 1

    def test_ssd_aware_packing(self):
        jobs = [make_job(1, 2, ssd=200.0), make_job(2, 2, ssd=200.0)]
        avail = Available(nodes=4, bb=0.0, ssd_free={128.0: 2, 256.0: 2})
        sel = BinPackingSelector()
        sel.bind(SystemCapacity(nodes=4, bb=0.0, ssd_total=4 * 192.0))
        picks = sel.select(jobs, avail)
        assert len(picks) == 1  # only two >=200GB nodes exist


class TestVerifyFeasible:
    def test_accepts_valid(self):
        Selector.verify_feasible(TABLE1, AVAIL, [0, 4])

    def test_rejects_node_overflow(self):
        with pytest.raises(SchedulingError):
            Selector.verify_feasible(TABLE1, AVAIL, [0, 2])  # 120 nodes

    def test_rejects_bb_overflow(self):
        jobs = [make_job(1, 1, 60 * TB), make_job(2, 1, 60 * TB)]
        with pytest.raises(SchedulingError):
            Selector.verify_feasible(jobs, AVAIL, [0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(SchedulingError):
            Selector.verify_feasible(TABLE1, AVAIL, [9])

    def test_rejects_duplicates(self):
        with pytest.raises(SchedulingError):
            Selector.verify_feasible(TABLE1, AVAIL, [0, 0])

    def test_rejects_ssd_tier_violation(self):
        jobs = [make_job(1, 3, ssd=200.0)]
        avail = Available(nodes=4, bb=0.0, ssd_free={128.0: 2, 256.0: 2})
        with pytest.raises(SchedulingError):
            Selector.verify_feasible(jobs, avail, [0])


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(set(METHODS_SECTION4) | set(METHODS_SECTION5)))
    def test_make_all_methods(self, name):
        sel = make_selector(name, generations=5, seed=0)
        assert sel.name == name

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            make_selector("Magic")

    def test_available_methods_sorted(self):
        methods = available_methods()
        assert methods == sorted(methods)
        assert "BBSched" in methods

    def test_section4_has_eight_methods(self):
        assert len(METHODS_SECTION4) == 8

    def test_section5_has_seven_methods(self):
        assert len(METHODS_SECTION5) == 7

    def test_selectors_are_independent(self):
        a = make_selector("BBSched", generations=5, seed=1)
        b = make_selector("BBSched", generations=5, seed=1)
        assert a is not b


class TestSystemCapacity:
    def test_scales2(self):
        assert SystemCapacity(nodes=10, bb=100.0).scales2() == (10.0, 100.0)

    def test_scales2_zero_bb_floor(self):
        assert SystemCapacity(nodes=10, bb=0.0).scales2() == (10.0, 1.0)

    def test_scales4(self):
        s = SystemCapacity(nodes=10, bb=100.0, ssd_total=50.0)
        assert s.scales4() == (10.0, 100.0, 50.0, 50.0)
