"""BBSched selector: MOO + GA + decision rule end to end."""


from repro.core.bbsched import BBSchedSelector
from repro.core.decision import DecisionRule
from repro.core.problem import SelectionProblem, SSDSelectionProblem
from repro.methods import Selector, SystemCapacity
from repro.simulator.cluster import Available
from repro.simulator.job import Job

TB = 1024.0


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


TABLE1 = [make_job(1, 80, 20 * TB), make_job(2, 10, 85 * TB),
          make_job(3, 40, 5 * TB), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
AVAIL = Available(nodes=100, bb=100 * TB, ssd_free={0.0: 100})
SYSTEM = SystemCapacity(nodes=100, bb=100 * TB)


class TestSelect:
    def test_table1_trades_to_solution3(self):
        """The §1 example: BBSched's 2× rule picks J2–J5 over J1+J5."""
        sel = BBSchedSelector(generations=300, seed=0)
        sel.bind(SYSTEM)
        picks = sel.select(TABLE1, AVAIL)
        assert sorted(TABLE1[i].jid for i in picks) == [2, 3, 4, 5]

    def test_selection_feasible(self):
        sel = BBSchedSelector(generations=50, seed=1)
        sel.bind(SYSTEM)
        picks = sel.select(TABLE1, AVAIL)
        Selector.verify_feasible(TABLE1, AVAIL, picks)

    def test_empty_window(self):
        sel = BBSchedSelector(generations=5, seed=0)
        sel.bind(SYSTEM)
        assert sel.select([], AVAIL) == []

    def test_custom_decision_rule(self):
        # An enormous trade factor forbids any trade → node-max Solution 2.
        sel = BBSchedSelector(generations=300, seed=0,
                              decision=DecisionRule(trade_factor=100.0))
        sel.bind(SYSTEM)
        picks = sel.select(TABLE1, AVAIL)
        assert sorted(TABLE1[i].jid for i in picks) == [1, 5]

    def test_deterministic(self):
        a = BBSchedSelector(generations=40, seed=9)
        a.bind(SYSTEM)
        b = BBSchedSelector(generations=40, seed=9)
        b.bind(SYSTEM)
        assert a.select(TABLE1, AVAIL) == b.select(TABLE1, AVAIL)

    def test_crowding_ablation_mode(self):
        sel = BBSchedSelector(generations=100, selection="crowding", seed=0)
        sel.bind(SYSTEM)
        picks = sel.select(TABLE1, AVAIL)
        Selector.verify_feasible(TABLE1, AVAIL, picks)
        assert picks


class TestProblemFormulation:
    def test_two_objective_without_tiers(self):
        sel = BBSchedSelector()
        problem = sel.build_problem(TABLE1, AVAIL)
        assert isinstance(problem, SelectionProblem)
        assert problem.n_objectives == 2

    def test_four_objective_with_tiers(self):
        sel = BBSchedSelector()
        jobs = [make_job(1, 2, ssd=64.0)]
        avail = Available(nodes=4, bb=10 * TB, ssd_free={128.0: 2, 256.0: 2})
        problem = sel.build_problem(jobs, avail)
        assert isinstance(problem, SSDSelectionProblem)
        assert problem.n_objectives == 4

    def test_ssd_selection_works_end_to_end(self):
        jobs = [make_job(1, 2, bb=1 * TB, ssd=64.0),
                make_job(2, 2, bb=0.0, ssd=200.0),
                make_job(3, 1, bb=2 * TB, ssd=0.0)]
        avail = Available(nodes=5, bb=10 * TB, ssd_free={128.0: 3, 256.0: 2})
        sel = BBSchedSelector(generations=100, seed=0)
        sel.bind(SystemCapacity(nodes=5, bb=10 * TB, ssd_total=3 * 128.0 + 2 * 256.0))
        picks = sel.select(jobs, avail)
        Selector.verify_feasible(jobs, avail, picks)
        assert picks  # something runs
