"""Shared simulation runner and grid plumbing (smoke scale)."""

import pytest

from repro.experiments.config import get_scale
from repro.experiments.grid import metric_table, run_grid
from repro.experiments.runner import RunResult, policy_for, run_one
from repro.experiments.workloads import get_workload
from repro.policies import FCFS, WFP

SMOKE = get_scale("smoke")


class TestPolicyFor:
    def test_cori_gets_fcfs(self):
        assert isinstance(policy_for(get_workload("Cori-S1", SMOKE)), FCFS)

    def test_theta_gets_wfp(self):
        assert isinstance(policy_for(get_workload("Theta-S1", SMOKE)), WFP)


class TestRunOne:
    @pytest.fixture(scope="class")
    def result(self):
        return run_one(get_workload("Theta-S2", SMOKE), "BBSched", SMOKE, seed=1)

    def test_result_fields(self, result):
        assert isinstance(result, RunResult)
        assert result.workload == "Theta-S2"
        assert result.method == "BBSched"
        assert result.makespan > 0

    def test_metrics_in_range(self, result):
        assert 0.0 <= result.metric("node_usage") <= 1.0
        assert 0.0 <= result.metric("bb_usage") <= 1.0
        assert result.metric("avg_wait") >= 0.0

    def test_breakdowns_populated(self, result):
        assert result.wait_by_size
        assert result.wait_by_bb
        assert result.wait_by_runtime

    def test_unknown_metric(self, result):
        with pytest.raises(KeyError):
            result.metric("latency")

    def test_window_override(self):
        r = run_one(get_workload("Theta-S2", SMOKE), "Baseline", SMOKE,
                    seed=1, window=3)
        assert r.makespan > 0

    def test_deterministic(self):
        trace = get_workload("Theta-S2", SMOKE)
        a = run_one(trace, "BBSched", SMOKE, seed=5)
        b = run_one(trace, "BBSched", SMOKE, seed=5)
        assert a.summary.as_dict() == b.summary.as_dict()


class TestGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_grid(SMOKE, workloads=("Theta-S2",),
                        methods=("Baseline", "Bin_Packing"), workers=1)

    def test_keys(self, grid):
        assert set(grid) == {("Theta-S2", "Baseline"), ("Theta-S2", "Bin_Packing")}

    def test_cached(self, grid):
        again = run_grid(SMOKE, workloads=("Theta-S2",),
                         methods=("Baseline", "Bin_Packing"), workers=1)
        assert again[("Theta-S2", "Baseline")] is grid[("Theta-S2", "Baseline")]

    def test_metric_table(self, grid):
        table = metric_table(grid, "node_usage", ["Theta-S2"],
                             ["Baseline", "Bin_Packing"])
        assert set(table["Theta-S2"]) == {"Baseline", "Bin_Packing"}
