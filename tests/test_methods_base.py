"""Selector base-class helpers."""


from repro.methods.base import Selector, SystemCapacity
from repro.simulator.cluster import Available
from repro.simulator.job import Job


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


AVAIL = Available(nodes=10, bb=100.0, ssd_free={0.0: 10})


class TestGreedyInOrder:
    def test_fills_in_order(self):
        jobs = [make_job(i, 3) for i in range(5)]
        picks = Selector.greedy_in_order(jobs, AVAIL, range(5))
        assert picks == [0, 1, 2]

    def test_skips_non_fitting_by_default(self):
        jobs = [make_job(0, 8), make_job(1, 8), make_job(2, 2)]
        picks = Selector.greedy_in_order(jobs, AVAIL, range(3))
        assert picks == [0, 2]

    def test_blocking_mode(self):
        jobs = [make_job(0, 8), make_job(1, 8), make_job(2, 2)]
        picks = Selector.greedy_in_order(jobs, AVAIL, range(3),
                                         stop_at_first_miss=True)
        assert picks == [0]

    def test_custom_order(self):
        jobs = [make_job(0, 8), make_job(1, 8)]
        picks = Selector.greedy_in_order(jobs, AVAIL, [1, 0])
        assert picks == [1]

    def test_bb_respected(self):
        jobs = [make_job(0, 1, bb=60.0), make_job(1, 1, bb=60.0)]
        picks = Selector.greedy_in_order(jobs, AVAIL, range(2))
        assert picks == [0]

    def test_ssd_tier_preference(self):
        # Greedy must consume small tiers first so large-SSD jobs fit later.
        avail = Available(nodes=4, bb=0.0, ssd_free={128.0: 2, 256.0: 2})
        jobs = [make_job(0, 2, ssd=64.0), make_job(1, 2, ssd=200.0)]
        picks = Selector.greedy_in_order(jobs, avail, range(2))
        assert picks == [0, 1]

    def test_empty(self):
        assert Selector.greedy_in_order([], AVAIL, []) == []


class TestBinding:
    def test_bind_stores_capacity(self):
        from repro.methods import NaiveSelector

        sel = NaiveSelector()
        cap = SystemCapacity(nodes=10, bb=100.0)
        sel.bind(cap)
        assert sel.system is cap
